#!/usr/bin/env python3
"""From paid submissions to a labeled dataset, under encryption.

After a Dragoon task finishes, the requester holds encrypted answer
vectors from the qualified workers.  Because exponential ElGamal is
additively homomorphic, she can tally the binary votes per question
*without decrypting individual submissions side by side*: sum the
ciphertexts across workers and decrypt only the per-question counts.
This script runs an annotation task with five noisy workers, builds the
consensus labels homomorphically, and shows the consensus beating every
individual annotator — the ImageNet aggregation story end to end.

Run:  python examples/consensus_labels.py
"""

from repro import run_hit, sample_worker_answers
from repro.core.aggregation import (
    accuracy_against_truth,
    binary_consensus_from_tally,
    homomorphic_tally,
    pairwise_agreement,
)
from repro.core.task import HITTask, TaskParameters


def build_task() -> HITTask:
    import random

    rng = random.Random(99)
    num_questions = 60
    ground_truth = [rng.randint(0, 1) for _ in range(num_questions)]
    gold_indexes = sorted(rng.sample(range(num_questions), 6))
    parameters = TaskParameters(
        num_questions=num_questions,
        budget=500,
        num_workers=5,
        answer_range=(0, 1),
        quality_threshold=4,
        num_golds=6,
    )
    return HITTask(
        parameters,
        ["Does image %d show a striped animal? (0/1)" % i
         for i in range(num_questions)],
        gold_indexes,
        [ground_truth[i] for i in gold_indexes],
        ground_truth,
    )


def main() -> None:
    task = build_task()
    accuracies = [0.92, 0.88, 0.85, 0.82, 0.30]  # four annotators + one bot
    answers = [
        sample_worker_answers(task, accuracy, seed=i)
        for i, accuracy in enumerate(accuracies)
    ]
    outcome = run_hit(task, answers)

    print("--- task settlement ---")
    qualified_vectors = []
    qualified_answers = []
    submissions = outcome.requester.collect_submissions()
    for index, worker in enumerate(outcome.workers):
        paid = outcome.payment_of(worker)
        print(
            "%-9s accuracy %.0f%%  quality %d/6  paid %d"
            % (worker.label, accuracies[index] * 100,
               task.quality_of(answers[index]), paid)
        )
        if paid:
            ciphertexts, plaintexts = outcome.requester.decrypt_submission(
                submissions[worker.address]
            )
            qualified_vectors.append(ciphertexts)
            qualified_answers.append([int(p) for p in plaintexts])

    print("\n--- homomorphic aggregation over %d qualified submissions ---"
          % len(qualified_vectors))
    tallies = homomorphic_tally(outcome.requester.secret_key, qualified_vectors)
    consensus = binary_consensus_from_tally(tallies, len(qualified_vectors))

    truth = task.ground_truth
    print("consensus accuracy vs ground truth: %.1f%%"
          % (100 * accuracy_against_truth(list(consensus.labels), truth)))
    for index, worker_answers in enumerate(qualified_answers):
        print("  qualified worker %d alone:          %.1f%%"
              % (index, 100 * accuracy_against_truth(worker_answers, truth)))
    print("mean inter-worker agreement: %.1f%%"
          % (100 * pairwise_agreement(qualified_answers)))
    print("mean consensus support: %.2f of %d workers"
          % (sum(consensus.support) / len(consensus.support),
             consensus.num_workers))

    best_individual = max(
        accuracy_against_truth(a, truth) for a in qualified_answers
    )
    consensus_accuracy = accuracy_against_truth(list(consensus.labels), truth)
    print("\nconsensus beats the best individual: %s (%.1f%% vs %.1f%%)"
          % (consensus_accuracy >= best_individual,
             100 * consensus_accuracy, 100 * best_individual))


if __name__ == "__main__":
    main()
