#!/usr/bin/env python3
"""The paper's §IV motivating scenario: Alice's street-parking survey.

Alice runs a startup visualizing street-parking availability.  She can
only monitor a few spots herself — those are her gold standards — and
crowdsources the rest.  Answers use a 3-option range (free / taken /
no-parking), showing the protocol beyond binary questions, and this
script also demonstrates the out-of-range dispute path: one worker
submits an invalid option code and is rejected with a single verifiable
decryption.

Run:  python examples/street_parking.py
"""

from repro import make_street_parking_task, run_hit, sample_worker_answers
from repro.core.adversary import OutOfRangeWorker
from repro.core.protocol import run_hit as run
from repro.core.worker import WorkerClient


class _MixedWorkerFactory:
    """Builds the i-th worker: two honest, one submitting garbage."""

    def __init__(self):
        self.count = 0

    def __call__(self, label, chain, swarm, answers=None):
        index = self.count
        self.count += 1
        if index == 2:
            return OutOfRangeWorker(
                label, chain, swarm, answers=answers, bad_position=7, bad_value=9
            )
        return WorkerClient(label, chain, swarm, answers=answers)


def main() -> None:
    task = make_street_parking_task()
    print(
        "Alice's survey: %d parking spots, %d known to her (golds), "
        "%d workers, options %s"
        % (
            task.parameters.num_questions,
            task.parameters.num_golds,
            task.parameters.num_workers,
            task.parameters.answer_range,
        )
    )

    answers = [
        sample_worker_answers(task, 0.95, seed=11),  # diligent scout
        sample_worker_answers(task, 0.85, seed=22),  # decent scout
        sample_worker_answers(task, 0.90, seed=33),  # would qualify, but...
    ]
    for index, sheet in enumerate(answers):
        print("worker-%d gold quality: %d/%d" % (
            index, task.quality_of(sheet), task.parameters.num_golds))

    outcome = run(task, answers, worker_cls=_MixedWorkerFactory())

    print("\n--- outcome ---")
    for worker in outcome.workers:
        print(
            "%-9s paid=%-4d verdict=%s"
            % (
                worker.label,
                outcome.payment_of(worker),
                outcome.contract.verdict_of(worker.address),
            )
        )

    outranged = outcome.chain.events_named("outranged")
    if outranged:
        payload = outranged[0].payload
        print(
            "\nworker-2 rejected: spot #%d was answered with the invalid "
            "code revealed on-chain via verifiable decryption" % payload["index"]
        )

    # What Alice actually wanted: the answers of the qualified scouts.
    submissions = outcome.requester.collect_submissions()
    qualified = [
        worker for worker in outcome.workers[:2]
        if outcome.payment_of(worker) > 0
    ]
    print("\nAlice decrypts %d qualified submissions off-chain:" % len(qualified))
    for worker in qualified:
        _, plaintexts = outcome.requester.decrypt_submission(
            submissions[worker.address]
        )
        taken = sum(1 for value in plaintexts if value == 1)
        free = sum(1 for value in plaintexts if value == 0)
        print(
            "  %s reports %d free, %d taken across %d spots"
            % (worker.label, free, taken, len(plaintexts))
        )


if __name__ == "__main__":
    main()
