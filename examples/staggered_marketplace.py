#!/usr/bin/env python3
"""A live marketplace: tasks arriving at different blocks, one straggler.

The deployed system the paper describes is not a script — it is a
long-lived contract platform where requesters post tasks whenever they
like and workers answer whenever the synchronous network delivers them.
This example drives that story through the session engine: three tasks
arrive at blocks 0, 1, and 3; each runs its own phase state machine; and
one worker on the second task straggles past the Fig. 4 reveal deadline,
loses the payment, and the requester is refunded that slot's share of
the budget — no coordinator anywhere, only sessions reacting to the
chain's event bus.

Run:  python examples/staggered_marketplace.py
"""

from repro import Dragoon, StragglerScheduler, TaskArrival
from repro.core.task import HITTask, TaskParameters


def build_task(tag: str) -> HITTask:
    """10 binary questions, golds at positions 0-2, two worker slots."""
    parameters = TaskParameters(
        num_questions=10,
        budget=100,  # 50 coins per worker slot
        num_workers=2,
        answer_range=(0, 1),
        quality_threshold=2,
        num_golds=3,
    )
    questions = ["[%s] is spot %d free? (0=no, 1=yes)" % (tag, i)
                 for i in range(10)]
    return HITTask(parameters, questions, [0, 1, 2], [0, 0, 0], [0] * 10)


def main() -> None:
    good = [0] * 10
    sloppy = [1] * 10

    arrivals = [
        TaskArrival(
            at_block=0,
            requester_label="alice",
            task=build_task("alice"),
            worker_answers=[good, sloppy],
            worker_labels=["a-diligent", "a-sloppy"],
        ),
        TaskArrival(
            at_block=1,
            requester_label="bob",
            task=build_task("bob"),
            worker_answers=[good, good],
            worker_labels=["b-punctual", "b-straggler"],
            # The straggler reveals one block late — past the deadline.
            worker_policies={1: StragglerScheduler(reveal=1)},
        ),
        TaskArrival(
            at_block=3,
            requester_label="carol",
            task=build_task("carol"),
            worker_answers=[good, good],
            worker_labels=["c-early", "c-late"],
        ),
    ]

    dragoon = Dragoon()
    outcomes = dragoon.serve(arrivals)

    print("--- per-block trace ---")
    for trace in dragoon.engine.trace:
        phases = ", ".join(
            "%s=%s" % (name.split(":")[1], phase)
            for name, phase in sorted(trace.phases.items())
        )
        print("block %2d (period %d): %d txs | %s"
              % (trace.block_number, trace.period, trace.transactions, phases))

    print("\n--- outcomes ---")
    for outcome in outcomes:
        requester = outcome.requester
        print("task of %s:" % requester.label)
        for worker in outcome.workers:
            print("  %-12s paid=%-3d verdict=%s" % (
                worker.label,
                outcome.payment_of(worker),
                outcome.contract.verdict_of(worker.address),
            ))
        refund = dragoon.chain.ledger.balance_of(requester.address)
        if refund:
            print("  %s refunded %d coins" % (requester.label, refund))

    straggler_outcome = outcomes[1]
    late = [
        receipt
        for receipt in straggler_outcome.receipts
        if receipt.transaction.method == "reveal" and not receipt.succeeded
    ]
    assert len(late) == 1 and "phase" in late[0].revert_reason
    assert straggler_outcome.payments()["b-straggler"] == 0
    assert dragoon.chain.ledger.balance_of(
        straggler_outcome.requester.address
    ) == 50
    print("\nthe straggling reveal was rejected at the Fig. 4 deadline "
          "and the requester got that slot's budget back")
    print("%d tasks settled in %d blocks (lock-step would need ~%d)"
          % (len(outcomes), dragoon.chain.height, 5 * len(outcomes)))


if __name__ == "__main__":
    main()
