#!/usr/bin/env python3
"""The paper's §VI experiment: an ImageNet annotation HIT on Dragoon.

Task policy (identical to the paper): 106 binary attribute questions,
6 of them secret gold standards, 4 worker slots, and a submission is
rejected iff it fails 3 or more golds.  Workers are synthesized at
different accuracy levels; the script reports payments, per-operation
gas, USD cost at the paper's exchange rates, and the MTurk comparison.

Run:  python examples/imagenet_annotation.py
"""

from repro import (
    PAPER_PRICING,
    make_imagenet_task,
    mturk_handling_fee,
    run_hit,
    sample_worker_answers,
)
from repro.analysis.costs import build_handling_fee_table


def main() -> None:
    task = make_imagenet_task()
    print(
        "task: %d questions, %d golds, %d workers, threshold %d"
        % (
            task.parameters.num_questions,
            task.parameters.num_golds,
            task.parameters.num_workers,
            task.parameters.quality_threshold,
        )
    )

    accuracies = [0.98, 0.92, 0.60, 0.15]
    answers = [
        sample_worker_answers(task, accuracy, seed=index)
        for index, accuracy in enumerate(accuracies)
    ]
    for index, sheet in enumerate(answers):
        print(
            "worker-%d: accuracy %.0f%%, gold quality %d/6"
            % (index, accuracies[index] * 100, task.quality_of(sheet))
        )

    outcome = run_hit(task, answers)

    print("\n--- payments ---")
    for worker in outcome.workers:
        print(
            "%-9s %3d coins  (%s)"
            % (
                worker.label,
                outcome.payment_of(worker),
                outcome.contract.verdict_of(worker.address),
            )
        )

    print("\n--- handling fees (paper Table III format) ---")
    table = build_handling_fee_table(outcome.gas, pricing=PAPER_PRICING)
    for row in table.rows:
        print("%-46s ~%6dk  $%.2f" % (row.operation, row.gas // 1000, row.usd))

    total_usd = PAPER_PRICING.to_usd(outcome.gas.total)
    mturk = mturk_handling_fee(total_reward_usd=20.0, assignments=4)
    print("\nDragoon total handling cost : $%.2f" % total_usd)
    print("MTurk handling fee (same HIT): $%.2f" % mturk)
    print("decentralized is cheaper     : %s" % (total_usd < mturk))


if __name__ == "__main__":
    main()
