#!/usr/bin/env python3
"""A simulated marketplace economy: stochastic load end to end.

Everything the earlier examples script by hand happens here as a
*process*: tasks arrive on a Poisson stream, a population of fourteen
workers — accuracies drawn from a distribution, one in five a straggler
or dropout — watches the chain's event bus and joins whichever open
task has the best positive expected utility (the Turkopticon-style
vetting from ``repro.core.marketplace``), and a metrics collector on
the same bus turns the run into throughput, latency, gas, and earnings
telemetry.  The whole thing is seeded: run it twice and every number,
gas included, comes out identical.

Run:  python examples/simulated_marketplace.py
"""

from repro.sim import PopulationSpec, Scenario, preset, run_scenario
from dataclasses import replace


def main() -> None:
    scenario = replace(
        preset("poisson", seed=42, tasks=12),
        population=PopulationSpec(
            size=14,
            accuracy=("uniform", 0.55, 0.98),
            straggler_fraction=0.1,
            dropout_fraction=0.1,
        ),
    )
    run = run_scenario(scenario, keep_objects=True)
    report = run.report
    report.check_invariants()

    print("--- the economy, block by block ---")
    for sample in run.collector.samples:
        marks = "+" * sample.published + "$" * sample.settled
        print("block %2d: %d txs, mempool %2d %s"
              % (sample.block_number, sample.transactions,
                 sample.mempool_depth_before, marks))
    print("(+ task published, $ task settled)")

    print("\n--- workforce ---")
    for agent in run.population.agents:
        note = ""
        if agent.policy is not None:
            note = " [%s]" % type(agent.policy).__name__
        earned = report.worker_earnings.get(agent.label, 0)
        print("%-16s accuracy %.2f  worked %d task(s), earned %3d coins%s"
              % (agent.label, agent.accuracy, agent.tasks_worked,
                 earned, note))

    print("\n--- telemetry ---")
    print("published %d, settled %d, cancelled %d in %d blocks "
          "(%.2f blocks/task; lock-step would need ~%d)"
          % (report.tasks_published, report.tasks_settled,
             report.tasks_cancelled, report.blocks,
             report.blocks_per_task, 5 * report.tasks_published))
    latency = report.commit_to_finalize
    print("commit->finalize latency: min %s, mean %.1f, max %s blocks"
          % (latency["min"], latency["mean"], latency["max"]))
    print("gas: %dk total, %dk per settled task, dynamic extras %s"
          % (report.total_gas // 1000,
             int(report.gas_per_settled_task) // 1000,
             {k: "%dk" % (v // 1000) for k, v in report.gas_extras.items()}
             or "none"))

    # The reproducibility contract, demonstrated rather than claimed.
    again = run_scenario(scenario)
    assert again.to_json() == report.to_json()
    print("\nran the scenario twice: reports identical byte for byte")


if __name__ == "__main__":
    main()
