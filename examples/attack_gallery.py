#!/usr/bin/env python3
"""Attack gallery: every adversary the paper worries about, defeated.

Runs four attack scenarios against the protocol and shows the security
property that stops each one:

1. copy-paste free-rider  -> duplicate commitment rejected / unopenable
2. wait-and-copy worker   -> commit phase already closed after K commits
3. false-reporting requester -> bogus rejection evidence forces payment
4. silent requester       -> everyone revealed gets paid by default

Run:  python examples/attack_gallery.py
"""

from repro.chain.chain import Chain
from repro.core.adversary import (
    CopyCatWorker,
    FalseReportingRequester,
    LateJoinerWorker,
    front_running_scheduler,
)
from repro.core.requester import RequesterClient
from repro.core.task import HITTask, TaskParameters
from repro.core.worker import WorkerClient
from repro.storage.swarm import SwarmStore


def build_task() -> HITTask:
    parameters = TaskParameters(
        num_questions=8,
        budget=100,
        num_workers=2,
        answer_range=(0, 1),
        quality_threshold=2,
        num_golds=3,
    )
    return HITTask(
        parameters,
        ["q%d" % i for i in range(8)],
        [0, 1, 2],
        [1, 1, 0],
        [1, 1, 0, 0, 1, 0, 1, 0],
    )


GOOD = [1, 1, 0, 0, 1, 0, 1, 0]


def scenario_copy_paste() -> None:
    print("\n[1] copy-paste free-rider (with rushing/front-running power)")
    task = build_task()
    chain, swarm = Chain(), SwarmStore()
    requester = RequesterClient("alice", task, chain, swarm)
    requester.publish()

    victim = WorkerClient("victim", chain, swarm, answers=GOOD)
    victim.discover(requester.contract_name)
    copier = CopyCatWorker("copier", chain, swarm, victim=victim)
    copier.discover(requester.contract_name)

    victim.send_commit()
    copier.send_commit()  # steals the digest from the mempool
    chain.scheduler = front_running_scheduler(copier.address)
    block = chain.mine_block()
    for receipt in block.receipts:
        print(
        "    %-6s commit %s" % (
            receipt.transaction.sender.label,
            "accepted" if receipt.succeeded else
            "REJECTED (%s)" % receipt.revert_reason,
        ))
    print("    the copier holds a commitment it can never open -> earns 0;")
    print("    the commitment scheme's hiding means it learned nothing.")


def scenario_wait_and_copy() -> None:
    print("\n[2] wait-for-reveals-then-copy worker")
    task = build_task()
    chain, swarm = Chain(), SwarmStore()
    requester = RequesterClient("alice", task, chain, swarm)
    requester.publish()
    workers = [
        WorkerClient("w%d" % i, chain, swarm, answers=GOOD) for i in range(2)
    ]
    for worker in workers:
        worker.discover(requester.contract_name)
        worker.send_commit()
    chain.mine_block()
    for worker in workers:
        worker.send_reveal()
    chain.mine_block()

    late = LateJoinerWorker("late", chain, swarm)
    late.discover(requester.contract_name)
    stolen = late.copy_revealed_ciphertexts()
    print("    ciphertexts visible on-chain: %s bytes" % len(stolen))
    late.send_commit()
    block = chain.mine_block()
    print(
        "    late commit: %s"
        % ("accepted" if block.receipts[0].succeeded else
           "REJECTED (%s)" % block.receipts[0].revert_reason)
    )
    print("    and the stolen ciphertexts are opaque without Alice's key.")


def scenario_false_reporting() -> None:
    print("\n[3] false-reporting requester (rejects everyone with junk proofs)")
    task = build_task()
    chain, swarm = Chain(), SwarmStore()
    requester = FalseReportingRequester("mallory", task, chain, swarm)
    requester.publish()
    workers = [
        WorkerClient("w%d" % i, chain, swarm, answers=GOOD) for i in range(2)
    ]
    for worker in workers:
        worker.discover(requester.contract_name)
        worker.send_commit()
    chain.mine_block()
    for worker in workers:
        worker.send_reveal()
    chain.mine_block()
    requester.evaluate_all()
    chain.mine_block()
    requester.send_finalize()
    chain.mine_block()
    for worker in workers:
        print(
            "    %-3s paid %d coins (verdict: %s)"
            % (
                worker.label,
                chain.ledger.balance_of(worker.address),
                chain.contract(requester.contract_name).verdict_of(worker.address),
            )
        )
    print("    upper-bound soundness: invalid evidence => the contract pays.")


def scenario_silent_requester() -> None:
    print("\n[4] silent requester (collects data, never evaluates)")
    task = build_task()
    chain, swarm = Chain(), SwarmStore()
    requester = RequesterClient("mallory", task, chain, swarm)
    requester.publish()
    workers = [
        WorkerClient("w%d" % i, chain, swarm, answers=GOOD) for i in range(2)
    ]
    for worker in workers:
        worker.discover(requester.contract_name)
        worker.send_commit()
    chain.mine_block()
    for worker in workers:
        worker.send_reveal()
    chain.mine_block()
    chain.mine_block()  # the evaluation window passes in silence
    requester.send_finalize()
    chain.mine_block()
    for worker in workers:
        print("    %-3s paid %d coins" % (
            worker.label, chain.ledger.balance_of(worker.address)))
    print("    the deposit was frozen at publish: going silent cannot reap data.")


def main() -> None:
    print("Dragoon attack gallery - every adversary loses:")
    scenario_copy_paste()
    scenario_wait_and_copy()
    scenario_false_reporting()
    scenario_silent_requester()
    print("\nall four attacks defeated.")


if __name__ == "__main__":
    main()
