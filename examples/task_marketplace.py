#!/usr/bin/env python3
"""A worker browsing the on-chain task marketplace.

Several requesters have published tasks on one chain; some have clean
audit records and some are known mass-rejecters.  A worker with a given
self-assessed accuracy asks the marketplace for recommendations: open
tasks, reputable requesters, positive expected utility.

Run:  python examples/task_marketplace.py
"""

from repro.core.marketplace import TaskMarketplace
from repro.core.task import HITTask, TaskParameters
from repro.dragoon import Dragoon


def tiny_task(budget: int = 100, workers: int = 2) -> HITTask:
    parameters = TaskParameters(
        num_questions=10,
        budget=budget,
        num_workers=workers,
        answer_range=(0, 1),
        quality_threshold=2,
        num_golds=3,
    )
    return HITTask(
        parameters,
        ["q%d" % i for i in range(10)],
        [0, 1, 2],
        [0, 0, 0],
        [0] * 10,
    )


def main() -> None:
    system = Dragoon()
    system.fund("label-lab", 500)
    system.fund("data-mill", 500)

    # History: label-lab settles fairly; data-mill rejects everyone.
    system.run_task("label-lab", tiny_task(), [[0] * 10, [0] * 10],
                    worker_labels=["h0", "h1"])
    system.run_task("data-mill", tiny_task(), [[1] * 10, [1] * 10],
                    worker_labels=["h2", "h3"])

    # Today's open tasks.
    system.publish_task("label-lab", tiny_task(budget=200))
    system.publish_task("label-lab", tiny_task(budget=120))
    system.publish_task("data-mill", tiny_task(budget=300))

    market = TaskMarketplace(system.chain)

    print("--- open tasks ---")
    for listing in market.listings():
        reputation = listing.requester_reputation
        flags = "; ".join(reputation.flags) if reputation and reputation.flags else "clean"
        print(
            "%-28s reward %3d coins  slots %d/%d  requester %-11s [%s]"
            % (
                listing.contract_name,
                listing.reward_per_worker,
                listing.slots_remaining,
                listing.parameters.num_workers,
                listing.requester.label,
                flags,
            )
        )

    print("\n--- recommendations for a 95%-accurate worker ---")
    for listing in market.recommend(worker_accuracy=0.95):
        utility = market.expected_utility(listing, worker_accuracy=0.95)
        print("%-28s expected utility $%+.2f" % (listing.contract_name, utility))
    print("(data-mill's richer task is skipped: flagged as a mass-rejecter)")

    print("\n--- and for a 10%-accurate worker ---")
    recommendations = market.recommend(worker_accuracy=0.10)
    print("recommended tasks: %d (honest effort would lose money)"
          % len(recommendations))


if __name__ == "__main__":
    main()
