#!/usr/bin/env python3
"""Quickstart: run one private decentralized HIT end to end.

A requester publishes a 10-question binary task with 3 secret gold
standards; two workers submit encrypted answers through the
commit-reveal flow; the requester proves the low-quality submission
wrong with a PoQoEA proof; the contract pays accordingly.

Run:  python examples/quickstart.py
"""

from repro import make_imagenet_task, run_hit
from repro.core.task import HITTask, TaskParameters


def build_task() -> HITTask:
    """A small task: 10 binary questions, golds at positions 0-2."""
    parameters = TaskParameters(
        num_questions=10,
        budget=100,  # 50 coins per worker
        num_workers=2,
        answer_range=(0, 1),
        quality_threshold=2,  # must match 2 of the 3 golds
        num_golds=3,
    )
    questions = ["Is image %d a cat? (0=no, 1=yes)" % i for i in range(10)]
    gold_indexes = [0, 1, 2]
    gold_answers = [1, 0, 1]
    ground_truth = [1, 0, 1, 0, 1, 0, 1, 0, 1, 0]
    return HITTask(parameters, questions, gold_indexes, gold_answers, ground_truth)


def main() -> None:
    task = build_task()

    diligent = [1, 0, 1, 0, 1, 0, 1, 0, 1, 0]  # all three golds right
    careless = [0, 1, 0, 1, 0, 1, 0, 1, 0, 1]  # all three golds wrong
    print("diligent worker quality: %d / 3" % task.quality_of(diligent))
    print("careless worker quality: %d / 3" % task.quality_of(careless))

    outcome = run_hit(task, [diligent, careless])

    print("\n--- outcome ---")
    for worker in outcome.workers:
        print(
            "%-10s paid=%-3d verdict=%s"
            % (
                worker.label,
                outcome.payment_of(worker),
                outcome.contract.verdict_of(worker.address),
            )
        )
    print(
        "requester refund: %d coins"
        % outcome.chain.ledger.balance_of(outcome.requester.address)
    )

    gas = outcome.gas
    print("\n--- on-chain gas ---")
    print("publish : %7dk" % (gas.publish // 1000))
    for worker in outcome.workers:
        print("submit  : %7dk  (%s)" % (gas.submit_cost(worker.label) // 1000,
                                        worker.label))
    print("golden  : %7dk" % (gas.golden // 1000))
    for label, cost in gas.rejections.items():
        print("reject  : %7dk  (%s, via PoQoEA)" % (cost // 1000, label))
    print("finalize: %7dk" % (gas.finalize // 1000))
    print("total   : %7dk" % (gas.total // 1000))

    assert outcome.payment_of(outcome.workers[0]) == 50
    assert outcome.payment_of(outcome.workers[1]) == 0
    print("\nfairness holds: qualified worker paid, free-rider rejected.")


if __name__ == "__main__":
    main()
