#!/usr/bin/env python3
"""Kill a marketplace mid-run, resume it, get the identical outcome.

The paper's marketplace is a long-lived on-chain service, and long-lived
services crash.  This example runs a seeded Poisson workload three ways:

1. **Uninterrupted** — the reference run, start to quiescence.
2. **Killed and resumed** — the same scenario journals every block to a
   ``NodeStore`` WAL and checkpoints every few blocks; halfway through,
   the process "dies" (deterministically, via ``interrupt_after``).  A
   fresh resume picks up the latest checkpoint: the entropy stream, the
   nonce counter, every session's phase machine, the population's
   cursors — all exactly where they stopped.
3. **Crash recovery** — the state directory alone (snapshot + WAL
   replay, no pickle) rebuilds the chain and reaches the same
   ``state_root``.

The punchline is byte-for-byte: the resumed run's ``SimulationReport``
— gas included — is identical to the uninterrupted run's, and all
three paths agree on the final ``state_root``.

Run:  python examples/resumable_marketplace.py
"""

import shutil
import tempfile

from repro.sim import preset, resume_scenario, run_scenario
from repro.sim.runner import InterruptedRun
from repro.store import NodeStore, state_root


def main() -> None:
    scenario = preset("poisson", seed=42, tasks=10)

    # 1. The uninterrupted reference run.
    reference = run_scenario(scenario, keep_objects=True)
    reference_root = state_root(reference.dragoon.chain)
    print("reference run : %d blocks, %d tasks settled, %dk gas"
          % (reference.report.blocks, reference.report.tasks_settled,
             reference.report.total_gas // 1000))
    print("   state_root : %s" % reference_root.hex()[:32])

    state_dir = tempfile.mkdtemp(prefix="dragoon-resumable-")
    try:
        # 2. The same scenario, persisted — and killed halfway.
        halfway = reference.report.blocks // 2
        store = NodeStore.init(state_dir)
        marker = run_scenario(
            scenario, store=store, checkpoint_every=4, interrupt_after=halfway
        )
        assert isinstance(marker, InterruptedRun)
        print("\nkilled the run at block %d (checkpoint on disk: %s)"
              % (marker.step, state_dir))

        resumed = resume_scenario(state_dir, keep_objects=True)
        resumed_root = state_root(resumed.dragoon.chain)
        print("resumed run   : %d blocks, %d tasks settled, %dk gas"
              % (resumed.report.blocks, resumed.report.tasks_settled,
                 resumed.report.total_gas // 1000))
        print("   state_root : %s" % resumed_root.hex()[:32])

        assert resumed.report.to_json() == reference.report.to_json()
        assert resumed_root == reference_root
        print("\nresumed report matches the uninterrupted run byte for byte")

        # 3. Crash recovery: snapshot + WAL replay, canonical state only.
        recovered, meta = store.load()
        recovered_root = state_root(recovered)
        print("crash recovery: height %d via snapshot + %d WAL record(s)"
              % (recovered.height, meta["replayed"]))
        print("   state_root : %s" % recovered_root.hex()[:32])
        assert recovered_root == reference_root
        print("\nall three paths agree on the final state_root")
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
