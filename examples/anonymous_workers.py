#!/usr/bin/env python3
"""Anonymous worker participation via linkable ring signatures.

The paper (footnote 6) notes workers interested in anonymity can plug in
an anonymous-yet-accountable authentication scheme.  This example runs
one: the registration authority publishes a ring of eligible worker
keys; workers commit under LSAG ring signatures with the task id as the
linkability context.  The chain learns that *distinct eligible* workers
participated — but not which ring member is which pseudonym — and a
Sybil attempting to take two slots is caught by the linkability tag.

Run:  python examples/anonymous_workers.py
"""

from repro.chain.chain import Chain
from repro.core.anonymity import AnonymousHITContract, AnonymousWorkerIdentity
from repro.core.requester import RequesterClient
from repro.core.task import HITTask, TaskParameters
from repro.crypto.commitment import commit as make_commitment
from repro.crypto.ring import keygen_ring
from repro.storage.swarm import SwarmStore


def build_task() -> HITTask:
    parameters = TaskParameters(
        num_questions=12,
        budget=99,
        num_workers=3,
        answer_range=(0, 1),
        quality_threshold=2,
        num_golds=3,
    )
    return HITTask(
        parameters,
        ["q%d" % i for i in range(12)],
        [0, 1, 2],
        [1, 1, 0],
        [1, 1, 0] + [0] * 9,
    )


def main() -> None:
    task = build_task()
    chain, swarm = Chain(), SwarmStore()

    # The RA has granted five workers; their ring is public.
    ring_publics, ring_secrets = keygen_ring(5)
    print("RA-published worker ring: %d eligible members" % len(ring_publics))

    requester = RequesterClient("alice", task, chain, swarm)
    task_digest = swarm.put(task.questions_blob())
    golden_commitment, requester._golden_key = make_commitment(task.golden_blob())
    contract = AnonymousHITContract("anon-task")
    contract.set_worker_ring(ring_publics)
    params_json = task.parameters.to_json()
    receipt = chain.deploy(
        contract,
        requester.address,
        args=(params_json, requester.public_key.to_bytes(),
              golden_commitment.digest, task_digest),
        payload=params_json.encode() + golden_commitment.digest + task_digest,
    )
    requester.contract_name = "anon-task"
    print("task deployed: %dk gas" % (receipt.gas_used // 1000))

    # Ring members 1 and 3 participate behind fresh pseudonyms.
    answers = [1, 1, 0] + [0] * 9
    participants = []
    for slot, member_index in enumerate((1, 3)):
        identity = AnonymousWorkerIdentity(
            ring_publics, ring_secrets[member_index], member_index
        )
        ciphertexts = requester.public_key.encrypt_vector(answers)
        blob = b"".join(c.to_bytes() for c in ciphertexts)
        commitment, key = make_commitment(blob)
        signature = identity.sign_commitment(commitment.digest, b"anon-task")
        pseudonym = chain.register_account("pseudonym-%d" % slot, 0)
        chain.send(pseudonym, "anon-task", "commit_anonymous",
                   args=(commitment.digest, signature),
                   payload=commitment.digest)
        participants.append((pseudonym, blob, key, signature))
    block = chain.mine_block()
    for receipt, (pseudonym, _, _, signature) in zip(block.receipts, participants):
        print("  %s committed anonymously (tag %s..., %dk gas): %s"
              % (pseudonym.label, signature.tag.to_bytes().hex()[:12],
                 receipt.gas_used // 1000,
                 "ok" if receipt.succeeded else "FAILED"))

    # Ring member 1 tries to grab a second slot under a new pseudonym,
    # racing against ring member 4 for the last worker slot.
    cheat = AnonymousWorkerIdentity(ring_publics, ring_secrets[1], 1)
    digest2 = b"\x99" * 32
    signature2 = cheat.sign_commitment(digest2, b"anon-task")
    sybil = chain.register_account("sybil-pseudonym", 0)
    chain.send(sybil, "anon-task", "commit_anonymous",
               args=(digest2, signature2), payload=digest2)

    honest = AnonymousWorkerIdentity(ring_publics, ring_secrets[4], 4)
    ciphertexts = requester.public_key.encrypt_vector(answers)
    blob = b"".join(c.to_bytes() for c in ciphertexts)
    commitment, key = make_commitment(blob)
    signature = honest.sign_commitment(commitment.digest, b"anon-task")
    pseudonym = chain.register_account("pseudonym-2", 0)
    chain.send(pseudonym, "anon-task", "commit_anonymous",
               args=(commitment.digest, signature), payload=commitment.digest)
    participants.append((pseudonym, blob, key, signature))

    block = chain.mine_block()
    print("  sybil second slot : %s" % block.receipts[0].revert_reason)
    print("  ring member 4 took the last slot: %s"
          % block.receipts[1].succeeded)

    # Reveals and settlement proceed exactly like the base protocol.
    for pseudonym, blob, key, _ in participants:
        chain.send(pseudonym, "anon-task", "reveal", args=(blob, key),
                   payload=blob + key)
    chain.mine_block()
    requester.send_golden()
    chain.mine_block()
    requester.send_finalize()
    chain.mine_block()

    print("\n--- settlement ---")
    for pseudonym, _, _, _ in participants:
        print("  %s paid %d coins" % (
            pseudonym.label, chain.ledger.balance_of(pseudonym)))
    print("\nthe chain never learned which ring members participated.")


if __name__ == "__main__":
    main()
