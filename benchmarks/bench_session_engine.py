"""Staggered-arrival throughput: the session engine vs the lock-step path.

The lock-step driver cannot start task *i+1* until task *i* settles, so
N tasks cost ~5N blocks of chain time even when their phases could
overlap.  The session engine runs every task as its own phase state
machine over the event bus, so a task arriving at block *b* commits
while earlier arrivals reveal or evaluate: the pipeline's steady state
settles one task per block, and chain growth collapses from ~5 blocks
per task to ~1 (plus the pipeline fill).  With all tasks arriving at
once the engine degenerates to the batched five-block schedule.

Reproduce the table with::

    PYTHONPATH=src python -m pytest benchmarks/bench_session_engine.py -s -q

Block counts are deterministic, so the committed bar — staggered
arrivals beat lock-step sequential execution — is asserted in smoke
mode too.
"""

from __future__ import annotations


from repro.analysis.tables import render_table
from repro.core.task import HITTask, TaskParameters
from repro.dragoon import Dragoon, TaskArrival

from bench_helpers import emit, pick, record
from repro.obs.tracing import span_clock

NUM_TASKS = pick(8, 3)
GOOD = [0] * 10
BAD = [1] * 10


def _task() -> HITTask:
    parameters = TaskParameters(10, 100, 2, (0, 1), 2, 3)
    return HITTask(parameters, ["q%d" % i for i in range(10)],
                   [0, 1, 2], [0, 0, 0], [0] * 10)


def _run_lock_step() -> int:
    """One Dragoon, N sequential run_task calls: the old deployment story."""
    dragoon = Dragoon()
    for index in range(NUM_TASKS):
        dragoon.fund("req-%d" % index, 100)
        dragoon.run_task("req-%d" % index, _task(), [GOOD, BAD])
    return dragoon.chain.height


def _run_staggered(stagger: int) -> int:
    """N tasks arriving ``stagger`` blocks apart through the engine."""
    dragoon = Dragoon()
    arrivals = [
        TaskArrival(index * stagger, "req-%d" % index, _task(), [GOOD, BAD])
        for index in range(NUM_TASKS)
    ]
    dragoon.serve(arrivals)
    return dragoon.chain.height


def test_staggered_arrivals_beat_lock_step():
    rows = []

    start = span_clock()
    lock_step_blocks = _run_lock_step()
    lock_step_s = span_clock() - start
    rows.append(["lock-step sequential", lock_step_blocks,
                 "%.2fs" % lock_step_s])

    start = span_clock()
    staggered_blocks = _run_staggered(stagger=1)
    staggered_s = span_clock() - start
    rows.append(["session engine, stagger 1", staggered_blocks,
                 "%.2fs" % staggered_s])

    start = span_clock()
    batched_blocks = _run_staggered(stagger=0)
    batched_s = span_clock() - start
    rows.append(["session engine, simultaneous", batched_blocks,
                 "%.2fs" % batched_s])

    emit(
        "session_engine_throughput",
        render_table(
            ["arrival pattern", "chain blocks", "wall time"],
            rows,
            title="%d tasks (2 workers each): blocks of chain time"
            % NUM_TASKS,
        ),
    )
    record(
        "session_engine_throughput",
        {"tasks": NUM_TASKS},
        {"lock_step": lock_step_s, "staggered": staggered_s,
         "batched": batched_s},
        values={
            "lock_step_blocks": lock_step_blocks,
            "staggered_blocks": staggered_blocks,
            "batched_blocks": batched_blocks,
        },
    )

    # The committed bar: pipelining beats lock-step, batching beats both.
    assert staggered_blocks < lock_step_blocks
    assert batched_blocks == 5
    assert lock_step_blocks == 5 * NUM_TASKS
