"""Ablation A3 — what the commit-reveal defence costs.

The two-subphase submission (commit, then reveal) is the crux that
defeats the rushing adversary and the copy-paste free-rider.  This bench
quantifies its price: the extra commit transaction per worker, compared
to a hypothetical single-shot submission that sends the ciphertexts
directly (which would be insecure: mempool observers could copy them).
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_gas, render_table
from repro.chain.gas import PAPER_PRICING, TX_BASE, calldata_cost
from repro.core.protocol import run_hit

from bench_helpers import SMOKE, bench_task, emit, imagenet_answer_sets, record


@pytest.fixture(scope="module")
def outcome():
    task = bench_task()
    answers = imagenet_answer_sets(task, [0.98, 0.97, 0.96, 0.95])
    return run_hit(task, answers)


def test_commit_reveal_overhead_report(benchmark, outcome):
    gas = outcome.gas
    label = outcome.workers[0].label
    commit_gas = gas.commits[label]
    reveal_gas = gas.reveals[label]
    submit_gas = commit_gas + reveal_gas

    # Hypothetical insecure single-shot submission: same calldata and
    # storage as the reveal, but no separate commit transaction and no
    # commitment-opening hash.
    single_shot = reveal_gas - TX_BASE // 100  # same tx, same work
    overhead = submit_gas - single_shot
    overhead_fraction = overhead / submit_gas

    rows = [
        ["Commit transaction", format_gas(commit_gas),
         "$%.3f" % PAPER_PRICING.to_usd(commit_gas)],
        ["Reveal transaction", format_gas(reveal_gas),
         "$%.3f" % PAPER_PRICING.to_usd(reveal_gas)],
        ["Two-phase total (secure)", format_gas(submit_gas),
         "$%.3f" % PAPER_PRICING.to_usd(submit_gas)],
        ["Single-shot (INSECURE baseline)", format_gas(single_shot),
         "$%.3f" % PAPER_PRICING.to_usd(single_shot)],
        ["Security overhead", format_gas(overhead),
         "%.1f%% of submit" % (100 * overhead_fraction)],
    ]
    text = render_table(
        ["Submission path", "Gas", "Cost"],
        rows,
        title="Ablation A3 - the price of the commit-reveal defence "
        "(per worker, ImageNet task)",
    )
    emit("ablation_commit_reveal", text)
    record(
        "ablation_commit_reveal",
        {"workers": len(outcome.workers)},
        {},
        values={
            "commit_gas": commit_gas,
            "reveal_gas": reveal_gas,
            "submit_gas": submit_gas,
            "single_shot_gas": single_shot,
            "overhead_gas": overhead,
            "overhead_fraction": overhead_fraction,
        },
    )

    # The defence is cheap: commit is a small fraction of the submission
    # (at the paper's task size; the tiny smoke task has less to amortize).
    if not SMOKE:
        assert overhead_fraction < 0.10
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_commit_transaction_cost(benchmark):
    """Standalone cost of one commit (32-byte digest) transaction."""
    digest = b"\x5a" * 32
    benchmark(lambda: TX_BASE + calldata_cost(digest))
