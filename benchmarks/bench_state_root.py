"""State-root pricing: incremental Merkle trie vs flat re-encode.

Before the Merkleized state tree, ``state_root`` was a keccak over the
*entire* canonical state encoding — every root read re-encoded and
re-hashed every account, block, and event, which priced the per-block
WAL stamp and every ``chain_state_root`` RPC at O(state).  The trie
tracker re-encodes only the diffable live domain and re-hashes only the
dirty paths, so a point mutation costs O(log n) hashing no matter how
large the chain grows.

Columns, per account-set size:

* full re-encode — ``keccak256(encode_chain_state(chain))``, the
  pre-trie flat baseline;
* incremental — ``chain_state_trie(chain).root(chain)`` after one
  balance mutation (the steady-state per-block read);
* speedup — full / incremental;
* prove + verify — one account proof generated and checked against the
  root (the light-client unit of work).

The ≥10× acceptance floor is asserted at the 1000-account point (full
mode only; smoke mode shrinks sizes and skips assertions).

Reproduce with::

    PYTHONPATH=src python -m pytest benchmarks/bench_state_root.py -s -q
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.chain.chain import Chain
from repro.crypto.keccak import keccak256
from repro.obs.tracing import span_clock
from repro.store import codec
from repro.store.trie import account_key, chain_state_trie, verify_proof

from bench_helpers import SMOKE, emit, pick, record

SIZES = pick((100, 300, 1000), (20, 50))
HISTORY_BLOCKS = pick(20, 3)
REPEATS = pick(10, 2)


def _grown_chain(accounts: int):
    chain = Chain()
    addresses = [
        chain.register_account("acct-%05d" % index, 100 + index)
        for index in range(accounts)
    ]
    for _ in range(HISTORY_BLOCKS):
        chain.mine_block()
    return chain, addresses


def _timed(fn, repeats: int) -> float:
    start = span_clock()
    for _ in range(repeats):
        fn()
    return (span_clock() - start) / repeats


def test_state_root_incremental_vs_full():
    rows = []
    timings = {}
    speedups = {}
    for size in SIZES:
        chain, addresses = _grown_chain(size)
        tracker = chain_state_trie(chain)
        tracker.root(chain)  # build once; steady state from here

        full_s = _timed(
            lambda: keccak256(codec.encode_chain_state(chain)), REPEATS
        )

        cursor = iter(range(10**9))

        def mutate_and_root():
            address = addresses[next(cursor) % len(addresses)]
            chain.ledger._balances[address] += 1
            return tracker.root(chain)

        incremental_s = _timed(mutate_and_root, REPEATS)

        root = tracker.root(chain)
        key = account_key(addresses[0])
        prove_s = _timed(lambda: tracker.prove(chain, key), REPEATS)
        proof = tracker.prove(chain, key)
        verify_s = _timed(lambda: verify_proof(root, key, proof), REPEATS)

        speedup = full_s / incremental_s if incremental_s else float("inf")
        speedups[size] = speedup
        timings["full_reencode_%d" % size] = full_s
        timings["incremental_%d" % size] = incremental_s
        timings["prove_%d" % size] = prove_s
        timings["verify_%d" % size] = verify_s
        rows.append(
            [
                size,
                "%.2f ms" % (full_s * 1e3),
                "%.2f ms" % (incremental_s * 1e3),
                "%.1fx" % speedup,
                "%.2f ms" % (prove_s * 1e3),
                "%.3f ms" % (verify_s * 1e3),
            ]
        )

    emit(
        "state_root",
        render_table(
            ["accounts", "full re-encode", "incremental", "speedup",
             "prove", "verify"],
            rows,
            title="State root: incremental trie vs flat re-encode "
            "(%d history blocks)" % HISTORY_BLOCKS,
        ),
    )
    record(
        "state_root",
        {"sizes": list(SIZES), "history_blocks": HISTORY_BLOCKS,
         "repeats": REPEATS},
        timings,
        values={"speedup_%d" % size: value for size, value in speedups.items()},
    )

    if not SMOKE:
        # The acceptance floor: a point mutation's root read must beat
        # the flat re-encode by an order of magnitude at 1k accounts.
        assert speedups[1000] >= 10.0, (
            "incremental root only %.1fx faster than full re-encode"
            % speedups[1000]
        )
