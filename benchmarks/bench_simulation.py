"""Workload regimes through the simulator: blocks/task across arrival laws.

PR 2's stagger table (``bench_session_engine.py``) showed the engine
collapsing chain growth from ~5 blocks per task (lock-step) toward ~1
(steady stagger-1 stream).  This bench asks the follow-up question with
*realistic* load instead of a fixed stagger: how does chain time per
task behave under Poisson traffic, flash-crowd bursts, a diurnal cycle,
and the closed-loop republish-on-settlement economy, with workers drawn
from a stochastic population that joins tasks by expected utility?

Bursts are the best case (whole bursts share each phase block, like the
5-blocks-for-N batched path); Poisson/diurnal pay a pipeline-fill cost
per quiet gap; the closed loop sits in between because settlements seed
the next arrivals.  Every run is seeded, so the recorded numbers are
deterministic and the committed bars hold in smoke mode too.

Reproduce the table with::

    PYTHONPATH=src python -m pytest benchmarks/bench_simulation.py -s -q
"""

from __future__ import annotations


from repro.analysis.tables import render_table
from repro.sim import preset, run_scenario

from bench_helpers import emit, pick, record
from repro.obs.tracing import span_clock

TASKS = pick(24, 6)
SEED = 2020

REGIMES = ["poisson", "burst", "diurnal", "closed-loop"]


def test_arrival_regimes_blocks_per_task():
    rows = []
    reports = {}
    timings = {}
    for name in REGIMES:
        scenario = preset(name, seed=SEED, tasks=TASKS)
        start = span_clock()
        report = run_scenario(scenario)
        elapsed = timings[name] = span_clock() - start
        report.check_invariants()
        reports[name] = report
        rows.append([
            name,
            report.tasks_published,
            report.blocks,
            "%.2f" % report.blocks_per_task,
            "%.2f" % report.settled_per_block,
            "%.1f" % report.commit_to_finalize["mean"],
            "%dk" % (int(report.gas_per_settled_task) // 1000),
            "%.2fs" % elapsed,
        ])

    emit(
        "simulation_regimes",
        render_table(
            ["regime", "tasks", "blocks", "blocks/task", "settled/block",
             "mean c->f latency", "gas/task", "wall time"],
            rows,
            title="Arrival regimes through the workload simulator "
            "(seed %d; lock-step sequential would need 5 blocks/task)"
            % SEED,
        ),
    )
    record(
        "simulation_regimes",
        {"tasks": TASKS, "seed": SEED},
        timings,
        values={
            "%s_blocks" % name: reports[name].blocks for name in REGIMES
        },
    )

    # The committed bars, all deterministic under the fixed seed:
    for name, report in reports.items():
        # Every issued task settles (the populations are sized to fill).
        assert report.tasks_settled == report.tasks_published, name
        # Concurrency beats the 5-blocks-per-task lock-step floor.
        assert report.blocks_per_task < 5.0, name
    # Whole bursts march through each phase together, so their
    # commit->finalize latency pins to the engine's 3-block floor.
    assert reports["burst"].commit_to_finalize["mean"] == 3.0
