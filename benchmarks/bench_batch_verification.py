"""Batched vs. sequential verification — the throughput tentpole's receipts.

The paper's practicality claim rests on cheap verification of many
per-worker proofs.  This bench records what the batch-verification
subsystem buys over one-at-a-time checking, on the two verifier families
the system actually runs:

* **VPKE** (`repro.crypto.vpke`): ``verify_decryption_batch`` folds the
  two group equations of every proof into one multi-scalar
  multiplication with random 128-bit weights.
* **Groth16** (`repro.baseline.groth16`): ``verify_batch`` folds ``n``
  4-pairing verification equations into one ``n + 3``-pair Miller-loop
  product with a single shared final exponentiation.

Reproduce the table with::

    PYTHONPATH=src python -m pytest benchmarks/bench_batch_verification.py -s -q

The committed acceptance bar is a >= 2x speedup at batch size 16 for
both families (asserted below in full mode; the smoke run uses a tiny
batch and skips the timing assertion, since timing tiny batches under a
loaded CI machine proves nothing).
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_seconds, render_table
from repro.baseline.circuits import multiplication_chain_circuit
from repro.baseline.groth16 import prove, setup, verify, verify_batch
from repro.baseline.qap import QAP
from repro.crypto.elgamal import keygen
from repro.crypto.schnorr import schnorr_prove, schnorr_verify, schnorr_verify_batch
from repro.crypto.curve import G1Point, random_scalar
from repro.crypto.vpke import (
    prove_decryption,
    verify_decryption,
    verify_decryption_batch,
)
from repro.utils.timing import best_of

from bench_helpers import SMOKE, emit, pick, record
from repro.obs.tracing import span_clock

BATCH_SIZE = pick(16, 3)
SPEEDUP_BAR = 2.0


@pytest.fixture(scope="module")
def vpke_batch():
    pk, sk = keygen(secret=0xBA7C5)
    statements = []
    for index in range(BATCH_SIZE):
        ciphertext = pk.encrypt(index % 2)
        claim, proof = prove_decryption(sk, ciphertext, range(2))
        statements.append((claim, ciphertext, proof))
    # Warm the fixed-base tables so neither path pays setup inside the timer.
    assert verify_decryption_batch(pk, statements[:1])
    assert verify_decryption(pk, *statements[0])
    return pk, statements


@pytest.fixture(scope="module")
def schnorr_batch():
    statements = []
    generator = G1Point.generator()
    for _ in range(BATCH_SIZE):
        secret = random_scalar()
        statements.append((generator * secret, schnorr_prove(secret)))
    return statements


@pytest.fixture(scope="module")
def groth16_batch():
    """BATCH_SIZE proofs of one circuit shape under a single vk."""
    size = pick(4, 2)
    systems = [multiplication_chain_circuit(size, base=i + 2)
               for i in range(BATCH_SIZE)]
    qap = QAP.from_r1cs(systems[0])
    proving_key, verifying_key = setup(qap)
    instances = []
    for system in systems:
        assignment = system.full_assignment()
        proof = prove(proving_key, QAP.from_r1cs(system), assignment)
        instances.append((system.public_values(assignment), proof))
    return verifying_key, instances


def test_vpke_batch_agrees_with_sequential(vpke_batch):
    pk, statements = vpke_batch
    sequential = all(
        verify_decryption(pk, claim, ciphertext, proof)
        for claim, ciphertext, proof in statements
    )
    batched = verify_decryption_batch(pk, statements)
    assert batched is True and sequential == batched


def test_schnorr_batch_agrees_with_sequential(schnorr_batch):
    sequential = all(
        schnorr_verify(public, proof) for public, proof in schnorr_batch
    )
    batched = schnorr_verify_batch(schnorr_batch)
    assert batched is True and sequential == batched


def test_groth16_batch_agrees_with_sequential(groth16_batch):
    verifying_key, instances = groth16_batch
    sequential = all(
        verify(verifying_key, publics, proof) for publics, proof in instances
    )
    batched = verify_batch(verifying_key, instances)
    assert batched is True and sequential == batched


def test_batch_verification_report(
    benchmark, vpke_batch, schnorr_batch, groth16_batch
):
    pk, vpke_statements = vpke_batch
    verifying_key, groth16_instances = groth16_batch

    vpke_seq, ok1 = best_of(
        lambda: all(
            verify_decryption(pk, claim, ciphertext, proof)
            for claim, ciphertext, proof in vpke_statements
        ),
        repeats=3,
    )
    vpke_bat, ok2 = best_of(
        lambda: verify_decryption_batch(pk, vpke_statements), repeats=3
    )

    schnorr_seq, ok3 = best_of(
        lambda: all(schnorr_verify(public, proof)
                    for public, proof in schnorr_batch),
        repeats=3,
    )
    schnorr_bat, ok4 = best_of(
        lambda: schnorr_verify_batch(schnorr_batch), repeats=3
    )

    groth16_seq, ok5 = best_of(
        lambda: all(
            verify(verifying_key, publics, proof)
            for publics, proof in groth16_instances
        ),
        repeats=1,
    )
    groth16_bat, ok6 = best_of(
        lambda: verify_batch(verifying_key, groth16_instances), repeats=1
    )
    assert ok1 and ok2 and ok3 and ok4 and ok5 and ok6

    rows = []
    speedups = {}
    for family, seq, bat, mechanism in (
        ("VPKE decryption proofs", vpke_seq, vpke_bat,
         "RLC fold -> one MSM (5n+2 terms)"),
        ("Schnorr PoKs", schnorr_seq, schnorr_bat,
         "RLC fold -> one MSM (2n+1 terms)"),
        ("Groth16 proofs", groth16_seq, groth16_bat,
         "one Miller product (n+3 pairs), one final exp"),
    ):
        speedups[family] = seq / max(bat, 1e-9)
        rows.append(
            [family, str(BATCH_SIZE), format_seconds(seq), format_seconds(bat),
             "%.2fx" % speedups[family], mechanism]
        )
    text = render_table(
        ["Proof family", "Batch", "Sequential", "Batched", "Speedup",
         "Mechanism"],
        rows,
        title="Batched vs sequential verification (batch size %d)"
        % BATCH_SIZE,
    )
    emit("batch_verification", text)
    record(
        "batch_verification",
        {"batch_size": BATCH_SIZE},
        {
            "vpke_sequential": vpke_seq,
            "vpke_batched": vpke_bat,
            "schnorr_sequential": schnorr_seq,
            "schnorr_batched": schnorr_bat,
            "groth16_sequential": groth16_seq,
            "groth16_batched": groth16_bat,
        },
    )

    if not SMOKE:
        assert speedups["VPKE decryption proofs"] >= SPEEDUP_BAR, speedups
        assert speedups["Groth16 proofs"] >= SPEEDUP_BAR, speedups
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_core_scaling_report(benchmark, vpke_batch):
    """Batched VPKE verification across VerifierPool sizes (1/2/4/N).

    ``procs=0`` is the inline pool (same dispatch path, no processes) —
    the serial reference every pooled row is checked bit-for-bit
    against.  On a single-core host the pooled rows only show dispatch
    overhead; the >= 2x acceptance bar therefore only arms on machines
    with >= 4 cores, where chunked Pippenger has real cores to use.
    """
    import os

    from repro.parallel import VerifierPool

    pk, statements = vpke_batch
    serial, ok = best_of(
        lambda: verify_decryption_batch(pk, statements), repeats=3
    )
    assert ok

    cores = os.cpu_count() or 1
    sweep = sorted({1, 2, 4, cores} if not SMOKE else {0, 1})
    rows = [["serial (no pool)", format_seconds(serial), "1.00x", "-"]]
    timings = {}
    for procs in sweep:
        with VerifierPool(procs) as pool:
            with pool.installed():
                # Warm the executor outside the timer: fork cost is
                # one-time, chunk throughput is what scales.
                assert verify_decryption_batch(pk, statements)
                pooled, ok = best_of(
                    lambda: verify_decryption_batch(pk, statements),
                    repeats=3,
                )
            dispatched = pool.jobs_dispatched
        assert ok
        timings[procs] = pooled
        rows.append(
            ["VerifierPool(%d)" % procs, format_seconds(pooled),
             "%.2fx" % (serial / max(pooled, 1e-9)), str(dispatched)]
        )
    text = render_table(
        ["Verification path", "Wall clock", "Speedup", "Jobs"],
        rows,
        title="Core scaling: batched VPKE verification, batch size %d "
        "(%d-core host)" % (BATCH_SIZE, cores),
    )
    emit("core_scaling_verification", text)
    record(
        "core_scaling_verification",
        {"batch_size": BATCH_SIZE, "sweep": sweep},
        dict(
            {"serial": serial},
            **{"pool_%d" % procs: timings[procs] for procs in timings},
        ),
    )

    if not SMOKE and cores >= 4:
        best = min(timings[p] for p in timings if p >= 4)
        assert serial / max(best, 1e-9) >= SPEEDUP_BAR, timings
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_multi_task_throughput_report(benchmark):
    """Blocks and wall-clock for N tasks: sequential vs run_hits_batch."""
    import time

    from repro.dragoon import Dragoon
    from repro.core.task import HITTask, TaskParameters

    def tiny_task() -> HITTask:
        parameters = TaskParameters(
            num_questions=8,
            budget=100,
            num_workers=2,
            answer_range=(0, 1),
            quality_threshold=2,
            num_golds=3,
        )
        return HITTask(
            parameters,
            ["q%d" % i for i in range(8)],
            [0, 1, 2],
            [0, 0, 0],
            [0] * 8,
        )

    num_tasks = pick(8, 2)
    answers = [[0] * 8, [1] * 8]  # one accepted, one rejected per task

    sequential = Dragoon()
    t0 = span_clock()
    for index in range(num_tasks):
        sequential.run_task("req-%d" % index, tiny_task(), answers)
    seq_time = span_clock() - t0
    seq_blocks = sequential.chain.height

    batched = Dragoon()
    t0 = span_clock()
    batched.run_hits_batch(
        [("req-%d" % index, tiny_task(), answers) for index in range(num_tasks)]
    )
    bat_time = span_clock() - t0
    bat_blocks = batched.chain.height

    rows = [
        ["run_task x %d" % num_tasks, str(seq_blocks),
         format_seconds(seq_time), "-"],
        ["run_hits_batch(%d)" % num_tasks, str(bat_blocks),
         format_seconds(bat_time), "%.2fx" % (seq_time / max(bat_time, 1e-9))],
    ]
    text = render_table(
        ["Execution path", "Blocks mined", "Wall clock", "Speedup"],
        rows,
        title="Multi-task throughput: %d interleaved tasks" % num_tasks,
    )
    emit("batch_throughput", text)
    record(
        "batch_throughput",
        {"tasks": num_tasks},
        {"sequential": seq_time, "batched": bat_time},
        values={"sequential_blocks": seq_blocks, "batched_blocks": bat_blocks},
    )

    assert bat_blocks == 5
    assert bat_blocks < seq_blocks
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
