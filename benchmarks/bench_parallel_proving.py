"""Parallel proving and the pipelined session engine — the PR-7 receipts.

Two questions, each with a determinism check welded to the timing so a
"fast but different" regression can never publish a number:

* **Proving throughput** — a worker's commit-phase encryption and the
  PoQoEA proof, dispatched through :class:`repro.parallel.ProverPool`
  at 0/1/2/N processes.  ``procs=0`` runs the identical job code inline
  and is the byte-reference; every pooled row must reproduce its output
  exactly (per-job DRBG seeds make that possible).
* **End-to-end pipelining** — ``Dragoon.serve`` over staggered tasks
  with proof generation handed off asynchronously against block mining,
  vs. the same workload fully serial.  The ``state_root`` must match
  bit-for-bit across all pool sizes.

Reproduce with::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel_proving.py -s -q

On a single-core host the pooled rows measure dispatch overhead, not
speedup — the >= 2x acceptance bar only arms on >= 4 cores (full mode).
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.tables import format_seconds, render_table
from repro.chain.transactions import scoped_tx_nonces
from repro.core.task import HITTask, TaskParameters
from repro.crypto.elgamal import keygen
from repro.crypto.rng import deterministic_entropy
from repro.dragoon import Dragoon, TaskArrival
from repro.parallel import ProverPool, VerifierPool
from repro.store import codec
from repro.utils.timing import best_of

from bench_helpers import SMOKE, emit, pick, record
from repro.obs.tracing import span_clock

SPEEDUP_BAR = 2.0
CORES = os.cpu_count() or 1


def _sweep():
    """Pool sizes to compare: inline reference plus 1/2/4/N processes."""
    if SMOKE:
        return [0, 1]
    return sorted({0, 1, 2, 4, CORES})


def _bench_task(num_questions: int) -> HITTask:
    parameters = TaskParameters(
        num_questions=num_questions,
        budget=100,
        num_workers=2,
        answer_range=(0, 1),
        quality_threshold=2,
        num_golds=3,
    )
    return HITTask(
        parameters,
        ["q%d" % i for i in range(num_questions)],
        [0, 1, 2],
        [0, 0, 0],
        [0] * num_questions,
    )


def test_prover_pool_scaling_report(benchmark):
    """Commit-phase proving jobs across pool sizes, byte-checked."""
    num_answers = pick(64, 8)
    pk, sk = keygen(secret=0xD12A600)
    answers = [i % 2 for i in range(num_answers)]
    golds = ([0, 2, 4], [0, 0, 0])

    def workload(pool):
        ciphertexts = pool.encrypt_vector(pk, answers)
        quality, proof = pool.prove_quality(
            sk, ciphertexts, golds[0], golds[1], range(2)
        )
        return [c.to_bytes() for c in ciphertexts], quality, codec.encode(proof)

    rows = []
    timings = {}
    reference = None
    for procs in _sweep():
        with ProverPool(procs) as pool:

            def seeded():
                with deterministic_entropy(9):
                    return workload(pool)

            output = seeded()  # warm-up + byte check
            elapsed, _ = best_of(seeded, repeats=pick(3, 1))
        if reference is None:
            reference = output
        assert output == reference, (
            "procs=%d diverged from inline reference" % procs
        )
        timings[procs] = elapsed
        label = "inline (procs=0)" if procs == 0 else "ProverPool(%d)" % procs
        rows.append(
            [label, format_seconds(elapsed),
             "%.2fx" % (timings[0] / max(elapsed, 1e-9))]
        )
    text = render_table(
        ["Proving path", "Wall clock", "Speedup"],
        rows,
        title="Prover pool scaling: %d-answer commit + PoQoEA proof "
        "(%d-core host)" % (num_answers, CORES),
    )
    emit("parallel_proving", text)
    record(
        "parallel_proving",
        {"answers": num_answers},
        {
            ("inline" if procs == 0 else "pool_%d" % procs): elapsed
            for procs, elapsed in timings.items()
        },
    )

    if not SMOKE and CORES >= 4:
        best = min(t for p, t in timings.items() if p >= 4)
        assert timings[0] / max(best, 1e-9) >= SPEEDUP_BAR, timings
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_pipelined_serve_report(benchmark):
    """Staggered sessions, async proof handoff vs. serial — roots equal."""
    import contextlib
    import time

    num_tasks = pick(4, 2)
    num_questions = pick(16, 8)

    def run(prover_procs):
        prover = (
            ProverPool(prover_procs) if prover_procs is not None else None
        )
        verifier = (
            VerifierPool(prover_procs)
            if prover_procs is not None and prover_procs > 0
            else None
        )
        hooks = (
            verifier.installed() if verifier is not None
            else contextlib.nullcontext()
        )
        try:
            with scoped_tx_nonces(), deterministic_entropy(21), hooks:
                dragoon = Dragoon(prover_pool=prover)
                arrivals = [
                    TaskArrival(
                        2 * index,
                        "req-%d" % index,
                        _bench_task(num_questions),
                        [[0] * num_questions, [1] * num_questions],
                    )
                    for index in range(num_tasks)
                ]
                t0 = span_clock()
                dragoon.serve(arrivals)
                elapsed = span_clock() - t0
                return codec.state_root(dragoon.chain), elapsed
        finally:
            if prover is not None:
                prover.close()
            if verifier is not None:
                verifier.close()

    rows = []
    roots = {}
    timings = {}
    for procs in ([0, 1] if SMOKE else sorted({0, 2, CORES})):
        root, elapsed = run(procs)
        roots[procs] = root
        timings[procs] = elapsed
        label = "inline pools (procs=0)" if procs == 0 else "pools(%d)" % procs
        rows.append(
            [label, root.hex()[:16], format_seconds(elapsed),
             "%.2fx" % (timings[0] / max(elapsed, 1e-9))]
        )
    assert len(set(roots.values())) == 1, "pooled state roots diverged"

    text = render_table(
        ["Engine path", "state_root[:8]", "Wall clock", "Speedup"],
        rows,
        title="Pipelined serve: %d staggered tasks, async commit handoff "
        "(%d-core host)" % (num_tasks, CORES),
    )
    emit("parallel_serve", text)
    record(
        "parallel_serve",
        {"tasks": num_tasks, "questions": num_questions},
        {
            ("inline" if procs == 0 else "pool_%d" % procs): elapsed
            for procs, elapsed in timings.items()
        },
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
