"""Ablation A4 — Groth16 cost scaling in circuit size.

The anchor measurements behind the Table I generic-row extrapolation:
setup/prove cost vs constraint count for our pure-Python Groth16, and
the constant-time (4-pairing) verification that makes SNARKs attractive
on-chain despite the brutal proving cost.
"""

from __future__ import annotations


import pytest

from repro.analysis.tables import format_seconds, render_table
from repro.baseline.circuits import multiplication_chain_circuit
from repro.baseline.groth16 import prove, setup, verify
from repro.baseline.qap import QAP

from bench_helpers import SMOKE, emit, pick, record
from repro.obs.tracing import span_clock

SIZES = pick([8, 16, 32, 64], [4, 8])


@pytest.mark.parametrize("size", pick([8, 32], [4]))
def test_groth16_prove_scaling(benchmark, size):
    system = multiplication_chain_circuit(size)
    qap = QAP.from_r1cs(system)
    proving_key, _ = setup(qap)
    assignment = system.full_assignment()
    benchmark.pedantic(
        prove, args=(proving_key, qap, assignment), rounds=1, iterations=1
    )


def test_groth16_scaling_report(benchmark):
    rows = []
    prove_times = {}
    verify_times = {}
    setup_times = {}
    for size in SIZES:
        system = multiplication_chain_circuit(size)
        qap = QAP.from_r1cs(system)

        t0 = span_clock()
        proving_key, verifying_key = setup(qap)
        setup_time = setup_times[size] = span_clock() - t0

        assignment = system.full_assignment()
        t0 = span_clock()
        proof = prove(proving_key, qap, assignment)
        prove_times[size] = span_clock() - t0

        t0 = span_clock()
        ok = verify(verifying_key, system.public_values(), proof)
        verify_times[size] = span_clock() - t0
        assert ok

        rows.append(
            [
                system.num_constraints,
                format_seconds(setup_time),
                format_seconds(prove_times[size]),
                format_seconds(verify_times[size]),
            ]
        )
    text = render_table(
        ["Constraints", "Setup", "Prove", "Verify"],
        rows,
        title="Ablation A4 - Groth16 cost vs circuit size "
        "(pure-Python BN-128; verification is constant: 4 pairings)",
    )
    emit("ablation_groth16", text)
    timings = {}
    for size in SIZES:
        timings["setup_%d" % size] = setup_times[size]
        timings["prove_%d" % size] = prove_times[size]
        timings["verify_%d" % size] = verify_times[size]
    record("ablation_groth16", {"sizes": list(SIZES)}, timings)

    # Proving grows with the circuit; verification stays flat.
    # (Asserted only at full scale — tiny circuits are all noise.)
    if not SMOKE:
        assert prove_times[64] > prove_times[8]
        spread = max(verify_times.values()) / max(min(verify_times.values()), 1e-9)
        assert spread < 3.0  # constant up to noise
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
