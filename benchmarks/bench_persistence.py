"""Persistence throughput: snapshot save/load, WAL journalling, replay.

The persistence subsystem (``repro.store``) must be cheap enough to
leave on: the WAL adds a per-block diff + append to every sealed block,
snapshots serialize the whole canonical state, and recovery replays the
WAL on top of a snapshot.  This bench prices all four paths on a chain
grown by a seeded scenario, so the numbers track the *marketplace's*
state shape (contracts, ciphertext events, ledger churn), not a toy.

Columns:

* snapshot save / load — full canonical state, state_root verified on
  load (MB/s measured on the encoded size);
* WAL journal — blocks/s through ``attach_store`` while the scenario
  runs (the always-on overhead);
* WAL replay — blocks/s applying the journalled effect records onto
  the genesis snapshot (crash recovery speed).

Reproduce with::

    PYTHONPATH=src python -m pytest benchmarks/bench_persistence.py -s -q
"""

from __future__ import annotations

import os
import shutil
import tempfile

from repro.analysis.tables import render_table
from repro.chain.transactions import scoped_tx_nonces
from repro.core.task import HITTask, TaskParameters
from repro.crypto.rng import deterministic_entropy
from repro.dragoon import Dragoon
from repro.sim import preset, run_scenario
from repro.store import NodeStore, encode_chain_state, state_root

from bench_helpers import emit, pick, record
from repro.obs.tracing import span_clock

TASKS = pick(24, 5)
SEED = 77
SCENARIO = "poisson"


def _tiny_task() -> HITTask:
    parameters = TaskParameters(10, 100, 2, (0, 1), 2, 3)
    return HITTask(
        parameters,
        ["q%d" % i for i in range(10)],
        [0, 1, 2],
        [0, 0, 0],
        [0] * 10,
    )


def _timed(fn):
    start = span_clock()
    result = fn()
    return result, span_clock() - start


def test_persistence_throughput():
    workdir = tempfile.mkdtemp(prefix="dragoon-bench-store-")
    try:
        scenario = preset(SCENARIO, seed=SEED, tasks=TASKS)

        plain, plain_s = _timed(lambda: run_scenario(scenario, keep_objects=True))
        chain = plain.dragoon.chain
        blocks = chain.height

        journal_store = NodeStore.init(os.path.join(workdir, "journal"))
        _, journal_s = _timed(
            lambda: run_scenario(scenario, store=journal_store)
        )

        encoded = encode_chain_state(chain)
        state_mb = len(encoded) / 1e6

        snap_store = NodeStore.init(os.path.join(workdir, "snap"))
        root, save_s = _timed(lambda: snap_store.save(chain))
        (loaded, _meta), load_s = _timed(lambda: snap_store.load())
        assert state_root(loaded) == root

        # The runner snapshots at quiescence (resetting its WAL), so the
        # replay path is priced on a manually journalled batch run whose
        # WAL still holds every block.
        replay_store = NodeStore.init(os.path.join(workdir, "replay"))
        with scoped_tx_nonces(), deterministic_entropy(SEED):
            dragoon = Dragoon()
            dragoon.chain.attach_store(replay_store)
            dragoon.run_hits_batch(
                [
                    ("req-%d" % index, _tiny_task(), [[0] * 10, [1] * 10])
                    for index in range(TASKS)
                ]
            )
            wal_blocks = dragoon.chain.height
            (recovered, meta), replay_s = _timed(lambda: replay_store.load())
            assert meta["replayed"] == wal_blocks
            assert state_root(recovered) == state_root(dragoon.chain)

        overhead = (journal_s / plain_s - 1.0) * 100 if plain_s else 0.0
        rows = [
            ["scenario blocks", blocks, ""],
            ["canonical state", "%.2f MB" % state_mb, ""],
            ["snapshot save", "%.3fs" % save_s,
             "%.1f MB/s" % (state_mb / save_s if save_s else 0.0)],
            ["snapshot load+verify", "%.3fs" % load_s,
             "%.1f MB/s" % (state_mb / load_s if load_s else 0.0)],
            ["WAL journal (run overhead)", "%.3fs vs %.3fs" % (journal_s, plain_s),
             "%+.0f%%" % overhead],
            ["WAL replay (recovery)", "%.3fs" % replay_s,
             "%.0f blocks/s" % (wal_blocks / replay_s if replay_s else 0.0)],
        ]
        emit(
            "persistence_throughput",
            render_table(
                ["path", "time", "rate"],
                rows,
                title="Persistence throughput (%s, %d tasks, seed %d)"
                % (SCENARIO, TASKS, SEED),
            ),
        )
        record(
            "persistence_throughput",
            {"scenario": SCENARIO, "tasks": TASKS, "seed": SEED},
            {
                "scenario_plain": plain_s,
                "scenario_journalled": journal_s,
                "snapshot_save": save_s,
                "snapshot_load": load_s,
                "wal_replay": replay_s,
            },
            values={
                "blocks": blocks,
                "state_bytes": len(encoded),
                "wal_blocks": wal_blocks,
            },
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
