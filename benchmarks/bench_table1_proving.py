"""Table I — off-chain *proving* cost of VPKE and PoQoEA.

Paper's numbers (Xeon E3-1220V2, libff BN-128 / libsnark):

    Ours        VPKE     3 ms    53 MB
    Ours        PoQoEA  10 ms    53 MB
    Generic ZKP VPKE    37 s    3.9 GB
    Generic ZKP PoQoEA  112 s   10.3 GB

We measure our concrete constructions directly on the same statement
(the ImageNet task: 106 binary questions, 6 golds, a rejection proving
3 mismatches).  The generic rows are reproduced two ways: measured at
reduced scale with our real Groth16 and extrapolated to the full-scale
statement via the fitted per-constraint cost model, and cross-checked
against the paper-calibrated model.  See DESIGN.md §2.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_bytes, format_seconds, render_table
from repro.baseline.costmodel import measure_local_model, paper_calibrated_model
from repro.crypto.elgamal import keygen
from repro.crypto.poqoea import prove_quality
from repro.crypto.vpke import prove_decryption
from repro.utils.timing import measure

from bench_helpers import SMOKE, bench_task, emit, pick, record

TASK = bench_task()
RANGE = list(TASK.parameters.answer_range)


@pytest.fixture(scope="module")
def setup_statement():
    """The ImageNet rejection statement: a submission missing 3 golds."""
    pk, sk = keygen(secret=0x7A5)
    answers = list(TASK.ground_truth)
    for index in TASK.gold_indexes[:3]:
        answers[index] = 1 - answers[index]
    ciphertexts = pk.encrypt_vector(answers)
    return pk, sk, ciphertexts


def test_table1_vpke_proving(benchmark, setup_statement):
    _, sk, ciphertexts = setup_statement
    gold_ct = ciphertexts[TASK.gold_indexes[0]]
    benchmark(prove_decryption, sk, gold_ct, RANGE)


def test_table1_poqoea_proving(benchmark, setup_statement):
    _, sk, ciphertexts = setup_statement
    quality, proof = benchmark(
        prove_quality, sk, ciphertexts, TASK.gold_indexes, TASK.gold_answers, RANGE
    )
    assert quality == 3
    assert len(proof) == 3


def test_table1_generic_reduced_scale_proving(benchmark):
    """Our real Groth16 prover at reduced scale (the measured anchor)."""
    from repro.baseline.circuits import multiplication_chain_circuit
    from repro.baseline.groth16 import prove, setup
    from repro.baseline.qap import QAP

    system = multiplication_chain_circuit(pick(32, 4))
    qap = QAP.from_r1cs(system)
    proving_key, _ = setup(qap)
    assignment = system.full_assignment()
    benchmark.pedantic(
        prove, args=(proving_key, qap, assignment), rounds=2, iterations=1
    )


def test_table1_report(benchmark, setup_statement):
    """Assemble and print the full Table I reproduction.

    Wall time and peak memory are measured in *separate* runs: tracing
    allocations (tracemalloc) slows Python several-fold, so timing under
    it would overstate our proving cost by an order of magnitude.
    """
    from repro.utils.timing import MemoryMeter, best_of

    pk, sk, ciphertexts = setup_statement
    gold_ct = ciphertexts[TASK.gold_indexes[0]]

    vpke_time, _ = best_of(lambda: prove_decryption(sk, gold_ct, RANGE), repeats=5)
    poqoea_time, _ = best_of(
        lambda: prove_quality(
            sk, ciphertexts, TASK.gold_indexes, TASK.gold_answers, RANGE
        ),
        repeats=3,
    )
    with MemoryMeter() as vpke_memory:
        prove_decryption(sk, gold_ct, RANGE)
    with MemoryMeter() as poqoea_memory:
        prove_quality(sk, ciphertexts, TASK.gold_indexes, TASK.gold_answers, RANGE)

    class _M:  # adapter matching the old row-building code below
        def __init__(self, seconds, peak):
            self.elapsed_seconds = seconds
            self.peak_bytes = peak

    vpke = _M(vpke_time, vpke_memory.peak_bytes)
    poqoea = _M(poqoea_time, poqoea_memory.peak_bytes)

    local_model, samples = measure_local_model(sizes=pick((8, 16, 32), (4, 8)))
    paper_model = paper_calibrated_model()
    generic_vpke = local_model.estimate_vpke()
    generic_poqoea = local_model.estimate_poqoea()
    ref_vpke = paper_model.estimate_vpke()
    ref_poqoea = paper_model.estimate_poqoea()

    rows = [
        ["Ours", "VPKE", format_seconds(vpke.elapsed_seconds),
         format_bytes(vpke.peak_bytes), "3 ms / 53 MB"],
        ["Ours", "PoQoEA", format_seconds(poqoea.elapsed_seconds),
         format_bytes(poqoea.peak_bytes), "10 ms / 53 MB"],
        ["Generic ZKP (model)", "VPKE", format_seconds(generic_vpke.seconds),
         format_bytes(generic_vpke.peak_bytes), "37 s / 3.9 GB"],
        ["Generic ZKP (model)", "PoQoEA", format_seconds(generic_poqoea.seconds),
         format_bytes(generic_poqoea.peak_bytes), "112 s / 10.3 GB"],
        ["Generic ZKP (paper-calibrated)", "VPKE",
         format_seconds(ref_vpke.seconds), format_bytes(ref_vpke.peak_bytes),
         "37 s / 3.9 GB"],
        ["Generic ZKP (paper-calibrated)", "PoQoEA",
         format_seconds(ref_poqoea.seconds), format_bytes(ref_poqoea.peak_bytes),
         "112 s / 10.3 GB"],
    ]
    text = render_table(
        ["Scheme", "Statement", "Time", "Peak memory", "Paper"],
        rows,
        title="Table I - off-chain proving cost (ImageNet statement: "
        "106 questions, 6 golds, 3 mismatches)",
    )
    text += "\n\nMeasured Groth16 anchors (constraints, seconds, peak bytes): %s" % (
        samples,
    )
    emit("table1_proving", text)
    record(
        "table1_proving",
        {"questions": TASK.parameters.num_questions,
         "golds": TASK.parameters.num_golds},
        {
            "vpke_prove": vpke.elapsed_seconds,
            "poqoea_prove": poqoea.elapsed_seconds,
            "generic_vpke_model": generic_vpke.seconds,
            "generic_poqoea_model": generic_poqoea.seconds,
            "generic_vpke_paper": ref_vpke.seconds,
            "generic_poqoea_paper": ref_poqoea.seconds,
        },
        values={
            "vpke_peak_bytes": vpke.peak_bytes,
            "poqoea_peak_bytes": poqoea.peak_bytes,
            "generic_vpke_peak_bytes": generic_vpke.peak_bytes,
            "generic_poqoea_peak_bytes": generic_poqoea.peak_bytes,
        },
    )

    # The paper's qualitative claims must hold in our reproduction:
    # concrete proving is orders of magnitude below generic proving.
    # (Timing claims are asserted only at full scale; the smoke run's
    # tiny anchors make the fitted model meaningless.)
    if not SMOKE:
        assert vpke.elapsed_seconds < 0.2
        assert poqoea.elapsed_seconds < 1.0
        assert generic_vpke.seconds > 100 * poqoea.elapsed_seconds
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
