"""Ablation A5 — PoQoEA rejection vs SNARK rejection, end to end on-chain.

The head-to-head that motivates the whole paper, run on the same task
through both contract variants:

* Dragoon's `evaluate` — per-mismatch verifiable decryptions
  (6 ecMul + 3 ecAdd + keccak each);
* the baseline's `evaluate_generic` — one Groth16 verification
  (4 pairings at EIP-1108 prices) behind the same Fig. 4 semantics.

Off-chain proving is measured for both on the same statement; the
full-scale generic extrapolation lives in bench_table1.
"""

from __future__ import annotations


import pytest

from repro.analysis.tables import format_gas, format_seconds, render_table
from repro.baseline.circuits import quality_statement_circuit
from repro.baseline.generic_hit import GenericZKPHITContract
from repro.baseline.groth16 import prove, setup
from repro.baseline.qap import QAP
from repro.chain.chain import Chain
from repro.core.requester import RequesterClient
from repro.core.worker import WorkerClient
from repro.crypto.commitment import commit as make_commitment
from repro.crypto.poqoea import prove_quality
from repro.storage.swarm import SwarmStore

from bench_helpers import emit, record

import sys, os
sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
from tests.helpers import small_task  # noqa: E402
from repro.obs.tracing import span_clock

GOOD = [0] * 10
BAD = [1] * 10


def _run_dragoon_rejection():
    from repro.core.protocol import run_hit

    outcome = run_hit(small_task(), [GOOD, BAD])
    (label, gas) = next(iter(outcome.gas.rejections.items()))
    return gas


def _run_generic_rejection():
    task = small_task()
    chain, swarm = Chain(), SwarmStore()
    requester = RequesterClient("req", task, chain, swarm)

    circuit = quality_statement_circuit(
        task.gold_answers, claimed_quality=0, private_answers=[1, 1, 1]
    )
    qap = QAP.from_r1cs(circuit)
    proving_key, verifying_key = setup(qap)

    task_digest = swarm.put(task.questions_blob())
    commitment, requester._golden_key = make_commitment(task.golden_blob())
    params_json = task.parameters.to_json()
    contract = GenericZKPHITContract("generic-hit")
    contract.set_verifying_key(verifying_key)
    chain.deploy(
        contract,
        requester.address,
        args=(params_json, requester.public_key.to_bytes(),
              commitment.digest, task_digest),
        payload=params_json.encode() + commitment.digest + task_digest,
    )
    requester.contract_name = "generic-hit"

    workers = [
        WorkerClient("good", chain, swarm, answers=GOOD),
        WorkerClient("bad", chain, swarm, answers=BAD),
    ]
    for worker in workers:
        worker.discover("generic-hit")
        worker.send_commit()
    chain.mine_block()
    for worker in workers:
        worker.send_reveal()
    chain.mine_block()

    requester.send_golden()
    prove_start = span_clock()
    snark_proof = prove(proving_key, qap, circuit.full_assignment())
    prove_elapsed = span_clock() - prove_start
    publics = circuit.public_values()
    chain.send(
        requester.address, "generic-hit", "evaluate_generic",
        args=(workers[1].address, 0, snark_proof, publics),
        payload=b"\x01" * (256 + 32 * len(publics)),
    )
    block = chain.mine_block()
    receipt = next(
        r for r in block.receipts if r.transaction.method == "evaluate_generic"
    )
    assert receipt.succeeded, receipt.revert_reason
    return receipt.gas_used, prove_elapsed


def test_generic_vs_poqoea_rejection(benchmark):
    task = small_task()

    # Dragoon proving time on the same statement.
    from repro.crypto.elgamal import keygen

    pk, sk = keygen(secret=0xAB5)
    ciphertexts = pk.encrypt_vector(BAD)
    start = span_clock()
    prove_quality(sk, ciphertexts, task.gold_indexes, task.gold_answers, [0, 1])
    poqoea_prove = span_clock() - start

    dragoon_gas = _run_dragoon_rejection()
    generic_gas, generic_prove = _run_generic_rejection()

    rows = [
        ["Dragoon (PoQoEA)", format_seconds(poqoea_prove),
         format_gas(dragoon_gas), "per-mismatch VPKE checks"],
        ["Generic ZKP (Groth16)", format_seconds(generic_prove),
         format_gas(generic_gas),
         "4 pairings (EIP-1108) — reduced circuit; full statement "
         "proving is the Table I extrapolation"],
    ]
    text = render_table(
        ["Scheme", "Prove (off-chain)", "Reject tx gas", "Notes"],
        rows,
        title="Ablation A5 - rejecting one low-quality answer, "
        "end to end (same task, both contract variants)",
    )
    emit("ablation_generic_onchain", text)
    record(
        "ablation_generic_onchain",
        {"task": "small", "workers": 2},
        {"poqoea_prove": poqoea_prove, "groth16_prove": generic_prove},
        values={
            "dragoon_reject_gas": dragoon_gas,
            "generic_reject_gas": generic_gas,
        },
    )

    # The paper's comparison must hold: PoQoEA rejections are cheaper
    # on-chain, and concrete proving is faster off-chain.
    assert dragoon_gas < generic_gas
    assert poqoea_prove < generic_prove
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
