"""Ablation A1 — gas scaling in the task size N (questions per task).

The paper fixes N = 106; this sweep shows how each Table III row scales
with the number of questions, exposing the linear cost drivers (reveal
calldata and per-question hash storage).
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_gas, render_table
from repro.chain.gas import PAPER_PRICING
from repro.core.protocol import run_hit
from repro.core.task import HITTask, TaskParameters

from bench_helpers import SMOKE, emit, pick, record

SIZES = pick([10, 25, 50, 106, 200], [10, 25])


def _task_of_size(num_questions: int) -> HITTask:
    parameters = TaskParameters(
        num_questions=num_questions,
        budget=400,
        num_workers=4,
        answer_range=(0, 1),
        quality_threshold=4,
        num_golds=6,
    )
    gold_indexes = list(range(6))
    gold_answers = [0] * 6
    ground_truth = [0] * num_questions
    return HITTask(
        parameters,
        ["q%d" % i for i in range(num_questions)],
        gold_indexes,
        gold_answers,
        ground_truth,
    )


def _run(num_questions: int):
    task = _task_of_size(num_questions)
    answers = [[0] * num_questions for _ in range(4)]
    return run_hit(task, answers)


@pytest.mark.parametrize("num_questions", pick([10, 106], [10]))
def test_scaling_single_run(benchmark, num_questions):
    benchmark.pedantic(_run, args=(num_questions,), rounds=1, iterations=1)


def test_scaling_report(benchmark):
    rows = []
    submits = {}
    for size in SIZES:
        outcome = _run(size)
        gas = outcome.gas
        submit = gas.submit_cost("worker-0")
        submits[size] = submit
        rows.append(
            [
                size,
                format_gas(gas.publish),
                format_gas(submit),
                format_gas(gas.total),
                "$%.2f" % PAPER_PRICING.to_usd(gas.total),
            ]
        )
    text = render_table(
        ["N (questions)", "Publish", "Submit (per worker)", "Overall", "USD"],
        rows,
        title="Ablation A1 - gas scaling vs task size "
        "(4 workers, 6 golds, no rejections)",
    )
    emit("ablation_scaling", text)
    record(
        "ablation_scaling",
        {"sizes": list(SIZES), "workers": 4, "golds": 6},
        {},
        values={
            "submit_gas_%d" % size: submits[size] for size in SIZES
        },
    )

    # Submit cost must scale ~linearly in N (per-question hash storage).
    span = SIZES[-1] - SIZES[0]
    per_question = (submits[SIZES[-1]] - submits[SIZES[0]]) / float(span)
    assert 15_000 < per_question < 30_000  # ~= sstore + keccak + calldata
    # Publish is N-independent (questions live in Swarm, only the digest
    # goes on-chain) — the paper's off-chain storage optimization.
    first = _run(SIZES[0]).gas.publish
    last = _run(SIZES[-1]).gas.publish
    assert abs(first - last) < 2_000
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
