"""Table II — on-chain *verification* cost of VPKE and PoQoEA.

Paper's numbers (libff BN-128 for ours; SNARK over 2048-bit RSA-OAEP
statements for the generic rows):

    Ours        VPKE     1 ms
    Ours        PoQoEA   2 ms
    Generic ZKP VPKE    11 ms
    Generic ZKP PoQoEA  17 ms

We measure our concrete verifiers on the exact ImageNet statement and
the generic verifier as a real Groth16 verification (4 BN-128 pairings).
Absolute times are pure-Python-slow across the board; the reproduced
*shape* is that generic verification is several-fold more expensive than
the concrete construction — plus the gas-cost view, which is what
actually matters on-chain (EIP-1108 prices both sides below).
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_gas, format_seconds, render_table
from repro.chain.gas import ECADD, ECMUL, keccak_cost, pairing_cost
from repro.crypto.elgamal import keygen
from repro.crypto.poqoea import prove_quality, verify_quality
from repro.crypto.vpke import prove_decryption, verify_decryption
from repro.utils.timing import best_of

from bench_helpers import bench_task, emit, record

TASK = bench_task()
RANGE = list(TASK.parameters.answer_range)


@pytest.fixture(scope="module")
def statements():
    pk, sk = keygen(secret=0x7A6)
    answers = list(TASK.ground_truth)
    for index in TASK.gold_indexes[:3]:
        answers[index] = 1 - answers[index]
    ciphertexts = pk.encrypt_vector(answers)
    gold_ct = ciphertexts[TASK.gold_indexes[0]]
    claim, vpke_proof = prove_decryption(sk, gold_ct, RANGE)
    quality, quality_proof = prove_quality(
        sk, ciphertexts, TASK.gold_indexes, TASK.gold_answers, RANGE
    )
    return pk, ciphertexts, gold_ct, claim, vpke_proof, quality, quality_proof


@pytest.fixture(scope="module")
def groth16_instance():
    from repro.baseline.groth16 import prove, setup, verify
    from repro.baseline.qap import QAP
    from repro.baseline.r1cs import LC, ConstraintSystem

    cs = ConstraintSystem()
    out = cs.public_input("out", 35)
    x = cs.private_witness("x", 3)
    x2 = cs.mul(x, x)
    x3 = cs.mul(x2, x)
    cs.enforce(LC.of(x3) + LC.of(x) + LC.constant(5), LC.constant(1), LC.of(out))
    qap = QAP.from_r1cs(cs)
    pk, vk = setup(qap)
    proof = prove(pk, qap, cs.full_assignment())
    return vk, cs.public_values(), proof, verify


def test_table2_vpke_verification(benchmark, statements):
    pk, _, gold_ct, claim, vpke_proof, _, _ = statements
    assert benchmark(verify_decryption, pk, claim, gold_ct, vpke_proof)


def test_table2_poqoea_verification(benchmark, statements):
    pk, ciphertexts, _, _, _, quality, quality_proof = statements
    assert benchmark(
        verify_quality,
        pk,
        ciphertexts,
        quality,
        quality_proof,
        TASK.gold_indexes,
        TASK.gold_answers,
    )


def test_table2_generic_verification(benchmark, groth16_instance):
    vk, publics, proof, verify = groth16_instance
    result = benchmark.pedantic(
        verify, args=(vk, publics, proof), rounds=1, iterations=1
    )
    assert result


def test_table2_report(benchmark, statements, groth16_instance):
    pk, ciphertexts, gold_ct, claim, vpke_proof, quality, quality_proof = statements
    vk, publics, proof, verify = groth16_instance

    vpke_time, ok1 = best_of(
        lambda: verify_decryption(pk, claim, gold_ct, vpke_proof), repeats=5
    )
    poqoea_time, ok2 = best_of(
        lambda: verify_quality(
            pk, ciphertexts, quality, quality_proof,
            TASK.gold_indexes, TASK.gold_answers,
        ),
        repeats=3,
    )
    generic_time, ok3 = best_of(lambda: verify(vk, publics, proof), repeats=1)
    assert ok1 and ok2 and ok3

    # Gas view (EIP-1108): what each verification costs on-chain.
    vpke_gas = 6 * ECMUL + 3 * ECADD + keccak_cost(452)
    poqoea_gas = len(quality_proof) * vpke_gas
    groth16_gas = pairing_cost(4) + 2 * ECMUL  # pairings + IC accumulation

    rows = [
        ["Ours", "VPKE", format_seconds(vpke_time), format_gas(vpke_gas), "1 ms"],
        ["Ours", "PoQoEA (3 mismatches)", format_seconds(poqoea_time),
         format_gas(poqoea_gas), "2 ms"],
        ["Generic ZKP (Groth16, 4 pairings)", "VPKE/PoQoEA",
         format_seconds(generic_time), format_gas(groth16_gas), "11-17 ms"],
    ]
    text = render_table(
        ["Scheme", "Statement", "Verify time", "On-chain gas", "Paper time"],
        rows,
        title="Table II - on-chain verification cost",
    )
    ratio = generic_time / max(vpke_time, 1e-9)
    text += "\n\nGeneric/concrete verification time ratio: %.0fx (paper: ~11x)" % ratio
    emit("table2_verification", text)
    record(
        "table2_verification",
        {"questions": TASK.parameters.num_questions,
         "mismatches": len(quality_proof)},
        {
            "vpke_verify": vpke_time,
            "poqoea_verify": poqoea_time,
            "generic_verify": generic_time,
        },
        values={
            "vpke_gas": vpke_gas,
            "poqoea_gas": poqoea_gas,
            "groth16_gas": groth16_gas,
        },
    )

    # Qualitative reproduction: generic verification is the expensive one.
    assert generic_time > vpke_time
    assert generic_time > poqoea_time
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
