"""Ablation A2 — PoQoEA cost vs gold count |G| and option-range size.

The paper's special zero-knowledge holds because |G| and |range| are
small constants; this sweep quantifies how proving/verification cost
(and the on-chain gas of a rejection) grow with both knobs.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_gas, format_seconds, render_table
from repro.chain.gas import ECADD, ECMUL, keccak_cost
from repro.crypto.elgamal import keygen
from repro.crypto.poqoea import prove_quality, verify_quality
from repro.utils.timing import best_of

from bench_helpers import SMOKE, emit, pick, record

NUM_QUESTIONS = pick(106, 40)


def _statement(num_golds: int, range_size: int):
    """An all-mismatch statement with the given gold count and range."""
    pk, sk = keygen(secret=0xA2 + num_golds * 16 + range_size)
    answer_range = list(range(range_size))
    gold_indexes = list(range(num_golds))
    gold_answers = [0] * num_golds
    answers = [1] * NUM_QUESTIONS  # every gold mismatches (gold answer 0)
    ciphertexts = pk.encrypt_vector(answers)
    return pk, sk, ciphertexts, gold_indexes, gold_answers, answer_range


@pytest.mark.parametrize("num_golds", pick([2, 6, 16], [2]))
def test_poqoea_prove_vs_golds(benchmark, num_golds):
    pk, sk, cts, gold_idx, gold_ans, rng = _statement(num_golds, 2)
    benchmark(prove_quality, sk, cts, gold_idx, gold_ans, rng)


@pytest.mark.parametrize("range_size", pick([2, 8], [2]))
def test_poqoea_prove_vs_range(benchmark, range_size):
    pk, sk, cts, gold_idx, gold_ans, rng = _statement(6, range_size)
    benchmark(prove_quality, sk, cts, gold_idx, gold_ans, rng)


def test_poqoea_ablation_report(benchmark):
    vpke_gas = 6 * ECMUL + 3 * ECADD + keccak_cost(452)
    rows = []
    prove_times = {}
    timings = {}
    for num_golds in pick((2, 4, 6, 8, 16, 32), (2, 4)):
        pk, sk, cts, gold_idx, gold_ans, rng = _statement(num_golds, 2)
        prove_time, (quality, proof) = best_of(
            lambda: prove_quality(sk, cts, gold_idx, gold_ans, rng), repeats=3
        )
        verify_time, ok = best_of(
            lambda: verify_quality(pk, cts, quality, proof, gold_idx, gold_ans),
            repeats=3,
        )
        assert ok and quality == 0 and len(proof) == num_golds
        prove_times[num_golds] = prove_time
        timings["prove_golds_%d" % num_golds] = prove_time
        timings["verify_golds_%d" % num_golds] = verify_time
        rows.append(
            [
                num_golds,
                format_seconds(prove_time),
                format_seconds(verify_time),
                format_gas(num_golds * vpke_gas),
            ]
        )
    text = render_table(
        ["|G|", "Prove", "Verify", "Rejection gas (all golds missed)"],
        rows,
        title="Ablation A2a - PoQoEA cost vs gold-standard count "
        "(binary range, all-mismatch worst case)",
    )

    range_rows = []
    for range_size in pick((2, 4, 8, 16), (2, 4)):
        pk, sk, cts, gold_idx, gold_ans, rng = _statement(6, range_size)
        prove_time, (quality, proof) = best_of(
            lambda: prove_quality(sk, cts, gold_idx, gold_ans, rng), repeats=3
        )
        range_rows.append([range_size, format_seconds(prove_time), len(proof)])
        timings["prove_range_%d" % range_size] = prove_time
    text += "\n\n" + render_table(
        ["|range|", "Prove", "Mismatch entries"],
        range_rows,
        title="Ablation A2b - PoQoEA proving vs option-range size (|G| = 6)",
    )
    emit("ablation_poqoea", text)
    record(
        "ablation_poqoea",
        {"num_questions": NUM_QUESTIONS},
        timings,
        values={"vpke_gas_per_mismatch": vpke_gas},
    )

    # Cost grows with |G| (one VPKE per mismatch): 32 golds should cost
    # clearly more than 2 (noise-tolerant factor; full sweep only).
    if not SMOKE:
        assert prove_times[32] > 4 * prove_times[2]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
