"""What the RPC boundary costs: requests/sec and added latency.

The same staggered 8-session scenario (2 workers per task, stagger 1 —
the ``bench_session_engine`` workload) runs three ways:

* **in-process** — clients hold the :class:`Chain` object directly (the
  pre-RPC deployment story, the floor);
* **loopback RPC** — full JSON + canonical-codec wire encoding, no
  socket (what the encoding itself costs);
* **HTTP RPC** — a real localhost socket through the stdlib server
  (what one-step-from-deployment costs).

The equivalence contract rides along: all three paths must settle the
same tasks with identical payments.  A ``chain_head`` micro-benchmark
prices a single round trip on each transport, then again under
concurrency and batching against both socket front-ends (threaded vs
asyncio), and a fan-out benchmark prices server-push delivery to a
hundred-plus subscribed clients — zero ``chain_events`` polls anywhere.

Reproduce the table with::

    PYTHONPATH=src python -m pytest benchmarks/bench_rpc.py -s -q
"""

from __future__ import annotations

import asyncio
import threading

from repro.analysis.tables import render_table
from repro.chain.chain import Chain
from repro.chain.transactions import scoped_tx_nonces
from repro.core.requester import RequesterClient
from repro.core.task import HITTask, TaskParameters
from repro.core.worker import WorkerClient
from repro.crypto.rng import deterministic_entropy
from repro.rpc import (
    AsyncRpcServer,
    AsyncSubscription,
    HitSpec,
    HttpTransport,
    LoopbackTransport,
    RpcChain,
    RpcHttpServer,
    RpcNode,
    RpcRequesterClient,
    RpcSession,
    RpcSwarm,
    RpcWorkerClient,
    run_hits,
)
from repro.storage.swarm import SwarmStore

from bench_helpers import emit, pick, record
from repro.obs.tracing import span_clock

NUM_TASKS = pick(8, 3)
HEAD_CALLS = pick(2000, 50)
CONCURRENT_CLIENTS = pick(8, 4)
BATCH_SIZE = pick(100, 10)
SUBSCRIBERS = pick(128, 12)
SEED = 11
GOOD = [0] * 10
BAD = [1] * 10


def _task() -> HITTask:
    parameters = TaskParameters(10, 100, 2, (0, 1), 2, 3)
    return HITTask(parameters, ["q%d" % i for i in range(10)],
                   [0, 1, 2], [0, 0, 0], [0] * 10)


def _specs():
    return [
        HitSpec(index, "req-%d" % index, _task(), [GOOD, BAD])
        for index in range(NUM_TASKS)
    ]


def _run_in_process():
    chain, swarm = Chain(), SwarmStore()
    with scoped_tx_nonces(), deterministic_entropy(SEED):
        outcomes = run_hits(
            chain, swarm, _specs(),
            lambda label, task: RequesterClient(label, task, chain, swarm),
            lambda label, answers: WorkerClient(label, chain, swarm,
                                                answers=answers),
        )
    # Materialized eagerly: payments are ledger reads, and the RPC
    # variants' servers are torn down before the comparison runs.
    return [outcome.payments() for outcome in outcomes], chain.height, None


def _run_over(transport):
    with scoped_tx_nonces(), deterministic_entropy(SEED):
        outcomes = run_hits(
            RpcChain(transport), RpcSwarm(transport), _specs(),
            lambda label, task: RpcRequesterClient(label, task, transport),
            lambda label, answers: RpcWorkerClient(label, transport,
                                                   answers=answers),
        )
    return (
        [outcome.payments() for outcome in outcomes],
        RpcChain(transport).height,
        transport.requests_sent,
    )


def test_rpc_boundary_cost():
    rows = []
    results = []

    start = span_clock()
    payments, height, _ = _run_in_process()
    base_elapsed = span_clock() - start
    results.append(payments)
    rows.append(["in-process", height, "-", "%.2fs" % base_elapsed, "-", "-"])

    start = span_clock()
    payments, loop_height, requests = _run_over(
        LoopbackTransport(RpcNode())
    )
    elapsed = loop_elapsed = span_clock() - start
    results.append(payments)
    rows.append([
        "loopback rpc", loop_height, requests, "%.2fs" % elapsed,
        "%.0f" % (requests / elapsed),
        "%.2fms" % (1e3 * max(0.0, elapsed - base_elapsed) / requests),
    ])

    node = RpcNode()
    with RpcHttpServer(node) as server:
        transport = HttpTransport(server.url)
        start = span_clock()
        payments, http_height, requests = _run_over(transport)
        elapsed = span_clock() - start
        transport.close()
    results.append(payments)
    rows.append([
        "http rpc (localhost)", http_height, requests, "%.2fs" % elapsed,
        "%.0f" % (requests / elapsed),
        "%.2fms" % (1e3 * max(0.0, elapsed - base_elapsed) / requests),
    ])

    emit(
        "rpc_boundary",
        render_table(
            ["path", "blocks", "requests", "wall time", "req/s",
             "added latency/req"],
            rows,
            title="%d staggered tasks (2 workers each): the RPC boundary"
            % NUM_TASKS,
        ),
    )
    record(
        "rpc_boundary",
        {"tasks": NUM_TASKS},
        {"in_process": base_elapsed, "loopback": loop_elapsed,
         "http": elapsed},
        values={"requests": requests},
    )

    # The equivalence bar: every path settles identically.
    assert results[1] == results[0] and results[2] == results[0]
    assert height == loop_height == http_height


def test_head_request_throughput():
    """A single tiny round trip, priced per transport."""
    rows = []

    node = RpcNode()
    transport = LoopbackTransport(node)
    chain = RpcChain(transport)
    start = span_clock()
    for _ in range(HEAD_CALLS):
        chain.rpc.call("chain_head")
    elapsed = loop_elapsed = span_clock() - start
    rows.append(["loopback", HEAD_CALLS, "%.0f" % (HEAD_CALLS / elapsed),
                 "%.3fms" % (1e3 * elapsed / HEAD_CALLS)])

    node = RpcNode()
    with RpcHttpServer(node) as server:
        transport = HttpTransport(server.url)
        chain = RpcChain(transport)
        chain.rpc.call("chain_head")  # warm the keep-alive connection
        start = span_clock()
        for _ in range(HEAD_CALLS):
            chain.rpc.call("chain_head")
        elapsed = span_clock() - start
        transport.close()
    rows.append(["http (localhost)", HEAD_CALLS,
                 "%.0f" % (HEAD_CALLS / elapsed),
                 "%.3fms" % (1e3 * elapsed / HEAD_CALLS)])

    emit(
        "rpc_head_throughput",
        render_table(
            ["transport", "requests", "req/s", "latency"],
            rows,
            title="chain_head round trips",
        ),
    )
    record(
        "rpc_head_throughput",
        {"calls": HEAD_CALLS},
        {"loopback": loop_elapsed, "http": elapsed},
    )


def _hammer_heads(url: str, calls: int) -> None:
    transport = HttpTransport(url)
    session = RpcSession(transport)
    for _ in range(calls):
        session.call("chain_head")
    transport.close()


def _serial_heads(url: str) -> float:
    start = span_clock()
    _hammer_heads(url, HEAD_CALLS)
    return span_clock() - start


def _concurrent_heads(url: str) -> float:
    per_client = HEAD_CALLS // CONCURRENT_CLIENTS
    threads = [
        threading.Thread(target=_hammer_heads, args=(url, per_client))
        for _ in range(CONCURRENT_CLIENTS)
    ]
    start = span_clock()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return span_clock() - start, per_client * CONCURRENT_CLIENTS


def _batched_heads(url: str) -> float:
    transport = HttpTransport(url)
    session = RpcSession(transport)
    batch = [("chain_head", {})] * BATCH_SIZE
    rounds = HEAD_CALLS // BATCH_SIZE
    start = span_clock()
    for _ in range(rounds):
        session.call_batch(batch)
    elapsed = span_clock() - start
    transport.close()
    return elapsed, rounds * BATCH_SIZE


def test_concurrent_and_batched_head_throughput():
    """The async front-end's scaling story against the threaded one.

    The serial threaded row is the PR-5 deployment shape (one client,
    one request per round trip); the concurrent rows exploit the node's
    reader-writer lock, and the batch row amortizes round trips.  The
    bar: batched requests through the asyncio front-end must beat the
    serial threaded baseline by at least 2x.
    """
    rows = []
    rates = {}
    for label, server_cls in [
        ("threaded", RpcHttpServer),
        ("async", AsyncRpcServer),
    ]:
        node = RpcNode()
        with server_cls(node) as server:
            _hammer_heads(server.url, 5)  # warm up
            elapsed = _serial_heads(server.url)
            rates["%s serial" % label] = HEAD_CALLS / elapsed
            rows.append(["%s, 1 client" % label, HEAD_CALLS,
                         "%.0f" % (HEAD_CALLS / elapsed),
                         "%.3fms" % (1e3 * elapsed / HEAD_CALLS)])
            elapsed, calls = _concurrent_heads(server.url)
            rates["%s concurrent" % label] = calls / elapsed
            rows.append(["%s, %d clients" % (label, CONCURRENT_CLIENTS),
                         calls, "%.0f" % (calls / elapsed),
                         "%.3fms" % (1e3 * elapsed / calls)])
            elapsed, calls = _batched_heads(server.url)
            rates["%s batched" % label] = calls / elapsed
            rows.append(["%s, batches of %d" % (label, BATCH_SIZE),
                         calls, "%.0f" % (calls / elapsed),
                         "%.3fms" % (1e3 * elapsed / calls)])

    emit(
        "rpc_head_scaling",
        render_table(
            ["front-end", "requests", "req/s", "latency"],
            rows,
            title="chain_head under concurrency and batching",
        ),
    )
    record(
        "rpc_head_scaling",
        {"calls": HEAD_CALLS, "clients": CONCURRENT_CLIENTS,
         "batch_size": BATCH_SIZE},
        {},
        values={
            label.replace(" ", "_").replace(",", "") + "_rps": rate
            for label, rate in rates.items()
        },
    )
    assert rates["async batched"] >= 2 * rates["threaded serial"], (
        "batched async %.0f req/s did not reach 2x the serial threaded "
        "%.0f req/s" % (rates["async batched"], rates["threaded serial"])
    )


def test_subscription_fanout_pushes_without_polling():
    """Server push to 100+ subscribed clients, one event loop, no polls.

    Every subscriber opens one ``chain_subscribe`` stream and then
    issues zero further requests — the asyncio front-end pushes each
    event batch to all of them.  The bar: every subscriber sees the
    whole log, and the node served exactly one request per subscriber
    beyond the scenario itself.
    """
    node = RpcNode()
    with AsyncRpcServer(node) as server:
        transport = HttpTransport(server.url)
        with scoped_tx_nonces(), deterministic_entropy(SEED):
            run_hits(
                RpcChain(transport), RpcSwarm(transport), _specs()[:3],
                lambda label, task: RpcRequesterClient(label, task, transport),
                lambda label, answers: RpcWorkerClient(label, transport,
                                                       answers=answers),
            )
        served_by_scenario = node.requests_served
        head = node.event_head(from_start=False)
        transport.close()

        async def subscribe_and_drain():
            subscriptions = []
            for _ in range(SUBSCRIBERS):
                subscriptions.append(
                    await AsyncSubscription.open(server.url, from_start=True)
                )

            async def drain(subscription):
                count = 0
                while subscription.cursor < head:
                    count += len(await asyncio.wait_for(
                        subscription.next_records(), timeout=30
                    ))
                return count

            start = span_clock()
            counts = await asyncio.gather(
                *[drain(subscription) for subscription in subscriptions]
            )
            elapsed = span_clock() - start
            for subscription in subscriptions:
                await subscription.close()
            return counts, elapsed

        counts, elapsed = asyncio.run(subscribe_and_drain())
        frames = server.pushed_frames

    assert len(counts) == SUBSCRIBERS
    assert all(count == head for count in counts), "a subscriber missed events"
    # No polling: the node served one subscribe per client and nothing else.
    assert node.requests_served == served_by_scenario + SUBSCRIBERS
    delivered = sum(counts)
    emit(
        "rpc_subscription_fanout",
        render_table(
            ["metric", "value"],
            [
                ["subscribed clients", SUBSCRIBERS],
                ["events in log", head],
                ["events delivered", delivered],
                ["pushed frames", frames],
                ["chain_events polls", 0],
                ["fan-out wall time", "%.2fs" % elapsed],
                ["events/s delivered", "%.0f" % (delivered / elapsed)],
            ],
            title="server-push fan-out over one asyncio loop",
        ),
    )
    record(
        "rpc_subscription_fanout",
        {"subscribers": SUBSCRIBERS},
        {"fanout": elapsed},
        values={
            "events_in_log": head,
            "events_delivered": delivered,
            "pushed_frames": frames,
        },
    )
