"""What the RPC boundary costs: requests/sec and added latency.

The same staggered 8-session scenario (2 workers per task, stagger 1 —
the ``bench_session_engine`` workload) runs three ways:

* **in-process** — clients hold the :class:`Chain` object directly (the
  pre-RPC deployment story, the floor);
* **loopback RPC** — full JSON + canonical-codec wire encoding, no
  socket (what the encoding itself costs);
* **HTTP RPC** — a real localhost socket through the stdlib server
  (what one-step-from-deployment costs).

The equivalence contract rides along: all three paths must settle the
same tasks with identical payments.  A ``chain_head`` micro-benchmark
prices a single round trip on each transport.

Reproduce the table with::

    PYTHONPATH=src python -m pytest benchmarks/bench_rpc.py -s -q
"""

from __future__ import annotations

import time

from repro.analysis.tables import render_table
from repro.chain.chain import Chain
from repro.chain.transactions import scoped_tx_nonces
from repro.core.requester import RequesterClient
from repro.core.task import HITTask, TaskParameters
from repro.core.worker import WorkerClient
from repro.crypto.rng import deterministic_entropy
from repro.rpc import (
    HitSpec,
    HttpTransport,
    LoopbackTransport,
    RpcChain,
    RpcHttpServer,
    RpcNode,
    RpcRequesterClient,
    RpcSwarm,
    RpcWorkerClient,
    run_hits,
)
from repro.storage.swarm import SwarmStore

from bench_helpers import emit, pick

NUM_TASKS = pick(8, 3)
HEAD_CALLS = pick(2000, 50)
SEED = 11
GOOD = [0] * 10
BAD = [1] * 10


def _task() -> HITTask:
    parameters = TaskParameters(10, 100, 2, (0, 1), 2, 3)
    return HITTask(parameters, ["q%d" % i for i in range(10)],
                   [0, 1, 2], [0, 0, 0], [0] * 10)


def _specs():
    return [
        HitSpec(index, "req-%d" % index, _task(), [GOOD, BAD])
        for index in range(NUM_TASKS)
    ]


def _run_in_process():
    chain, swarm = Chain(), SwarmStore()
    with scoped_tx_nonces(), deterministic_entropy(SEED):
        outcomes = run_hits(
            chain, swarm, _specs(),
            lambda label, task: RequesterClient(label, task, chain, swarm),
            lambda label, answers: WorkerClient(label, chain, swarm,
                                                answers=answers),
        )
    # Materialized eagerly: payments are ledger reads, and the RPC
    # variants' servers are torn down before the comparison runs.
    return [outcome.payments() for outcome in outcomes], chain.height, None


def _run_over(transport):
    with scoped_tx_nonces(), deterministic_entropy(SEED):
        outcomes = run_hits(
            RpcChain(transport), RpcSwarm(transport), _specs(),
            lambda label, task: RpcRequesterClient(label, task, transport),
            lambda label, answers: RpcWorkerClient(label, transport,
                                                   answers=answers),
        )
    return (
        [outcome.payments() for outcome in outcomes],
        RpcChain(transport).height,
        transport.requests_sent,
    )


def test_rpc_boundary_cost():
    rows = []
    results = []

    start = time.perf_counter()
    payments, height, _ = _run_in_process()
    base_elapsed = time.perf_counter() - start
    results.append(payments)
    rows.append(["in-process", height, "-", "%.2fs" % base_elapsed, "-", "-"])

    start = time.perf_counter()
    payments, loop_height, requests = _run_over(
        LoopbackTransport(RpcNode())
    )
    elapsed = time.perf_counter() - start
    results.append(payments)
    rows.append([
        "loopback rpc", loop_height, requests, "%.2fs" % elapsed,
        "%.0f" % (requests / elapsed),
        "%.2fms" % (1e3 * max(0.0, elapsed - base_elapsed) / requests),
    ])

    node = RpcNode()
    with RpcHttpServer(node) as server:
        transport = HttpTransport(server.url)
        start = time.perf_counter()
        payments, http_height, requests = _run_over(transport)
        elapsed = time.perf_counter() - start
        transport.close()
    results.append(payments)
    rows.append([
        "http rpc (localhost)", http_height, requests, "%.2fs" % elapsed,
        "%.0f" % (requests / elapsed),
        "%.2fms" % (1e3 * max(0.0, elapsed - base_elapsed) / requests),
    ])

    emit(
        "rpc_boundary",
        render_table(
            ["path", "blocks", "requests", "wall time", "req/s",
             "added latency/req"],
            rows,
            title="%d staggered tasks (2 workers each): the RPC boundary"
            % NUM_TASKS,
        ),
    )

    # The equivalence bar: every path settles identically.
    assert results[1] == results[0] and results[2] == results[0]
    assert height == loop_height == http_height


def test_head_request_throughput():
    """A single tiny round trip, priced per transport."""
    rows = []

    node = RpcNode()
    transport = LoopbackTransport(node)
    chain = RpcChain(transport)
    start = time.perf_counter()
    for _ in range(HEAD_CALLS):
        chain.rpc.call("chain_head")
    elapsed = time.perf_counter() - start
    rows.append(["loopback", HEAD_CALLS, "%.0f" % (HEAD_CALLS / elapsed),
                 "%.3fms" % (1e3 * elapsed / HEAD_CALLS)])

    node = RpcNode()
    with RpcHttpServer(node) as server:
        transport = HttpTransport(server.url)
        chain = RpcChain(transport)
        chain.rpc.call("chain_head")  # warm the keep-alive connection
        start = time.perf_counter()
        for _ in range(HEAD_CALLS):
            chain.rpc.call("chain_head")
        elapsed = time.perf_counter() - start
        transport.close()
    rows.append(["http (localhost)", HEAD_CALLS,
                 "%.0f" % (HEAD_CALLS / elapsed),
                 "%.3fms" % (1e3 * elapsed / HEAD_CALLS)])

    emit(
        "rpc_head_throughput",
        render_table(
            ["transport", "requests", "req/s", "latency"],
            rows,
            title="chain_head round trips",
        ),
    )
