"""Table III — on-chain handling fees of the full ImageNet task.

Paper's numbers (ropsten, 1.5 gwei, $115/ETH, task policy: 4 workers,
106 questions, 6 golds, reject below 4 correct golds):

    Publish task (by requester)                ~1293k   $0.22
    Submit answers (by worker)                 ~2830k   $0.48
    Verify PoQoEA to reject an answer           ~180k   $0.03
    Overall (best-case: reject no submission) ~12164k   $2.09
    Overall (worst-case: reject all)          ~12877k   $2.22

and the headline comparison: MTurk charges >= $4 for the same task.

We run the complete protocol on the gas-metered chain simulator twice
(best case: every worker above threshold; worst case: every worker
rejected) and print the same rows.
"""

from __future__ import annotations

import pytest

from repro.analysis.costs import build_handling_fee_table, mturk_handling_fee
from repro.analysis.tables import format_gas, render_table
from repro.chain.gas import PAPER_PRICING
from repro.core.protocol import run_hit

from bench_helpers import (
    SMOKE,
    all_rejected_answers,
    bench_task,
    emit,
    imagenet_answer_sets,
    record,
)

PAPER_ROWS = {
    "Publish task (by requester)": (1_293_000, 0.22),
    "Submit answers (by worker)": (2_830_000, 0.48),
    "Verify PoQoEA to reject an answer": (180_000, 0.03),
    "Overall (best-case: reject no submission)": (12_164_000, 2.09),
    "Overall (worst-case: reject all submissions)": (12_877_000, 2.22),
}


@pytest.fixture(scope="module")
def best_case_outcome():
    task = bench_task()
    answers = imagenet_answer_sets(task, [0.98, 0.97, 0.96, 0.95])
    outcome = run_hit(task, answers)
    assert all(value > 0 for value in outcome.payments().values())
    return outcome


@pytest.fixture(scope="module")
def worst_case_outcome():
    task = bench_task()
    outcome = run_hit(task, all_rejected_answers(task))
    assert all(value == 0 for value in outcome.payments().values())
    return outcome


def test_table3_full_protocol_run(benchmark):
    """Wall-clock of one full best-case ImageNet protocol run."""
    task = bench_task()
    answers = imagenet_answer_sets(task, [0.98, 0.97, 0.96, 0.95])
    benchmark.pedantic(run_hit, args=(task, answers), rounds=1, iterations=1)


def test_table3_report(benchmark, best_case_outcome, worst_case_outcome):
    table = build_handling_fee_table(
        best_case_outcome.gas, worst_case_outcome.gas, PAPER_PRICING
    )
    rows = []
    for row in table.rows:
        paper_gas, paper_usd = PAPER_ROWS[row.operation]
        rows.append(
            [
                row.operation,
                format_gas(row.gas),
                "$%.2f" % row.usd,
                format_gas(paper_gas),
                "$%.2f" % paper_usd,
            ]
        )
    text = render_table(
        ["Handling fee of", "Gas (ours)", "USD (ours)", "Gas (paper)", "USD (paper)"],
        rows,
        title="Table III - on-chain handling fees of the ImageNet task "
        "(4 workers; 106 questions; 6 golds; reject if 3 golds failed)",
    )
    mturk = mturk_handling_fee(total_reward_usd=20.0, assignments=4)
    best_usd = PAPER_PRICING.to_usd(best_case_outcome.gas.total)
    worst_usd = PAPER_PRICING.to_usd(worst_case_outcome.gas.total)
    text += (
        "\n\nMTurk handling fee for the same task (20%% of a $20 reward): $%.2f"
        "\nDragoon overall handling cost: $%.2f-$%.2f  =>  cheaper than MTurk: %s"
        % (mturk, best_usd, worst_usd, best_usd < mturk and worst_usd < mturk)
    )
    emit("table3_gas", text)
    values = {
        row.operation.split(" (")[0].lower().replace(" ", "_") + "_gas": row.gas
        for row in table.rows
        if not row.operation.startswith("Overall")
    }
    values["best_case_total_gas"] = best_case_outcome.gas.total
    values["worst_case_total_gas"] = worst_case_outcome.gas.total
    record(
        "table3_gas",
        {"workers": 4},
        {},
        values=values,
    )

    # Shape assertions against the paper (within ~25% per row) only
    # make sense at the paper's task size, not on the smoke-mode task.
    if not SMOKE:
        for row in table.rows:
            paper_gas, _ = PAPER_ROWS[row.operation]
            assert abs(row.gas - paper_gas) / paper_gas < 0.25, (
                row.operation, row.gas, paper_gas,
            )
        # Headline claim: decentralized handling beats the MTurk fee.
        assert worst_usd < mturk
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_table3_gas_breakdown(benchmark, best_case_outcome):
    """Where submit gas goes (the paper's storage-optimization story)."""
    receipts = [
        r
        for r in best_case_outcome.receipts
        if r.transaction.method == "reveal" and r.succeeded
    ]
    breakdown = receipts[0].gas_breakdown
    rows = [[label, format_gas(cost)] for label, cost in sorted(breakdown.items())]
    text = render_table(
        ["Component", "Gas"],
        rows,
        title="Reveal-transaction gas breakdown (one worker, 106 ciphertexts)",
    )
    emit("table3_reveal_breakdown", text)
    record(
        "table3_reveal_breakdown",
        {"workers": 4},
        {},
        values={
            "%s_gas" % label: cost for label, cost in sorted(breakdown.items())
        },
    )
    # Storage of the per-question hashes dominates, as the paper expects.
    assert breakdown["sstore"] > breakdown["calldata"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
