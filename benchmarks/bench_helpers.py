"""Shared helpers for the benchmark harness.

Every bench prints its reproduction table to stdout (run pytest with
``-s`` to see it live) and writes a copy under ``benchmarks/results/``
so EXPERIMENTS.md can reference stable artifacts.

Smoke mode
----------

Setting ``DRAGOON_BENCH_SMOKE=1`` shrinks every bench to tiny
parameters: small tasks, short sweeps, and no paper-number assertions.
``tests/test_bench_smoke.py`` runs every bench entry point this way on
each tier-1 run, so a refactor that breaks a benchmark is caught
immediately instead of at the next full benchmark campaign.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Sequence, TypeVar

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Version stamp on the machine-readable bench records.
RECORD_SCHEMA_VERSION = 1

#: Tiny-parameter mode for the tier-1 smoke run (see module docstring).
SMOKE = os.environ.get("DRAGOON_BENCH_SMOKE") == "1"

_T = TypeVar("_T")


def pick(full: _T, tiny: _T) -> _T:
    """``full`` normally, ``tiny`` under ``DRAGOON_BENCH_SMOKE=1``."""
    return tiny if SMOKE else full


def bench_task():
    """The ImageNet task (shrunk to 16 questions in smoke mode)."""
    from repro.core.task import make_imagenet_task

    if SMOKE:
        return make_imagenet_task(num_questions=16)
    return make_imagenet_task()


def emit(name: str, text: str) -> None:
    """Print a table and persist it under benchmarks/results/<name>.txt.

    Smoke-mode tables are printed but *not* persisted, so a tier-1 run
    never clobbers full-size result artifacts with tiny-parameter ones.
    """
    print()
    print(text)
    if SMOKE:
        return
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, name + ".txt"), "w") as handle:
        handle.write(text + "\n")


def record(
    name: str,
    params: Dict[str, Any],
    timings: Dict[str, float],
    **extra: Any,
) -> None:
    """Persist the machine-readable twin of a bench table.

    Writes ``benchmarks/results/<name>.json`` — bench name, parameters,
    span-clock timings in seconds, and the host's cpu_count — the
    record ``repro.reporting.render.fold_benches`` (and the ``report
    sweep --bench-dir`` artifact path) consumes.  Pass unitless
    numbers (gas figures, throughput counts) as a ``values`` mapping
    via ``**extra``; they fold into the same table.  Like :func:`emit`,
    smoke-mode records are not persisted, so tier-1 runs never clobber
    full-size artifacts; set ``DRAGOON_BENCH_RESULTS=<dir>`` to redirect
    records to another directory *and* persist them even in smoke mode
    (CI uses this to exercise the folding path on tiny parameters).
    """
    results_dir = os.environ.get("DRAGOON_BENCH_RESULTS")
    if SMOKE and not results_dir:
        return
    results_dir = results_dir or RESULTS_DIR
    payload = {
        "schema": RECORD_SCHEMA_VERSION,
        "bench": name,
        "smoke": SMOKE,
        "params": params,
        "timings": {label: float(value) for label, value in timings.items()},
        "host": {"cpu_count": os.cpu_count()},
    }
    payload.update(extra)
    os.makedirs(results_dir, exist_ok=True)
    with open(
        os.path.join(results_dir, name + ".json"), "w", encoding="utf-8"
    ) as handle:
        handle.write(json.dumps(payload, sort_keys=True, indent=2) + "\n")


def imagenet_answer_sets(task, accuracies: Sequence[float]) -> List[List[int]]:
    """One synthetic answer sheet per worker at the given accuracies."""
    from repro.core.task import sample_worker_answers

    return [
        sample_worker_answers(task, accuracy, seed=index + 1)
        for index, accuracy in enumerate(accuracies)
    ]


def all_rejected_answers(task) -> List[List[int]]:
    """Answer sheets rejected at the paper's threshold (worst case).

    The ImageNet policy rejects a submission failing 3 of the 6 golds;
    the paper's worst-case column prices each rejection at the matching
    3-mismatch PoQoEA proof, so each sheet here misses exactly enough
    golds to fall just below Θ.
    """
    answers = []
    options = task.parameters.answer_range
    to_flip = task.parameters.num_golds - task.parameters.quality_threshold + 1
    for _ in range(task.parameters.num_workers):
        sheet = list(task.ground_truth)
        for index, truth in zip(
            task.gold_indexes[:to_flip], task.gold_answers[:to_flip]
        ):
            sheet[index] = next(o for o in options if o != truth)
        answers.append(sheet)
    return answers
