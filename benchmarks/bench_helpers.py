"""Shared helpers for the benchmark harness.

Every bench prints its reproduction table to stdout (run pytest with
``-s`` to see it live) and writes a copy under ``benchmarks/results/``
so EXPERIMENTS.md can reference stable artifacts.
"""

from __future__ import annotations

import os
from typing import List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, text: str) -> None:
    """Print a table and persist it under benchmarks/results/<name>.txt."""
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, name + ".txt"), "w") as handle:
        handle.write(text + "\n")


def imagenet_answer_sets(task, accuracies: Sequence[float]) -> List[List[int]]:
    """One synthetic answer sheet per worker at the given accuracies."""
    from repro.core.task import sample_worker_answers

    return [
        sample_worker_answers(task, accuracy, seed=index + 1)
        for index, accuracy in enumerate(accuracies)
    ]


def all_rejected_answers(task) -> List[List[int]]:
    """Answer sheets rejected at the paper's threshold (worst case).

    The ImageNet policy rejects a submission failing 3 of the 6 golds;
    the paper's worst-case column prices each rejection at the matching
    3-mismatch PoQoEA proof, so each sheet here misses exactly enough
    golds to fall just below Θ.
    """
    answers = []
    options = task.parameters.answer_range
    to_flip = task.parameters.num_golds - task.parameters.quality_threshold + 1
    for _ in range(task.parameters.num_workers):
        sheet = list(task.ground_truth)
        for index, truth in zip(
            task.gold_indexes[:to_flip], task.gold_answers[:to_flip]
        ):
            sheet[index] = next(o for o in options if o != truth)
        answers.append(sheet)
    return answers
