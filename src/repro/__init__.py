"""repro - a full reproduction of Dragoon: Private Decentralized HITs
Made Practical (Lu, Tang, Wang; IEEE ICDCS 2020).

The package is layered bottom-up:

* :mod:`repro.crypto` - keccak-256, BN-128 (G1/G2/pairing), exponential
  ElGamal, Schnorr sigma protocols, VPKE verifiable decryption, and
  PoQoEA (the paper's core contribution), all from scratch.
* :mod:`repro.ledger` - the cryptocurrency ledger functionality L.
* :mod:`repro.chain` - a gas-metered Ethereum-style contract simulator
  with a synchronous clock and a rushing/reordering network adversary.
* :mod:`repro.storage` - the Swarm-like content-addressed store.
* :mod:`repro.core` - the HIT task model, the C_hit contract (Fig. 4),
  requester/worker clients (Fig. 5), the protocol driver, the ideal
  functionality F_hit (Fig. 2), and attack strategies.
* :mod:`repro.baseline` - the generic-ZKP comparator: R1CS, QAP, and a
  complete Groth16 over the from-scratch pairing, plus the full-scale
  cost model.
* :mod:`repro.analysis` - gas-to-USD conversion and table rendering.

Quick start::

    from repro import make_imagenet_task, sample_worker_answers, run_hit

    task = make_imagenet_task()
    answers = [sample_worker_answers(task, 0.9, seed=i) for i in range(4)]
    outcome = run_hit(task, answers)
    print(outcome.payments())
"""

from repro.core import (
    HITTask,
    TaskParameters,
    make_imagenet_task,
    make_street_parking_task,
    sample_worker_answers,
    run_hit,
    ProtocolOutcome,
    GasReport,
    RequesterClient,
    WorkerClient,
    compare_worlds,
    run_ideal_mirror,
    HITSession,
    SessionConfig,
    SessionEngine,
    WorkerPolicy,
    DropScheduler,
    StragglerScheduler,
)
from repro.crypto import (
    keygen,
    prove_decryption,
    verify_decryption,
    prove_quality,
    verify_quality,
    compute_quality,
)
from repro.chain import Chain, PAPER_PRICING, GasPricing
from repro.ledger import Ledger, Address
from repro.storage import SwarmStore
from repro.analysis import build_handling_fee_table, mturk_handling_fee
from repro.dragoon import Dragoon, TaskArrival

__version__ = "1.0.0"

__all__ = [
    "HITTask",
    "TaskParameters",
    "make_imagenet_task",
    "make_street_parking_task",
    "sample_worker_answers",
    "run_hit",
    "ProtocolOutcome",
    "GasReport",
    "RequesterClient",
    "WorkerClient",
    "compare_worlds",
    "run_ideal_mirror",
    "HITSession",
    "SessionConfig",
    "SessionEngine",
    "WorkerPolicy",
    "DropScheduler",
    "StragglerScheduler",
    "keygen",
    "prove_decryption",
    "verify_decryption",
    "prove_quality",
    "verify_quality",
    "compute_quality",
    "Chain",
    "PAPER_PRICING",
    "GasPricing",
    "Ledger",
    "Address",
    "SwarmStore",
    "build_handling_fee_table",
    "mturk_handling_fee",
    "Dragoon",
    "TaskArrival",
    "__version__",
]
