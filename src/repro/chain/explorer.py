"""A block explorer for the simulated chain.

Operators of the real Dragoon instance pointed reviewers at
etherscan.io to audit the deployed task; :class:`ChainExplorer` is the
equivalent for the simulator: human-readable block/transaction/event
listings and JSON export, built only from public chain data (the same
view a worker or auditor has).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.analysis.tables import render_table
from repro.chain.chain import Chain
from repro.chain.transactions import Receipt
from repro.ledger.accounts import Address


class ChainExplorer:
    """Read-only, public-data views over a :class:`Chain`."""

    def __init__(self, chain: Chain) -> None:
        self.chain = chain

    # ------------------------------------------------------------------
    # Text views
    # ------------------------------------------------------------------

    def block_summary(self) -> str:
        """One row per block: height, tx count, gas, failures."""
        rows = []
        for block in self.chain.blocks:
            failures = sum(1 for r in block.receipts if not r.succeeded)
            rows.append(
                [
                    block.number,
                    len(block.transactions),
                    block.gas_used,
                    failures,
                    block.block_hash().hex()[:16],
                ]
            )
        return render_table(
            ["block", "txs", "gas", "failed", "hash[:16]"],
            rows,
            title="chain: %d blocks, %d total gas"
            % (len(self.chain.blocks), self.chain.total_gas),
        )

    def transaction_log(self, contract: Optional[str] = None) -> str:
        """One row per transaction, optionally filtered by contract."""
        rows = []
        for block in self.chain.blocks:
            for receipt in block.receipts:
                transaction = receipt.transaction
                if contract is not None and transaction.contract != contract:
                    continue
                rows.append(
                    [
                        block.number,
                        str(transaction.sender),
                        "%s.%s" % (transaction.contract, transaction.method),
                        receipt.gas_used,
                        "ok" if receipt.succeeded else
                        "REVERT: %s" % receipt.revert_reason[:40],
                    ]
                )
        return render_table(
            ["block", "sender", "call", "gas", "status"],
            rows,
            title="transactions" + (" of %s" % contract if contract else ""),
        )

    def event_log(self, name: Optional[str] = None) -> str:
        """One row per emitted event."""
        rows = []
        for event in self.chain.events:
            if name is not None and event.name != name:
                continue
            rows.append([event.name, str(event.contract), len(event.data)])
        return render_table(
            ["event", "contract", "data bytes"],
            rows,
            title="events" + (" named %s" % name if name else ""),
        )

    # ------------------------------------------------------------------
    # JSON export
    # ------------------------------------------------------------------

    def _receipt_dict(self, receipt: Receipt) -> Dict[str, Any]:
        transaction = receipt.transaction
        return {
            "sender": transaction.sender.hex(),
            "contract": transaction.contract,
            "method": transaction.method,
            "payload_bytes": len(transaction.payload),
            "gas_used": receipt.gas_used,
            "gas_breakdown": dict(receipt.gas_breakdown),
            "status": "success" if receipt.succeeded else "revert",
            "revert_reason": receipt.revert_reason,
            "events": [
                {"name": e.name, "data_bytes": len(e.data)}
                for e in receipt.events
            ],
        }

    def to_dict(self) -> Dict[str, Any]:
        """The whole chain as a JSON-serializable structure."""
        return {
            "height": self.chain.height,
            "total_gas": self.chain.total_gas,
            "blocks": [
                {
                    "number": block.number,
                    "hash": block.block_hash().hex(),
                    "parent": block.parent_hash.hex(),
                    "gas_used": block.gas_used,
                    "receipts": [
                        self._receipt_dict(receipt) for receipt in block.receipts
                    ],
                }
                for block in self.chain.blocks
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def gas_spent_by(self, label: str) -> int:
        """Total gas one identity has paid (by account label)."""
        address = Address.from_label(label)
        return self.chain.gas_by_sender.get(address, 0)

    def failed_transactions(self) -> List[Receipt]:
        return [
            receipt
            for block in self.chain.blocks
            for receipt in block.receipts
            if not receipt.succeeded
        ]
