"""The blockchain substrate: gas-metered contracts on a simulated chain.

Faithful to what Dragoon needs from Ethereum: the Istanbul gas schedule
(EIP-2028 calldata, EIP-1108 BN-128 precompiles), transparent contract
storage, event logs, revert semantics, a synchronous clock, and a
reordering ("rushing") network adversary.
"""

from repro.chain.gas import (
    GasMeter,
    GasPricing,
    PAPER_PRICING,
    calldata_cost,
    keccak_cost,
    log_cost,
    pairing_cost,
    deployment_cost,
    TX_BASE,
    ECADD,
    ECMUL,
    SSTORE_SET,
    SSTORE_RESET,
    SLOAD,
    HIT_CONTRACT_CODE_BYTES,
)
from repro.chain.transactions import Transaction, Receipt, Event
from repro.chain.eventlog import EventFilter, EventLog, EventRecord, Subscription
from repro.chain.blocks import Block, GENESIS_HASH
from repro.chain.clock import Clock
from repro.chain.contract import Contract, CallContext
from repro.chain.network import (
    Mempool,
    Scheduler,
    FifoScheduler,
    ReverseScheduler,
    RushingScheduler,
)
from repro.chain.chain import Chain

__all__ = [
    "GasMeter",
    "GasPricing",
    "PAPER_PRICING",
    "calldata_cost",
    "keccak_cost",
    "log_cost",
    "pairing_cost",
    "deployment_cost",
    "TX_BASE",
    "ECADD",
    "ECMUL",
    "SSTORE_SET",
    "SSTORE_RESET",
    "SLOAD",
    "HIT_CONTRACT_CODE_BYTES",
    "Transaction",
    "Receipt",
    "Event",
    "EventFilter",
    "EventLog",
    "EventRecord",
    "Subscription",
    "Block",
    "GENESIS_HASH",
    "Clock",
    "Contract",
    "CallContext",
    "Mempool",
    "Scheduler",
    "FifoScheduler",
    "ReverseScheduler",
    "RushingScheduler",
    "Chain",
]
