"""The blockchain simulator: blocks, contract execution, gas accounting.

:class:`Chain` ties the substrate together.  One :meth:`mine_block` call
models one clock period of the paper's synchronous network: the mempool
is drained in adversary-chosen order, each transaction executes against
contract storage and the ledger with full gas metering, and failures roll
back cleanly (EVM revert semantics).

Gas is accounted per sender and per receipt but is *not* debited from
ledger coin balances: the paper keeps handling fees (gas, paid in ether)
conceptually separate from task rewards (the frozen budget B), and so do
we — the analysis layer converts gas to USD for Table III.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.chain.blocks import Block, GENESIS_HASH
from repro.chain.clock import Clock
from repro.chain.contract import CallContext, Contract, snapshot_storage
from repro.chain.eventlog import EventFilter, EventLog, Subscription
from repro.chain.gas import GasMeter, calldata_cost, TX_BASE
from repro.chain.network import Mempool, Scheduler
from repro.chain.transactions import Event, Receipt, Transaction
from repro.errors import ChainError, ContractError, OutOfGas
from repro.ledger.accounts import Address, Registry
from repro.ledger.ledger import Ledger
from repro.obs import registry as _obs
from repro.obs.tracing import span_clock as _span_clock, trace_span

_BLOCKS_MINED = _obs.REGISTRY.counter(
    "chain_blocks_mined_total", "Blocks sealed by mine_block"
)
_TXS_EXECUTED = _obs.REGISTRY.counter(
    "chain_txs_executed_total", "Transactions executed, by outcome",
    labelnames=("status",),
)
_GAS_USED = _obs.REGISTRY.counter(
    "chain_gas_used_total", "Gas charged across all executed transactions"
)
_EVENTS_EMITTED = _obs.REGISTRY.counter(
    "chain_events_emitted_total", "Events appended to the chain event log"
)
_CHAIN_HEIGHT = _obs.REGISTRY.gauge(
    "chain_height", "Blocks sealed on the most recently mined chain"
)
_MEMPOOL_DEPTH = _obs.REGISTRY.gauge(
    "chain_mempool_depth", "Pending transactions after the last mine"
)
_MINE_SECONDS = _obs.REGISTRY.histogram(
    "chain_mine_block_seconds", "Wall-clock duration of mine_block"
)


class Chain:
    """An in-process blockchain with gas metering and revert semantics."""

    def __init__(
        self,
        ledger: Optional[Ledger] = None,
        scheduler: Optional[Scheduler] = None,
        registry: Optional[Registry] = None,
    ) -> None:
        self.ledger = ledger if ledger is not None else Ledger()
        self.registry = registry if registry is not None else Registry()
        self.clock = Clock()
        self.mempool = Mempool()
        self.scheduler = scheduler if scheduler is not None else Scheduler()
        self.blocks: List[Block] = []
        self.event_log = EventLog()
        self.gas_by_sender: Dict[Address, int] = {}
        self._contracts: Dict[str, Contract] = {}
        #: Optional persistence sink (see :mod:`repro.store`): when set,
        #: every sealed block is journalled to its write-ahead log.
        self.store = None
        #: Lazily-attached :class:`repro.store.trie.ChainStateTrie`
        #: (created by ``codec.state_root`` / ``chain_state_trie`` on
        #: first use; dropped from pickles and rebuilt on resume).
        self._state_trie = None

    # -- persistence --------------------------------------------------------------

    def attach_store(self, store) -> None:
        """Journal every block this chain seals to ``store``'s WAL.

        The store captures a baseline of the current state immediately,
        then receives one :meth:`~repro.store.nodestore.NodeStore.on_block`
        callback per sealed block (mined *or* deployment) with the chain
        already advanced — which is what lets a crash recover by
        replaying WAL records on top of the last snapshot."""
        self.store = store
        if store is not None:
            store.on_attach(self)

    def _notify_store(self, block: Block) -> None:
        if self.store is not None:
            self.store.on_block(self, block)
        if self._state_trie is not None:
            self._state_trie.on_block(self, block)

    def __getstate__(self) -> dict:
        """Checkpoint pickling carries the chain state, never the store
        (open file handles) or the state-trie tracker (an RLock plus a
        cache that rebuilds byte-identically from state);
        :meth:`attach_store` re-wires the former and the first
        ``state_root`` read rebuilds the latter."""
        state = dict(self.__dict__)
        state["store"] = None
        state["_state_trie"] = None
        return state

    @property
    def events(self) -> List[Event]:
        """Every successfully emitted event, in emission order.

        A read-only view over :attr:`event_log`; cursor-based consumers
        should :meth:`subscribe` instead of rescanning this list.
        """
        return [record.event for record in self.event_log]

    # -- accounts ---------------------------------------------------------------

    def register_account(self, label: str, balance: int = 0) -> Address:
        """Grant an identity with the registry and open its ledger account."""
        address = self.registry.grant(label)
        if not self.ledger.has_account(address):
            self.ledger.open_account(address, balance)
        return address

    # -- contracts ----------------------------------------------------------------

    def _execute_deployment(
        self,
        contract: Contract,
        deployer: Address,
        args: Tuple[Any, ...],
        payload: bytes,
        value: int,
    ) -> Receipt:
        """Run one deployment transaction (constructor + gas), no sealing."""
        if contract.name in self._contracts:
            raise ChainError("contract name already taken: %s" % contract.name)
        self._contracts[contract.name] = contract

        transaction = Transaction(
            sender=deployer,
            contract=contract.name,
            method="__deploy__",
            payload=payload,
            args=args,
            value=value,
        )
        meter = GasMeter(gas_limit=transaction.gas_limit)
        ctx = CallContext(
            sender=deployer,
            args=args,
            payload=payload,
            value=value,
            meter=meter,
            period=self.clock.period,
            ledger=self.ledger,
        )
        meter.charge_intrinsic(payload)
        meter.charge_deployment(contract.code_size)

        ledger_state = self.ledger.snapshot()
        try:
            contract.on_deploy(ctx)
        except (ContractError, OutOfGas) as exc:
            self.ledger.restore(ledger_state)
            del self._contracts[contract.name]
            return Receipt(
                transaction, False, meter.used, dict(meter.breakdown),
                tuple(ctx.events), str(exc),
            )

        receipt = Receipt(
            transaction, True, meter.used, dict(meter.breakdown), tuple(ctx.events)
        )
        self._record_gas(deployer, meter.used)
        self._log_events(ctx.events)
        return receipt

    def deploy(
        self,
        contract: Contract,
        deployer: Address,
        args: Tuple[Any, ...] = (),
        payload: bytes = b"",
        value: int = 0,
    ) -> Receipt:
        """Deploy a contract: executes its constructor in its own block.

        Deployment is modelled as an immediate single-transaction block
        (ordering games on a deployment are uninteresting: nothing else
        can reference the contract before it exists).
        """
        receipt = self._execute_deployment(contract, deployer, args, payload, value)
        block = self._seal_block([receipt.transaction], [receipt])
        self._notify_store(block)
        return receipt

    def deploy_many(
        self,
        deployments: Sequence[
            Tuple[Contract, Address, Tuple[Any, ...], bytes]
        ],
    ) -> List[Receipt]:
        """Deploy several contracts in *one* block (batched publication).

        This is the mempool-style counterpart of :meth:`deploy` for
        multi-task throughput: N interleaved tasks publish in a single
        clock period instead of sealing one block each, so the chain
        height grows per *phase*, not per task.  Each deployment still
        executes (and reverts) independently.

        Name collisions are validated up front so the batch is atomic
        with respect to them: a duplicate name raises before *any*
        deployment executes, rather than leaving earlier ones applied
        but never sealed into a block.
        """
        names = [contract.name for contract, _, _, _ in deployments]
        if len(set(names)) != len(names):
            raise ChainError("duplicate contract name within the batch")
        for name in names:
            if name in self._contracts:
                raise ChainError("contract name already taken: %s" % name)
        receipts = [
            self._execute_deployment(contract, deployer, args, payload, 0)
            for contract, deployer, args, payload in deployments
        ]
        block = self._seal_block(
            [receipt.transaction for receipt in receipts], receipts
        )
        self._notify_store(block)
        return receipts

    def contract(self, name: str) -> Contract:
        try:
            return self._contracts[name]
        except KeyError:
            raise ChainError("no contract named %s" % name) from None

    # -- transaction submission -------------------------------------------------------

    def send(
        self,
        sender: Address,
        contract: str,
        method: str,
        args: Tuple[Any, ...] = (),
        payload: bytes = b"",
        value: int = 0,
    ) -> Transaction:
        """Build a transaction and place it in the mempool."""
        if contract not in self._contracts:
            raise ChainError("no contract named %s" % contract)
        transaction = Transaction(
            sender=sender,
            contract=contract,
            method=method,
            payload=payload,
            args=args,
            value=value,
        )
        self.mempool.submit(transaction)
        return transaction

    # -- block production -----------------------------------------------------------

    def mine_block(self) -> Block:
        """Advance one clock period: deliver and execute pending messages.

        An empty mempool still seals an (empty) block and advances the
        clock — time passes without traffic, which is what lets deadline
        logic (reveal windows, timeout refunds) run against a quiet
        chain.
        """
        started = _span_clock()
        with trace_span("chain.mine_block", height=len(self.blocks)) as span:
            ordered = self.mempool.drain(self.scheduler)
            receipts = [self._execute(transaction) for transaction in ordered]
            block = self._seal_block(ordered, receipts)
            self.clock.advance()
            self._notify_store(block)
            span.set(txs=len(ordered))
        _BLOCKS_MINED.inc()
        _CHAIN_HEIGHT.set(len(self.blocks))
        _MEMPOOL_DEPTH.set(len(self.mempool))
        for receipt in receipts:
            _TXS_EXECUTED.inc(status="ok" if receipt.status else "reverted")
            _GAS_USED.inc(receipt.gas_used)
            if receipt.status:
                _EVENTS_EMITTED.inc(len(receipt.events))
        _MINE_SECONDS.observe(_span_clock() - started)
        return block

    def mine_until_idle(self, max_blocks: int = 64) -> List[Block]:
        """Mine blocks until the mempool is empty (bounded)."""
        mined: List[Block] = []
        for _ in range(max_blocks):
            if not len(self.mempool):
                break
            mined.append(self.mine_block())
        return mined

    def _execute(self, transaction: Transaction) -> Receipt:
        contract = self._contracts.get(transaction.contract)
        if contract is None:
            return Receipt(
                transaction, False, TX_BASE, {}, (), "unknown contract"
            )

        meter = GasMeter(gas_limit=transaction.gas_limit)
        ctx = CallContext(
            sender=transaction.sender,
            args=transaction.args,
            payload=transaction.payload,
            value=transaction.value,
            meter=meter,
            period=self.clock.period,
            ledger=self.ledger,
        )
        meter.charge_intrinsic(transaction.payload)

        # A deep snapshot: ``dict(contract.storage)`` shares the nested
        # mutable values, so a handler that appended to a stored list
        # (or wrote into a stored dict) in place and *then* raised
        # would keep the mutation through "revert".
        storage_state = snapshot_storage(contract.storage)
        ledger_state = self.ledger.snapshot()
        try:
            contract.dispatch(transaction.method, ctx)
            status, reason = True, ""
        except (ContractError, OutOfGas) as exc:
            contract.storage = storage_state
            self.ledger.restore(ledger_state)
            ctx.events = []
            status, reason = False, str(exc)
        except Exception as exc:  # EVM semantics: any fault reverts
            contract.storage = storage_state
            self.ledger.restore(ledger_state)
            ctx.events = []
            status = False
            reason = "invalid call: %s: %s" % (type(exc).__name__, exc)

        receipt = Receipt(
            transaction,
            status,
            meter.used,
            dict(meter.breakdown),
            tuple(ctx.events),
            reason,
            block_number=len(self.blocks),
        )
        self._record_gas(transaction.sender, meter.used)
        if status:
            self._log_events(ctx.events)
        return receipt

    def _seal_block(
        self, transactions: Sequence[Transaction], receipts: Sequence[Receipt]
    ) -> Block:
        parent = self.blocks[-1].block_hash() if self.blocks else GENESIS_HASH
        block = Block(
            number=len(self.blocks),
            parent_hash=parent,
            transactions=tuple(transactions),
            receipts=tuple(receipts),
        )
        self.blocks.append(block)
        return block

    def _record_gas(self, sender: Address, gas: int) -> None:
        self.gas_by_sender[sender] = self.gas_by_sender.get(sender, 0) + gas

    def _log_events(self, events: Sequence[Event]) -> None:
        """Append this call's events to the log, tagged with the block
        currently being built (``len(self.blocks)``: sealing follows)."""
        for event in events:
            self.event_log.append(len(self.blocks), event)

    # -- observation ---------------------------------------------------------------

    def subscribe(
        self, filter: Optional[EventFilter] = None, from_start: bool = False
    ) -> Subscription:
        """Open a cursor-based subscription on the chain's event log.

        Clients *observe* receipts and events through this instead of
        being handed them by a driver; each :meth:`Subscription.poll`
        returns only the not-yet-seen matching events.
        """
        return self.event_log.subscribe(filter, from_start=from_start)

    def events_in_block(self, block_number: int) -> List[Event]:
        """The events emitted while block ``block_number`` was built."""
        return [
            record.event for record in self.event_log.in_block(block_number)
        ]

    def events_named(self, name: str, contract: Optional[str] = None) -> List[Event]:
        """All successfully emitted events with the given name."""
        address = self._contracts[contract].address if contract else None
        return [
            record.event
            for record in self.event_log
            if record.event.name == name
            and (address is None or record.event.contract == address)
        ]

    @property
    def total_gas(self) -> int:
        return sum(self.gas_by_sender.values())

    @property
    def height(self) -> int:
        return len(self.blocks)
