"""The network model: mempool plus an adversarial message scheduler.

The paper's real-world adversary (§IV) has two network powers:

1. *Bounded delay* — a message sent to the blockchain is delivered no
   later than the beginning of the next clock period (synchrony).
2. *Rushing / reordering* — within a period, the adversary chooses the
   delivery order of the so-far-undelivered messages, after seeing them.

:class:`Mempool` collects submitted transactions; when the chain mines a
block it asks the installed :class:`Scheduler` for the delivery order.
The scheduler sees the full pending list (the rushing power) and may
reorder it but can neither drop nor forge transactions — dropping is
modelled as delaying past the deadline, which :meth:`Mempool.delay`
exposes within the synchrony bound.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.chain.transactions import Transaction
from repro.errors import ChainError


class Scheduler:
    """Base scheduler: FIFO delivery (the honest network)."""

    def schedule(self, pending: Sequence[Transaction]) -> List[Transaction]:
        """Return the delivery order for this block's transactions."""
        return list(pending)


class FifoScheduler(Scheduler):
    """Explicit alias of the honest first-in-first-out order."""


class ReverseScheduler(Scheduler):
    """Deliver pending messages in reverse submission order."""

    def schedule(self, pending: Sequence[Transaction]) -> List[Transaction]:
        return list(reversed(pending))


class RushingScheduler(Scheduler):
    """A fully adversarial scheduler driven by a strategy callback.

    The strategy receives the pending transactions (after the adversary
    has *seen* their contents — the rushing capability) and returns a
    permutation of them.  A safety check rejects strategies that drop or
    duplicate messages, enforcing the synchrony bound.
    """

    def __init__(
        self, strategy: Callable[[Sequence[Transaction]], Sequence[Transaction]]
    ) -> None:
        self._strategy = strategy

    def schedule(self, pending: Sequence[Transaction]) -> List[Transaction]:
        ordered = list(self._strategy(pending))
        if sorted(t.nonce for t in ordered) != sorted(t.nonce for t in pending):
            raise ChainError(
                "adversarial schedule must be a permutation of pending messages"
            )
        return ordered


def _enforce_sender_nonce_order(
    ordered: Sequence[Transaction],
) -> List[Transaction]:
    """Restore per-sender nonce order while keeping each sender's slots.

    The adversary's permutation decides *where* each sender's
    transactions go; within those slots the sender's own submission
    order is restored (Ethereum nonce semantics).
    """
    queues: dict = {}
    for transaction in sorted(ordered, key=lambda t: t.nonce):
        queues.setdefault(transaction.sender, []).append(transaction)
    result: List[Transaction] = []
    consumed: dict = {}
    for transaction in ordered:
        index = consumed.get(transaction.sender, 0)
        result.append(queues[transaction.sender][index])
        consumed[transaction.sender] = index + 1
    return result


class Mempool:
    """Submitted-but-undelivered transactions, with bounded delay."""

    def __init__(self) -> None:
        self._pending: List[Transaction] = []
        self._delayed: List[Transaction] = []

    def submit(self, transaction: Transaction) -> None:
        """Queue a transaction for the next block."""
        self._pending.append(transaction)

    def delay(self, transaction: Transaction) -> None:
        """Adversarially hold a pending transaction for one extra block.

        Synchrony guarantees delivery by the next period; delaying twice
        is therefore not possible through this interface.
        """
        try:
            self._pending.remove(transaction)
        except ValueError:
            raise ChainError("cannot delay a transaction that is not pending")
        self._delayed.append(transaction)

    def drain(self, scheduler: Optional[Scheduler] = None) -> List[Transaction]:
        """Take every deliverable transaction, in scheduler order.

        Previously delayed messages re-enter ahead of the scheduler call,
        so the synchrony bound (delivered by the *next* period) holds.

        Per-sender nonce ordering is enforced *after* the adversarial
        permutation, exactly as Ethereum does: the adversary chooses when
        each sender's slots occur but cannot swap two transactions of the
        same sender.  (Fig. 4's evaluate phase relies on this — the
        requester's ``golden`` always lands before her ``evaluate``s.)
        """
        deliverable = self._delayed + self._pending
        self._delayed = []
        self._pending = []
        chosen = (scheduler or FifoScheduler()).schedule(deliverable)
        return _enforce_sender_nonce_order(chosen)

    @property
    def pending(self) -> List[Transaction]:
        """A copy of the not-yet-delivered transactions (adversary's view)."""
        return list(self._delayed + self._pending)

    def __len__(self) -> int:
        return len(self._pending) + len(self._delayed)
