"""Transactions, receipts, and event logs for the chain simulator."""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.crypto.keccak import keccak256
from repro.ledger.accounts import Address


class _NonceCounter:
    """The process-wide transaction nonce source.

    A plain counter rather than :func:`itertools.count` so persistence
    can *read* and *set* the position: a resumed node must hand out the
    same nonces the uninterrupted run would have (nonces feed
    ``tx_hash`` and therefore block hashes and the ``state_root``).
    """

    def __init__(self, start: int = 0) -> None:
        self.position = start

    def take(self) -> int:
        value = self.position
        self.position += 1
        return value


_TX_COUNTER = _NonceCounter()


def _draw_nonce() -> int:
    return _TX_COUNTER.take()


def nonce_position() -> int:
    """The nonce the next transaction will be stamped with."""
    return _TX_COUNTER.position


def set_nonce_position(position: int) -> None:
    """Fast-forward the nonce counter (checkpoint restore)."""
    _TX_COUNTER.position = position


@contextmanager
def scoped_tx_nonces(start: int = 0) -> Iterator[None]:
    """Run with a private nonce counter starting at ``start``.

    Seeded simulations run under this scope so two runs of the same
    scenario — in the same process or across processes — stamp
    identical nonces, which is what makes their block hashes and
    ``state_root`` comparable byte for byte.  Nests safely.
    """
    global _TX_COUNTER
    previous = _TX_COUNTER
    _TX_COUNTER = _NonceCounter(start)
    try:
        yield
    finally:
        _TX_COUNTER = previous


@dataclass(frozen=True)
class Event:
    """An emitted contract event (the simulator's analogue of a LOG).

    Per the paper's on-chain optimization, bulky payloads (answer
    ciphertexts) are carried in event data rather than contract storage;
    clients read them from receipts exactly as an Ethereum client would
    read logs.
    """

    contract: Address
    name: str
    topics: Tuple[bytes, ...] = ()
    data: bytes = b""
    payload: Optional[Any] = None  # decoded convenience copy for clients

    def __repr__(self) -> str:
        return "Event(%s from %s, %d data bytes)" % (
            self.name,
            self.contract,
            len(self.data),
        )


@dataclass(frozen=True)
class Transaction:
    """A signed message to a contract method.

    ``payload`` is the ABI-style byte encoding (its size is what calldata
    gas is charged on); ``args`` carries the decoded Python values so the
    simulated contract does not need an ABI decoder.
    """

    sender: Address
    contract: str  # contract instance name on the chain
    method: str
    payload: bytes = b""
    args: Tuple[Any, ...] = ()
    value: int = 0
    gas_limit: int = 30_000_000
    nonce: int = field(default_factory=_draw_nonce)

    def tx_hash(self) -> bytes:
        material = (
            self.sender.value
            + self.contract.encode()
            + self.method.encode()
            + self.payload
            + self.value.to_bytes(16, "big")
            + self.nonce.to_bytes(8, "big")
        )
        return keccak256(material)

    def __repr__(self) -> str:
        return "Transaction(%s -> %s.%s, %d bytes)" % (
            self.sender,
            self.contract,
            self.method,
            len(self.payload),
        )


@dataclass
class Receipt:
    """The result of executing a transaction in a block."""

    transaction: Transaction
    status: bool
    gas_used: int
    gas_breakdown: Dict[str, int] = field(default_factory=dict)
    events: Tuple[Event, ...] = ()
    revert_reason: str = ""
    block_number: int = -1

    @property
    def succeeded(self) -> bool:
        return self.status
