"""Transactions, receipts, and event logs for the chain simulator."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.crypto.keccak import keccak256
from repro.ledger.accounts import Address

_TX_COUNTER = itertools.count()


@dataclass(frozen=True)
class Event:
    """An emitted contract event (the simulator's analogue of a LOG).

    Per the paper's on-chain optimization, bulky payloads (answer
    ciphertexts) are carried in event data rather than contract storage;
    clients read them from receipts exactly as an Ethereum client would
    read logs.
    """

    contract: Address
    name: str
    topics: Tuple[bytes, ...] = ()
    data: bytes = b""
    payload: Optional[Any] = None  # decoded convenience copy for clients

    def __repr__(self) -> str:
        return "Event(%s from %s, %d data bytes)" % (
            self.name,
            self.contract,
            len(self.data),
        )


@dataclass(frozen=True)
class Transaction:
    """A signed message to a contract method.

    ``payload`` is the ABI-style byte encoding (its size is what calldata
    gas is charged on); ``args`` carries the decoded Python values so the
    simulated contract does not need an ABI decoder.
    """

    sender: Address
    contract: str  # contract instance name on the chain
    method: str
    payload: bytes = b""
    args: Tuple[Any, ...] = ()
    value: int = 0
    gas_limit: int = 30_000_000
    nonce: int = field(default_factory=lambda: next(_TX_COUNTER))

    def tx_hash(self) -> bytes:
        material = (
            self.sender.value
            + self.contract.encode()
            + self.method.encode()
            + self.payload
            + self.value.to_bytes(16, "big")
            + self.nonce.to_bytes(8, "big")
        )
        return keccak256(material)

    def __repr__(self) -> str:
        return "Transaction(%s -> %s.%s, %d bytes)" % (
            self.sender,
            self.contract,
            self.method,
            len(self.payload),
        )


@dataclass
class Receipt:
    """The result of executing a transaction in a block."""

    transaction: Transaction
    status: bool
    gas_used: int
    gas_breakdown: Dict[str, int] = field(default_factory=dict)
    events: Tuple[Event, ...] = ()
    revert_reason: str = ""
    block_number: int = -1

    @property
    def succeeded(self) -> bool:
        return self.status
