"""Blocks: one per clock period, carrying ordered transactions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.chain.transactions import Receipt, Transaction
from repro.crypto.keccak import keccak256


@dataclass(frozen=True)
class Block:
    """An immutable block: the transactions delivered in one clock period."""

    number: int
    parent_hash: bytes
    transactions: Tuple[Transaction, ...]
    receipts: Tuple[Receipt, ...]

    def block_hash(self) -> bytes:
        material = self.number.to_bytes(8, "big") + self.parent_hash
        for transaction in self.transactions:
            material += transaction.tx_hash()
        return keccak256(material)

    @property
    def gas_used(self) -> int:
        return sum(receipt.gas_used for receipt in self.receipts)

    def __repr__(self) -> str:
        return "Block(#%d, %d txs, %d gas)" % (
            self.number,
            len(self.transactions),
            self.gas_used,
        )


GENESIS_HASH = keccak256(b"dragoon-genesis")
