"""The Ethereum gas schedule used by the chain simulator.

Dragoon's Table III is a *gas* table, so reproducing it faithfully means
charging the same schedule Ethereum charged when the paper ran (March
2020, post-Istanbul): EIP-2028 calldata prices and EIP-1108 BN-128
precompile prices.  Every constant here is the mainline Ethereum value;
the one calibrated quantity is the simulated contract bytecode size (see
:data:`HIT_CONTRACT_CODE_BYTES`), since we do not compile Solidity.

:class:`GasMeter` is how contracts account for gas: each state-changing
or precompile operation charges the meter, which keeps an itemized
breakdown so the benches can explain where gas goes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import OutOfGas

# -- intrinsic transaction costs ---------------------------------------------

TX_BASE = 21_000
CALLDATA_ZERO_BYTE = 4
CALLDATA_NONZERO_BYTE = 16  # EIP-2028 (Istanbul)

# -- storage / memory ----------------------------------------------------------

SSTORE_SET = 20_000  # zero -> non-zero
SSTORE_RESET = 5_000  # non-zero -> non-zero
SLOAD = 800  # Istanbul price

# -- hashing and logs -----------------------------------------------------------

KECCAK_BASE = 30
KECCAK_WORD = 6
LOG_BASE = 375
LOG_TOPIC = 375
LOG_DATA_BYTE = 8

# -- BN-128 precompiles (EIP-1108, Istanbul) --------------------------------------

ECADD = 150
ECMUL = 6_000
PAIRING_BASE = 45_000
PAIRING_PER_POINT = 34_000

# -- contract deployment ------------------------------------------------------------

CREATE_BASE = 32_000
CODE_DEPOSIT_BYTE = 200

#: Calibrated size of the compiled HIT contract (bytes).  The paper's
#: publish transaction costs ~1293k gas, which is dominated by deploying
#: the task contract; a ~5.3 kB Solidity contract plus the publish-time
#: storage writes lands in that range.  This is the single tuned constant
#: in the gas model (documented in DESIGN.md / EXPERIMENTS.md).
HIT_CONTRACT_CODE_BYTES = 5_300

# -- misc --------------------------------------------------------------------------

COLD_ACCOUNT_ACCESS = 0  # pre-Berlin there is no cold-access surcharge
VALUE_TRANSFER = 9_000
MEMORY_WORD = 3


def calldata_cost(payload: bytes) -> int:
    """Intrinsic calldata gas: 16 per non-zero byte, 4 per zero byte."""
    nonzero = sum(1 for b in payload if b)
    zero = len(payload) - nonzero
    return nonzero * CALLDATA_NONZERO_BYTE + zero * CALLDATA_ZERO_BYTE


def keccak_cost(num_bytes: int) -> int:
    """Gas for hashing ``num_bytes`` with the keccak256 opcode."""
    words = (num_bytes + 31) // 32
    return KECCAK_BASE + KECCAK_WORD * words


def log_cost(num_topics: int, data_bytes: int) -> int:
    """Gas for a LOG opcode with ``num_topics`` topics."""
    return LOG_BASE + LOG_TOPIC * num_topics + LOG_DATA_BYTE * data_bytes


def pairing_cost(num_pairs: int) -> int:
    """Gas for the pairing-check precompile over ``num_pairs`` pairs."""
    return PAIRING_BASE + PAIRING_PER_POINT * num_pairs


def deployment_cost(code_bytes: int) -> int:
    """Gas for CREATE plus code deposit."""
    return CREATE_BASE + CODE_DEPOSIT_BYTE * code_bytes


@dataclass
class GasMeter:
    """Itemized gas accounting for a single transaction execution."""

    gas_limit: int = 30_000_000
    used: int = 0
    breakdown: Dict[str, int] = field(default_factory=dict)

    def charge(self, amount: int, label: str) -> None:
        """Charge ``amount`` gas under ``label``; raises on exhaustion."""
        if amount < 0:
            raise ValueError("cannot charge negative gas")
        self.used += amount
        self.breakdown[label] = self.breakdown.get(label, 0) + amount
        if self.used > self.gas_limit:
            raise OutOfGas(
                "gas limit %d exceeded (used %d at %r)"
                % (self.gas_limit, self.used, label)
            )

    # -- convenience wrappers matching contract idioms -----------------------

    def charge_intrinsic(self, payload: bytes) -> None:
        self.charge(TX_BASE, "tx-base")
        self.charge(calldata_cost(payload), "calldata")

    def charge_sstore(self, fresh: bool = True, count: int = 1) -> None:
        self.charge((SSTORE_SET if fresh else SSTORE_RESET) * count, "sstore")

    def charge_sload(self, count: int = 1) -> None:
        self.charge(SLOAD * count, "sload")

    def charge_keccak(self, num_bytes: int) -> None:
        self.charge(keccak_cost(num_bytes), "keccak")

    def charge_log(self, num_topics: int, data_bytes: int) -> None:
        self.charge(log_cost(num_topics, data_bytes), "log")

    def charge_ecmul(self, count: int = 1) -> None:
        self.charge(ECMUL * count, "ecmul")

    def charge_ecadd(self, count: int = 1) -> None:
        self.charge(ECADD * count, "ecadd")

    def charge_pairing(self, num_pairs: int) -> None:
        self.charge(pairing_cost(num_pairs), "pairing")

    def charge_value_transfer(self) -> None:
        self.charge(VALUE_TRANSFER, "value-transfer")

    def charge_deployment(self, code_bytes: int) -> None:
        self.charge(deployment_cost(code_bytes), "deploy")

    def merged_with(self, other: "GasMeter") -> "GasMeter":
        """A new meter whose usage is the sum of this one and ``other``."""
        merged = GasMeter(gas_limit=self.gas_limit)
        merged.used = self.used + other.used
        merged.breakdown = dict(self.breakdown)
        for label, amount in other.breakdown.items():
            merged.breakdown[label] = merged.breakdown.get(label, 0) + amount
        return merged


@dataclass(frozen=True)
class GasPricing:
    """Conversion of gas to USD (Table III used 1.5 gwei and $115/ETH)."""

    gwei_per_gas: float = 1.5
    usd_per_ether: float = 115.0

    def to_usd(self, gas: int) -> float:
        return gas * self.gwei_per_gas * 1e-9 * self.usd_per_ether


#: The exchange rates the paper applied on March 17, 2020.
PAPER_PRICING = GasPricing(gwei_per_gas=1.5, usd_per_ether=115.0)
