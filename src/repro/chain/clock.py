"""The global clock of the synchronous blockchain model (paper §III–IV).

The paper follows the standard synchrony abstraction [22, 48]: there is a
global clock, messages sent to the blockchain are delivered by the start
of the *next* clock period at the latest, and within a period the
adversary chooses delivery order.  One clock period therefore corresponds
to one block in the simulator.
"""

from __future__ import annotations

from typing import Callable, List


class Clock:
    """A monotone period counter with tick observers."""

    def __init__(self) -> None:
        self._period = 0
        self._observers: List[Callable[[int], None]] = []

    @property
    def period(self) -> int:
        return self._period

    def advance(self) -> int:
        """Move to the next period, notifying observers; returns it."""
        self._period += 1
        for observer in list(self._observers):
            observer(self._period)
        return self._period

    def subscribe(self, observer: Callable[[int], None]) -> None:
        """Register a callback invoked with each new period number."""
        self._observers.append(observer)
