"""The chain's event bus: a cursor-based log with filtered subscriptions.

Ethereum clients do not get handed receipts — they *watch* the log.
This module gives the simulator the same inversion: every successfully
emitted :class:`~repro.chain.transactions.Event` is appended to one
append-only :class:`EventLog` together with the block that carried it,
and clients read through :class:`Subscription` cursors (``eth_getLogs``
with a block cursor, in Ethereum terms).  The session engine
(:mod:`repro.core.session`) is built entirely on this API: sessions
never touch receipts, they react to what the log shows them.

The log is an observation layer only: it charges no gas (the emitting
transaction already paid ``charge_log``) and cannot influence execution.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional

from repro.chain.transactions import Event
from repro.errors import ChainError
from repro.ledger.accounts import Address


@dataclass(frozen=True)
class EventRecord:
    """One log entry: an event plus where (and in what order) it landed."""

    sequence: int  # global, monotone across the whole chain
    block_number: int
    event: Event


class EventFilter:
    """Which events a subscriber wants to see (contract / name / topic).

    All given criteria must match; an empty filter matches everything.
    ``contract`` is the emitting contract's address (use
    :meth:`for_contract` to build one from an instance name).
    """

    def __init__(
        self,
        contract: Optional[Address] = None,
        names: Optional[Iterable[str]] = None,
        topic: Optional[bytes] = None,
    ) -> None:
        self.contract = contract
        self.names = frozenset(names) if names is not None else None
        self.topic = topic

    @classmethod
    def for_contract(
        cls, contract_name: str, names: Optional[Iterable[str]] = None
    ) -> "EventFilter":
        """A filter on one contract instance, by its chain name."""
        return cls(
            contract=Address.from_label("contract:" + contract_name), names=names
        )

    def matches(self, event: Event) -> bool:
        if self.contract is not None and event.contract != self.contract:
            return False
        if self.names is not None and event.name not in self.names:
            return False
        if self.topic is not None and self.topic not in event.topics:
            return False
        return True

    def __repr__(self) -> str:
        return "EventFilter(contract=%s, names=%s)" % (self.contract, self.names)


class EventLog:
    """Append-only record of every successfully emitted event.

    Sequence numbers are global and never reused, but the *storage* can
    be compacted: long-running simulations call :meth:`prune` to drop
    records that every live subscription has already consumed, so an
    open-ended serve loop holds memory proportional to its in-flight
    traffic, not its whole history.  Pruned records disappear from the
    full-log views (:meth:`__iter__`, :meth:`in_block`,
    ``Chain.events``); cursors keep their absolute positions.
    """

    def __init__(self) -> None:
        self._records: List[EventRecord] = []
        #: Sequence number of ``_records[0]`` (> 0 once pruned).
        self._base = 0
        self._subscriptions: "weakref.WeakSet[Subscription]" = weakref.WeakSet()

    def __getstate__(self) -> dict:
        """Pickle support (checkpoint/resume): weak references cannot be
        pickled, so live subscriptions travel as a strong list and the
        weak set is rebuilt on restore.  Subscriptions are shared with
        their owners through the pickle memo, so a restored session's
        cursor and the restored log agree on position."""
        state = dict(self.__dict__)
        state["_subscriptions"] = list(self._subscriptions)
        return state

    def __setstate__(self, state: dict) -> None:
        subscriptions = state.pop("_subscriptions")
        self.__dict__.update(state)
        self._subscriptions = weakref.WeakSet()
        for subscription in subscriptions:
            self._subscriptions.add(subscription)

    def append(self, block_number: int, event: Event) -> EventRecord:
        """Record one emitted event (called by the chain, never clients)."""
        record = EventRecord(len(self), block_number, event)
        self._records.append(record)
        return record

    def __len__(self) -> int:
        """One past the highest sequence number ever assigned."""
        return self._base + len(self._records)

    def __iter__(self) -> Iterator[EventRecord]:
        """The *retained* records, oldest first (pruned ones are gone)."""
        return iter(self._records)

    @property
    def pruned(self) -> int:
        """How many records have been dropped from storage so far."""
        return self._base

    def _check_cursor(self, cursor: int) -> int:
        """The storage index for ``cursor``, refusing a pruned position.

        A cursor below the prune base has *lost* events; silently
        clamping to 0 (the pre-fix behaviour) resumed past the gap
        without a trace, while the RPC page path refused loudly — the
        same read through two doors gave different answers.  Both doors
        now raise the same :class:`~repro.errors.ChainError`.
        """
        if cursor < self._base:
            raise ChainError(
                "cursor %d precedes the pruned base %d — events were "
                "compacted away; restart from a fresh subscription"
                % (cursor, self._base)
            )
        return cursor - self._base

    def since(
        self, cursor: int, filter: Optional[EventFilter] = None
    ) -> List[EventRecord]:
        """All retained records at sequence >= ``cursor`` passing the filter.

        Raises :class:`~repro.errors.ChainError` if ``cursor`` precedes
        the prune base (records it should have seen are gone).
        """
        records = self._records[self._check_cursor(cursor):]
        if filter is None:
            return list(records)
        return [record for record in records if filter.matches(record.event)]

    def iter_since(self, cursor: int) -> Iterator[EventRecord]:
        """Lazily iterate retained records at sequence >= ``cursor``.

        The paged-read building block (the RPC server's ``chain_events``):
        unlike :meth:`since` it copies nothing, so taking one page from a
        long log costs the page, not the tail.  Like :meth:`since`, a
        cursor behind the prune base raises instead of skipping the gap.
        """
        for index in range(self._check_cursor(cursor), len(self._records)):
            yield self._records[index]

    def in_block(self, block_number: int) -> List[EventRecord]:
        """The retained records emitted by block ``block_number``."""
        return [
            record
            for record in self._records
            if record.block_number == block_number
        ]

    def subscribe(
        self, filter: Optional[EventFilter] = None, from_start: bool = False
    ) -> "Subscription":
        """Open a cursor; by default it starts at the log's current end."""
        subscription = Subscription(
            self, filter, cursor=self._base if from_start else len(self)
        )
        self._subscriptions.add(subscription)
        return subscription

    def prune(self, through: Optional[int] = None) -> int:
        """Drop records every live subscription has already consumed.

        Returns how many records were dropped.  The safe floor is the
        minimum cursor across live subscriptions (a garbage-collected
        subscription no longer pins anything); pass ``through`` to drop
        less — only records below that sequence number.  Pruning never
        touches records a live cursor still has to deliver, so
        :meth:`Subscription.poll` semantics are unaffected.
        """
        floor = min(
            (subscription.cursor for subscription in self._subscriptions),
            default=len(self),
        )
        if through is not None:
            floor = min(floor, through)
        drop = min(max(0, floor - self._base), len(self._records))
        if drop:
            del self._records[:drop]
            self._base += drop
        return drop


class Subscription:
    """A client's private cursor into the event log.

    Each :meth:`poll` returns the matching records the cursor has not yet
    seen and advances past *everything* it scanned, so two subscribers
    never interfere and no record is delivered twice.
    """

    def __init__(
        self, log: EventLog, filter: Optional[EventFilter], cursor: int
    ) -> None:
        self._log = log
        self.filter = filter
        self.cursor = cursor

    def poll(self) -> List[EventRecord]:
        """New matching records since the last poll (may be empty)."""
        records = self._log.since(self.cursor, self.filter)
        self.cursor = len(self._log)
        return records
