"""The chain's event bus: a cursor-based log with filtered subscriptions.

Ethereum clients do not get handed receipts — they *watch* the log.
This module gives the simulator the same inversion: every successfully
emitted :class:`~repro.chain.transactions.Event` is appended to one
append-only :class:`EventLog` together with the block that carried it,
and clients read through :class:`Subscription` cursors (``eth_getLogs``
with a block cursor, in Ethereum terms).  The session engine
(:mod:`repro.core.session`) is built entirely on this API: sessions
never touch receipts, they react to what the log shows them.

The log is an observation layer only: it charges no gas (the emitting
transaction already paid ``charge_log``) and cannot influence execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional

from repro.chain.transactions import Event
from repro.ledger.accounts import Address


@dataclass(frozen=True)
class EventRecord:
    """One log entry: an event plus where (and in what order) it landed."""

    sequence: int  # global, monotone across the whole chain
    block_number: int
    event: Event


class EventFilter:
    """Which events a subscriber wants to see (contract / name / topic).

    All given criteria must match; an empty filter matches everything.
    ``contract`` is the emitting contract's address (use
    :meth:`for_contract` to build one from an instance name).
    """

    def __init__(
        self,
        contract: Optional[Address] = None,
        names: Optional[Iterable[str]] = None,
        topic: Optional[bytes] = None,
    ) -> None:
        self.contract = contract
        self.names = frozenset(names) if names is not None else None
        self.topic = topic

    @classmethod
    def for_contract(
        cls, contract_name: str, names: Optional[Iterable[str]] = None
    ) -> "EventFilter":
        """A filter on one contract instance, by its chain name."""
        return cls(
            contract=Address.from_label("contract:" + contract_name), names=names
        )

    def matches(self, event: Event) -> bool:
        if self.contract is not None and event.contract != self.contract:
            return False
        if self.names is not None and event.name not in self.names:
            return False
        if self.topic is not None and self.topic not in event.topics:
            return False
        return True

    def __repr__(self) -> str:
        return "EventFilter(contract=%s, names=%s)" % (self.contract, self.names)


class EventLog:
    """Append-only record of every successfully emitted event."""

    def __init__(self) -> None:
        self._records: List[EventRecord] = []

    def append(self, block_number: int, event: Event) -> EventRecord:
        """Record one emitted event (called by the chain, never clients)."""
        record = EventRecord(len(self._records), block_number, event)
        self._records.append(record)
        return record

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[EventRecord]:
        return iter(self._records)

    def since(
        self, cursor: int, filter: Optional[EventFilter] = None
    ) -> List[EventRecord]:
        """All records at sequence >= ``cursor`` that pass the filter."""
        records = self._records[cursor:]
        if filter is None:
            return list(records)
        return [record for record in records if filter.matches(record.event)]

    def in_block(self, block_number: int) -> List[EventRecord]:
        """The records emitted by block ``block_number``, in log order."""
        return [
            record
            for record in self._records
            if record.block_number == block_number
        ]

    def subscribe(
        self, filter: Optional[EventFilter] = None, from_start: bool = False
    ) -> "Subscription":
        """Open a cursor; by default it starts at the log's current end."""
        return Subscription(
            self, filter, cursor=0 if from_start else len(self._records)
        )


class Subscription:
    """A client's private cursor into the event log.

    Each :meth:`poll` returns the matching records the cursor has not yet
    seen and advances past *everything* it scanned, so two subscribers
    never interfere and no record is delivered twice.
    """

    def __init__(
        self, log: EventLog, filter: Optional[EventFilter], cursor: int
    ) -> None:
        self._log = log
        self.filter = filter
        self.cursor = cursor

    def poll(self) -> List[EventRecord]:
        """New matching records since the last poll (may be empty)."""
        records = self._log.since(self.cursor, self.filter)
        self.cursor = len(self._log)
        return records
