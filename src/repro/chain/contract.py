"""The smart-contract execution model.

A :class:`Contract` is a stateful program whose public methods are invoked
by transactions.  The model captures what the paper needs from Ethereum:

* transparent state (anyone can read storage; tests do),
* gas-metered execution (methods charge a :class:`~repro.chain.gas.GasMeter`
  through the ``_sstore``/``_sload``/``emit``/precompile helpers),
* revert semantics (raising :class:`~repro.errors.ContractError` rolls
  back storage and ledger effects),
* access to the ledger functionality L for FreezeCoins / PayCoins.

Contract methods take a single :class:`CallContext` argument and are
named after the protocol message they handle (``publish``, ``commit``,
``reveal`` ...), mirroring Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Any, Dict, List, Optional, Tuple

from repro.chain.gas import GasMeter, HIT_CONTRACT_CODE_BYTES
from repro.chain.transactions import Event
from repro.errors import ContractError
from repro.ledger.accounts import Address
from repro.ledger.ledger import Ledger


def snapshot_value(value: Any) -> Any:
    """A revert-safe copy of one storage value.

    Recurses into the mutable containers a handler could mutate in
    place (lists, dicts, sets, bytearrays — and tuples, whose *elements*
    may be mutable); everything else (ints, bytes, strings, frozen
    crypto objects) is shared, so a snapshot costs no more than the
    container skeleton.  A shallow ``dict(storage)`` is not enough:
    ``storage["workers"].append(...)`` followed by a raise would leave
    the append behind after "revert".
    """
    if isinstance(value, list):
        return [snapshot_value(item) for item in value]
    if isinstance(value, dict):
        return {key: snapshot_value(item) for key, item in value.items()}
    if isinstance(value, tuple):
        return tuple(snapshot_value(item) for item in value)
    if isinstance(value, set):
        return {snapshot_value(item) for item in value}
    if isinstance(value, bytearray):
        return bytearray(value)
    return value


def snapshot_storage(storage: Dict[str, Any]) -> Dict[str, Any]:
    """A deep, revert-safe snapshot of a contract's storage dict."""
    return {key: snapshot_value(value) for key, value in storage.items()}


@dataclass
class CallContext:
    """Everything a contract method sees about the current call."""

    sender: Address
    args: Tuple[Any, ...]
    payload: bytes
    value: int
    meter: GasMeter
    period: int
    ledger: Ledger
    events: List[Event] = dataclass_field(default_factory=list)

    def require(self, condition: bool, reason: str) -> None:
        """Revert the call unless ``condition`` holds."""
        if not condition:
            raise ContractError(reason)


class Contract:
    """Base class for simulated contracts.

    Subclasses keep *all* mutable state inside ``self.storage`` (a flat
    dict) so the chain can snapshot and roll back on revert, exactly like
    EVM storage.  ``code_size`` feeds the deployment-gas model.
    """

    code_size: int = HIT_CONTRACT_CODE_BYTES

    def __init__(self, name: str) -> None:
        self.name = name
        self.address = Address.from_label("contract:" + name)
        self.storage: Dict[str, Any] = {}

    # -- lifecycle -----------------------------------------------------------

    def on_deploy(self, ctx: CallContext) -> None:
        """Constructor hook; charged as part of the deployment tx."""

    # -- storage helpers (gas-charged) ----------------------------------------

    def _sstore(self, ctx: CallContext, key: str, value: Any) -> None:
        """Write one storage slot, charging SSTORE_SET or SSTORE_RESET."""
        fresh = key not in self.storage
        ctx.meter.charge_sstore(fresh=fresh)
        self.storage[key] = value

    def _sstore_many(self, ctx: CallContext, items: Dict[str, Any]) -> None:
        for key, value in items.items():
            self._sstore(ctx, key, value)

    def _sload(self, ctx: CallContext, key: str, default: Any = None) -> Any:
        """Read one storage slot, charging SLOAD."""
        ctx.meter.charge_sload()
        return self.storage.get(key, default)

    def _memory_read(self, key: str, default: Any = None) -> Any:
        """Gas-free read, for off-chain observers (tests, clients)."""
        return self.storage.get(key, default)

    # -- events -----------------------------------------------------------------

    def emit(
        self,
        ctx: CallContext,
        name: str,
        data: bytes = b"",
        topics: Tuple[bytes, ...] = (),
        payload: Optional[Any] = None,
    ) -> None:
        """Emit an event, charging LOG gas on its topics and data size."""
        ctx.meter.charge_log(len(topics), len(data))
        ctx.events.append(
            Event(self.address, name, tuple(topics), data, payload)
        )

    # -- dispatch ------------------------------------------------------------------

    def dispatch(self, method: str, ctx: CallContext) -> Any:
        """Route a transaction to the handler method named ``method``."""
        if method.startswith("_"):
            raise ContractError("cannot call private method %r" % method)
        handler = getattr(self, method, None)
        if handler is None or not callable(handler):
            raise ContractError(
                "%s has no method %r" % (type(self).__name__, method)
            )
        return handler(ctx)
