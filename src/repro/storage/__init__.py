"""Off-chain storage substrate (the paper's Swarm)."""

from repro.storage.swarm import SwarmStore, SwarmError

__all__ = ["SwarmStore", "SwarmError"]
