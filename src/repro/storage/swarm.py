"""A Swarm-like content-addressed off-chain store.

Dragoon keeps the bulky task description (the actual questions, image
URLs, instructions) off-chain in Swarm [53] and commits only the 32-byte
keccak digest on-chain, "which significantly reduces on-chain cost,
without violating securities".  :class:`SwarmStore` models exactly that
contract: content-addressed puts/gets with integrity verified against the
digest, so a tampered task description is detectable by every worker.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.crypto.keccak import keccak256
from repro.errors import ReproError


class SwarmError(ReproError):
    """Raised on integrity failures or missing content."""


class SwarmStore:
    """An in-process content-addressed store keyed by keccak-256 digest."""

    def __init__(self) -> None:
        self._blobs: Dict[bytes, bytes] = {}
        self.put_count = 0
        self.get_count = 0

    def put(self, content: bytes) -> bytes:
        """Store ``content``; returns its 32-byte content address."""
        digest = keccak256(content)
        self._blobs[digest] = content
        self.put_count += 1
        return digest

    def get(self, digest: bytes) -> bytes:
        """Fetch content by address, verifying integrity before returning."""
        self.get_count += 1
        try:
            content = self._blobs[digest]
        except KeyError:
            raise SwarmError("no content at %s" % digest.hex()) from None
        if keccak256(content) != digest:
            raise SwarmError("stored content fails integrity check")
        return content

    def has(self, digest: bytes) -> bool:
        return digest in self._blobs

    def corrupt(self, digest: bytes, content: bytes) -> None:
        """Adversarially replace stored content (for integrity tests)."""
        if digest not in self._blobs:
            raise SwarmError("no content at %s" % digest.hex())
        self._blobs[digest] = content

    def __len__(self) -> int:
        return len(self._blobs)

    def __iter__(self) -> Iterator[bytes]:
        return iter(self._blobs)
