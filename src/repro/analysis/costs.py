"""Fee analysis: gas → USD and the MTurk comparison (paper Table III).

The paper's headline economic claim: Dragoon's on-chain handling cost
(~$2.09–2.22 for the whole ImageNet task, at 1.5 gwei and $115/ETH) is
*below* MTurk's handling fee for the same task (≥$4).  This module turns
a :class:`~repro.core.protocol.GasReport` into that table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.chain.gas import GasPricing, PAPER_PRICING
from repro.core.protocol import GasReport


@dataclass(frozen=True)
class HandlingFeeRow:
    """One row of the Table III reproduction."""

    operation: str
    gas: int
    usd: float


@dataclass(frozen=True)
class HandlingFeeTable:
    """The assembled Table III: per-operation and overall fees."""

    rows: List[HandlingFeeRow]
    pricing: GasPricing

    def row(self, operation: str) -> HandlingFeeRow:
        for row in self.rows:
            if row.operation == operation:
                return row
        raise KeyError(operation)

    def total_usd(self) -> float:
        return sum(row.usd for row in self.rows)


def mturk_handling_fee(
    total_reward_usd: float, assignments: int, large_batch: bool = False
) -> float:
    """MTurk's fee model at the time of the paper [18].

    20% of the reward paid to workers (40% for batches of 10+
    assignments), with a $0.01-per-assignment floor.  The paper's
    ImageNet comparison point is "at least $4" for the task.
    """
    rate = 0.40 if large_batch or assignments >= 10 else 0.20
    return max(rate * total_reward_usd, 0.01 * assignments)


def build_handling_fee_table(
    gas_best: GasReport,
    gas_worst: Optional[GasReport] = None,
    pricing: GasPricing = PAPER_PRICING,
) -> HandlingFeeTable:
    """Assemble the Table III rows from one (or two) protocol runs.

    ``gas_best`` should come from a run where no submission is rejected;
    ``gas_worst`` (optional) from a run where every submission is
    rejected.  Per-worker numbers are averaged across workers.
    """
    rows: List[HandlingFeeRow] = []

    def add(operation: str, gas: int) -> None:
        rows.append(HandlingFeeRow(operation, gas, pricing.to_usd(gas)))

    add("Publish task (by requester)", gas_best.publish)

    submit_costs = [
        gas_best.submit_cost(label) for label in gas_best.commits
    ]
    average_submit = sum(submit_costs) // max(1, len(submit_costs))
    add("Submit answers (by worker)", average_submit)

    source = gas_worst if gas_worst is not None else gas_best
    rejection_costs = list(source.rejections.values())
    if rejection_costs:
        add(
            "Verify PoQoEA to reject an answer",
            sum(rejection_costs) // len(rejection_costs),
        )
    else:
        add("Verify PoQoEA to reject an answer", 0)

    # Dynamic operations (timeout refunds, deadline-missed submissions)
    # appear as their own rows whenever a run actually recorded any, so
    # scenario reports price the unscripted gas too.  Rows are labelled
    # by source run, keeping labels unique (``HandlingFeeTable.row``
    # looks rows up by name) and totals honest when both runs recorded
    # the same operation.
    labelled = [("Dynamic: %s", gas_best)]
    if gas_worst is not None:
        labelled.append(("Dynamic, worst-case: %s", gas_worst))
    for label_format, source_report in labelled:
        for operation in sorted(source_report.extras):
            add(label_format % operation, source_report.extras[operation])

    add("Overall (best-case: reject no submission)", gas_best.total)
    if gas_worst is not None:
        add("Overall (worst-case: reject all submissions)", gas_worst.total)
    return HandlingFeeTable(rows, pricing)


def gas_summary(gas: GasReport, pricing: GasPricing = PAPER_PRICING) -> Dict[str, str]:
    """A printable summary of one run's gas ledger."""
    return {
        "publish": "%dk gas ($%.2f)" % (gas.publish // 1000, pricing.to_usd(gas.publish)),
        "submits": ", ".join(
            "%s: %dk" % (label, gas.submit_cost(label) // 1000)
            for label in sorted(gas.commits)
        ),
        "golden": "%dk" % (gas.golden // 1000),
        "rejections": ", ".join(
            "%s: %dk" % (label, cost // 1000)
            for label, cost in sorted(gas.rejections.items())
        )
        or "none",
        "finalize": "%dk" % (gas.finalize // 1000),
        "extras": ", ".join(
            "%s: %dk" % (operation, cost // 1000)
            for operation, cost in sorted(gas.extras.items())
        )
        or "none",
        "total": "%dk gas ($%.2f)" % (gas.total // 1000, pricing.to_usd(gas.total)),
    }
