"""Incentive analysis: why rational workers play honestly under Dragoon.

The paper's conclusion poses incentive compatibility as an open problem
("why rational workers would not deviate"), while its design already
removes the profitable deviations.  This module makes the argument
quantitative: it computes the expected utility of each worker strategy
under the protocol's actual rules so benches and tests can show that
honest effort dominates once the copy-paste channel is closed.

Model (one task, one worker slot):

* answering a question costs ``effort_cost`` per question at the
  worker's native accuracy; guessing costs nothing and hits a gold with
  probability ``1/|range|``;
* the submission is paid ``reward`` iff at least ``Θ`` of the ``|G|``
  golds are answered correctly (the requester is honest: PoQoEA's
  upper-bound soundness means she *cannot* underpay);
* every on-chain submission costs ``submit_fee`` (the Table III gas
  converted to the reward's currency);
* copying is the strategy the blockchain made *possible* and Dragoon
  makes *worthless*: with commit-reveal plus encryption its success
  probability is 0, yet it still burns the submission fee.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb
from typing import Dict, List, Sequence


def binomial_at_least(trials: int, successes: int, probability: float) -> float:
    """P[X >= successes] for X ~ Binomial(trials, probability)."""
    if successes <= 0:
        return 1.0
    if successes > trials:
        return 0.0
    total = 0.0
    for k in range(successes, trials + 1):
        total += (
            comb(trials, k)
            * probability**k
            * (1.0 - probability) ** (trials - k)
        )
    return min(1.0, max(0.0, total))


@dataclass(frozen=True)
class IncentiveParameters:
    """Everything the expected-utility computation needs."""

    num_questions: int = 106
    num_golds: int = 6
    quality_threshold: int = 4
    range_size: int = 2
    reward: float = 5.0  # per-assignment reward in USD
    effort_cost_per_question: float = 0.02
    submit_fee: float = 0.48  # Table III per-worker handling cost
    worker_accuracy: float = 0.95  # accuracy under honest effort


@dataclass(frozen=True)
class StrategyOutcome:
    """Expected utility of one strategy."""

    name: str
    pay_probability: float
    expected_reward: float
    cost: float

    @property
    def expected_utility(self) -> float:
        return self.expected_reward - self.cost


def honest_effort(params: IncentiveParameters) -> StrategyOutcome:
    """Answer every question at native accuracy."""
    pay_probability = binomial_at_least(
        params.num_golds, params.quality_threshold, params.worker_accuracy
    )
    return StrategyOutcome(
        name="honest effort",
        pay_probability=pay_probability,
        expected_reward=pay_probability * params.reward,
        cost=params.effort_cost_per_question * params.num_questions
        + params.submit_fee,
    )


def random_guessing(params: IncentiveParameters) -> StrategyOutcome:
    """Answer uniformly at random (the bot strategy of [8, 13])."""
    pay_probability = binomial_at_least(
        params.num_golds, params.quality_threshold, 1.0 / params.range_size
    )
    return StrategyOutcome(
        name="random guessing",
        pay_probability=pay_probability,
        expected_reward=pay_probability * params.reward,
        cost=params.submit_fee,
    )


def copy_paste(
    params: IncentiveParameters, copy_success_probability: float = 0.0
) -> StrategyOutcome:
    """Attempt to copy another submission.

    Under Dragoon the success probability is 0 (commitments hide the
    ciphertexts; reveals are encrypted to the requester).  On a naive
    transparent chain pass ``copy_success_probability`` close to 1 to
    model the attack the paper's §I describes.
    """
    victim_quality = binomial_at_least(
        params.num_golds, params.quality_threshold, params.worker_accuracy
    )
    pay_probability = copy_success_probability * victim_quality
    return StrategyOutcome(
        name="copy-paste",
        pay_probability=pay_probability,
        expected_reward=pay_probability * params.reward,
        cost=params.submit_fee,
    )


def strategy_profile(
    params: IncentiveParameters, naive_chain: bool = False
) -> List[StrategyOutcome]:
    """All strategies' expected utilities under Dragoon (or a naive chain)."""
    return [
        honest_effort(params),
        random_guessing(params),
        copy_paste(params, copy_success_probability=1.0 if naive_chain else 0.0),
    ]


def honest_dominates(params: IncentiveParameters) -> bool:
    """Whether honest effort is the strictly best response under Dragoon."""
    outcomes = strategy_profile(params, naive_chain=False)
    honest = outcomes[0]
    return all(
        honest.expected_utility > other.expected_utility
        for other in outcomes[1:]
    )


def minimum_viable_reward(params: IncentiveParameters) -> float:
    """The smallest reward making honest effort profitable and dominant.

    Below this, rational workers stay away — the knob a requester tunes
    when a task attracts no submissions.
    """
    low, high = 0.0, max(1.0, params.reward * 100)
    for _ in range(60):
        mid = (low + high) / 2.0
        candidate = IncentiveParameters(
            num_questions=params.num_questions,
            num_golds=params.num_golds,
            quality_threshold=params.quality_threshold,
            range_size=params.range_size,
            reward=mid,
            effort_cost_per_question=params.effort_cost_per_question,
            submit_fee=params.submit_fee,
            worker_accuracy=params.worker_accuracy,
        )
        honest = honest_effort(candidate)
        if honest.expected_utility > 0 and honest_dominates(candidate):
            high = mid
        else:
            low = mid
    return high
