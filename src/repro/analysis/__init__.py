"""Cost analysis and table rendering for the benchmark harness."""

from repro.analysis.costs import (
    HandlingFeeRow,
    HandlingFeeTable,
    build_handling_fee_table,
    mturk_handling_fee,
    gas_summary,
)
from repro.analysis.tables import (
    render_table,
    format_seconds,
    format_bytes,
    format_gas,
)
from repro.analysis.incentives import (
    IncentiveParameters,
    StrategyOutcome,
    strategy_profile,
    honest_effort,
    random_guessing,
    copy_paste,
    honest_dominates,
    minimum_viable_reward,
)

__all__ = [
    "HandlingFeeRow",
    "HandlingFeeTable",
    "build_handling_fee_table",
    "mturk_handling_fee",
    "gas_summary",
    "render_table",
    "format_seconds",
    "format_bytes",
    "format_gas",
    "IncentiveParameters",
    "StrategyOutcome",
    "strategy_profile",
    "honest_effort",
    "random_guessing",
    "copy_paste",
    "honest_dominates",
    "minimum_viable_reward",
]
