"""Plain-text table rendering for the benchmark harness.

Every bench prints the same rows the paper's tables report, in a
fixed-width layout that survives log files and CI output.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an ASCII table with auto-sized columns."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return "| " + " | ".join(
            cell.ljust(widths[index]) for index, cell in enumerate(cells)
        ) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(format_row(list(headers)))
    lines.append(separator)
    for row in materialized:
        lines.append(format_row(row))
    lines.append(separator)
    return "\n".join(lines)


def format_seconds(seconds: float) -> str:
    """Human-scale time formatting (ms below 1 s, otherwise seconds)."""
    if seconds < 1.0:
        return "%.1f ms" % (seconds * 1000.0)
    if seconds < 120.0:
        return "%.1f s" % seconds
    return "%.1f min" % (seconds / 60.0)


def format_bytes(num_bytes: float) -> str:
    """Human-scale memory formatting."""
    if num_bytes < 1024.0**2:
        return "%.0f KiB" % (num_bytes / 1024.0)
    if num_bytes < 1024.0**3:
        return "%.1f MiB" % (num_bytes / 1024.0**2)
    return "%.2f GiB" % (num_bytes / 1024.0**3)


def format_gas(gas: int) -> str:
    """Gas in the paper's '~NNNk' style."""
    return "~%dk" % round(gas / 1000.0)


def render_gas_extras(
    extras: "dict[str, int]",
    pricing=None,
    title: str = "Dynamic operations (GasReport.extras)",
) -> str:
    """Render the dynamic-operation gas ledger as a table.

    ``extras`` is :attr:`repro.core.protocol.GasReport.extras` (or an
    aggregation of several reports): timeout-cancel refunds, gas burned
    on deadline-missing submissions, and any other unscripted operation
    a session recorded.  Returns a one-line note when empty so reports
    always say whether dynamic gas occurred.  ``pricing`` (a
    :class:`repro.chain.gas.GasPricing`) adds a USD column.
    """
    if not extras:
        return "%s: none" % title
    rows = []
    for operation in sorted(extras):
        gas = extras[operation]
        row = [operation, format_gas(gas)]
        if pricing is not None:
            row.append("$%.2f" % pricing.to_usd(gas))
        rows.append(row)
    headers = ["operation", "gas"] + (["usd"] if pricing is not None else [])
    return render_table(headers, rows, title=title)
