"""Job functions executed inside pool worker processes.

Every job has the same shape: ``fn(payload: bytes) -> bytes`` with both
sides encoded by :mod:`repro.store.codec` — one picklable bytes object
per direction, no live objects crossing the process boundary.  Jobs
must stay module-level (spawn-compatible pickling) and must never call
the backend-hooked entry points (:func:`repro.crypto.curve.msm`,
:func:`repro.crypto.pairing.multi_pairing`): they go straight to the
underlying primitives, so an installed parallel backend can never
recurse into the pool that owns it.

Jobs that consume randomness run under their own
:class:`~repro.crypto.rng.DeterministicStream`, seeded by the parent
via :func:`repro.crypto.rng.derive_job_seed` — the parent stream
position stays a pure function of the dispatch sequence, which is what
keeps pooled runs byte-identical across pool sizes and across
checkpoint/resume.
"""

from __future__ import annotations

import os
import signal
import time

from repro.crypto import curve, pairing
from repro.crypto.curve import (
    GENERATOR,
    G1Point,
    _from_jacobian,
    _jacobian_double,
    _msm_jacobian,
    _to_jacobian,
    precompute_base,
)
from repro.crypto.elgamal import ElGamalPublicKey, ElGamalSecretKey
from repro.crypto.pairing import cast_g1_to_fq12, miller_loop_raw, twist
from repro.crypto.poqoea import prove_quality
from repro.crypto.rng import deterministic_entropy, entropy
from repro.crypto.tower import FQ2, FQ12
from repro.crypto.vpke import prove_decryption
from repro.store import codec


def initialize_worker(cache_limit: int) -> None:
    """Per-worker setup, run once when a pool process starts.

    Clears any backend hooks and entropy stream inherited from a forked
    parent (a worker must never dispatch back into a pool), applies the
    parent's fixed-base cache limit, zeroes the hit/miss counters so
    per-worker stats are meaningful, and warms the generator table —
    the one base every job uses.
    """
    curve.set_msm_backend(None)
    pairing.set_miller_backend(None)
    entropy._stream = None
    curve.configure_fixed_base_cache(cache_limit)
    curve.reset_fixed_base_cache_stats()
    precompute_base(GENERATOR)


# ---------------------------------------------------------------------------
# Verifier-side jobs: chunked MSM and Miller-loop products
# ---------------------------------------------------------------------------


def job_msm_chunk(payload: bytes) -> bytes:
    """One Pippenger window-range of an MSM.

    Payload: ``{"points": [G1Point...], "scalars": [int...], "lo": int,
    "hi": int}``.  Computes ``sum_i ((s_i >> lo) & mask) * P_i`` and then
    doubles ``lo`` times, so the parent combines chunks by plain point
    addition: ``sum_c 2^lo_c * partial_c`` equals the full MSM exactly.
    """
    data = codec.decode(payload)
    lo = data["lo"]
    mask = (1 << (data["hi"] - lo)) - 1
    jacobians = [_to_jacobian(point.affine) for point in data["points"]]
    digits = [(scalar >> lo) & mask for scalar in data["scalars"]]
    partial = _msm_jacobian(jacobians, digits)
    for _ in range(lo):
        partial = _jacobian_double(partial)
    return codec.encode(G1Point(_from_jacobian(partial)))


def job_miller_chunk(payload: bytes) -> bytes:
    """The raw Miller-loop product over a slice of pairing pairs.

    Payload: a list of ``(G1Point, g2)`` with ``g2`` either ``None`` or
    ``((x0, x1), (y0, y1))`` integer Fp2 coefficients.  Returns the
    twelve Fp12 coefficients of the partial product; the parent
    multiplies partials and applies the single final exponentiation.
    """
    pairs = codec.decode(payload)
    accumulator = FQ12.one()
    for g1_point, g2_data in pairs:
        if g2_data is None:
            g2_point = None
        else:
            (x0, x1), (y0, y1) = g2_data
            g2_point = (FQ2([x0, x1]), FQ2([y0, y1]))
        accumulator = accumulator * miller_loop_raw(
            twist(g2_point), cast_g1_to_fq12(g1_point)
        )
    return codec.encode(list(accumulator.coeffs))


# ---------------------------------------------------------------------------
# Prover-side jobs: encryption and proof generation under a derived seed
# ---------------------------------------------------------------------------


def job_encrypt_vector(payload: bytes) -> bytes:
    """Encrypt an answer vector under a derived per-job DRBG seed."""
    data = codec.decode(payload)
    public_key = ElGamalPublicKey(data["key"])
    with deterministic_entropy(data["seed"]):
        ciphertexts = public_key.encrypt_vector(data["messages"])
    return codec.encode(ciphertexts)


def job_prove_decryption(payload: bytes) -> bytes:
    """A VPKE verifiable-decryption proof for one ciphertext."""
    data = codec.decode(payload)
    secret_key = ElGamalSecretKey(data["secret"])
    with deterministic_entropy(data["seed"]):
        claim, proof = prove_decryption(
            secret_key, data["ciphertext"], data["message_range"]
        )
    return codec.encode({"claim": claim, "proof": proof})


def job_prove_quality(payload: bytes) -> bytes:
    """A PoQoEA quality proof over a worker's encrypted answers."""
    data = codec.decode(payload)
    secret_key = ElGamalSecretKey(data["secret"])
    with deterministic_entropy(data["seed"]):
        quality, proof = prove_quality(
            secret_key,
            data["ciphertexts"],
            data["gold_indexes"],
            data["gold_answers"],
            data["answer_range"],
        )
    return codec.encode({"quality": quality, "proof": proof})


# ---------------------------------------------------------------------------
# Introspection and fault-injection jobs
# ---------------------------------------------------------------------------


def job_traced(payload: bytes) -> bytes:
    """Run a named job under a worker-side span, shipping the span home.

    Payload: ``{"fn": job_name, "inner": bytes}``.  The named job runs
    unchanged on its inner payload; the result rides back as
    ``{"raw": inner_result, "span": {fn, start, end, pid}}`` with the
    worker's own monotonic clock readings.  The parent pool unwraps the
    envelope, re-parents the span under the submit-side ``pool.job``
    span, and hands decoders the identical inner bytes an untraced run
    would have produced — tracing never changes job results.
    """
    data = codec.decode(payload)
    name = data["fn"]
    if not name.startswith("job_") or name == "job_traced":
        raise ValueError("not a traceable job: %r" % name)
    fn = globals()[name]
    start = time.perf_counter()
    raw = fn(data["inner"])
    end = time.perf_counter()
    return codec.encode(
        {
            "raw": raw,
            "span": {"fn": name, "start": start, "end": end, "pid": os.getpid()},
        }
    )


def job_cache_info(payload: bytes) -> bytes:
    """This worker's fixed-base cache stats (for ``node_status``)."""
    stats = dict(curve.fixed_base_cache_stats())
    stats["pid"] = os.getpid()
    return codec.encode(stats)


def job_crash(payload: bytes) -> bytes:
    """SIGKILL this worker mid-job (crash-tolerance tests only).

    Payload: ``{"marker": path | None}``.  With a marker path the worker
    dies only if the marker does not exist yet (and creates it first),
    so a retry on a fresh worker succeeds — the clean-retry scenario.
    With ``None`` every attempt dies, forcing ``ProofPoolError``.
    """
    data = codec.decode(payload)
    marker = data["marker"]
    if marker is None or not os.path.exists(marker):
        if marker is not None:
            with open(marker, "wb") as handle:
                handle.write(b"crashed-once")
        os.kill(os.getpid(), signal.SIGKILL)
    return codec.encode("survived")
