"""Multiprocessing pools for the cryptographic hot paths.

Pure-Python group arithmetic is single-core by default; this package
spreads it across processes without changing a single observable byte:

* :class:`ProverPool` runs worker-side jobs — ElGamal answer-vector
  encryption, VPKE decryption proofs, PoQoEA quality proofs — in child
  processes, each under a DRBG seeded deterministically from the parent
  entropy stream (:func:`repro.crypto.rng.derive_job_seed`).
* :class:`VerifierPool` installs itself as the backend of
  :func:`repro.crypto.curve.msm` (chunked Pippenger windows, partial
  sums combined in the parent) and of
  :func:`repro.crypto.pairing.multi_pairing` (parallel raw Miller-loop
  products, one shared final exponentiation in the parent), so every
  batch verifier — VPKE, Schnorr, sigma, Groth16, PoQoEA — parallelizes
  transparently.

Jobs travel as :mod:`repro.store.codec` TLV bytes (the PR-4 canonical
encoding), so the IPC format is the wire format.  A killed worker
process is detected via ``BrokenProcessPool``; the pool rebuilds its
executor and retries before raising a loud
:class:`~repro.errors.ProofPoolError` — never a hang.  ``procs=0`` runs
the very same job functions inline, which is the serial reference the
determinism tests pin pooled runs against.
"""

from repro.errors import ProofPoolError
from repro.parallel.pool import PoolJob, ProverPool, VerifierPool

__all__ = ["PoolJob", "ProofPoolError", "ProverPool", "VerifierPool"]
