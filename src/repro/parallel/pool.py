"""Parent-side pools: job dispatch, crash recovery, and backend hooks.

Both pools share one execution core (:class:`_ProcessPool`): jobs are
codec-encoded bytes submitted to a ``ProcessPoolExecutor`` (fork start
method where the platform has it), collected in submission order.  A
crashed worker process surfaces as ``BrokenProcessPool``; the pool
discards the dead executor, rebuilds it, and re-runs the job up to
``max_retries`` times before raising a loud
:class:`~repro.errors.ProofPoolError` — a killed worker can cost a
retry, never a hang.  ``procs=0`` runs the identical job functions
inline in the parent, which is the reference the determinism tests pin
``procs=1/2/4`` against.

Pools survive pickling (simulation checkpoints pickle the engine they
hang off): only the configuration travels; the live executor is
dropped and lazily rebuilt on first use after restore.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.crypto import curve, pairing
from repro.crypto.curve import CURVE_ORDER, G1Point
from repro.crypto.rng import entropy
from repro.crypto.tower import FQ2, FQ12
from repro.errors import InvalidPoint, ProofPoolError
from repro.obs import registry as _obs
from repro.obs.tracing import get_tracer, span_clock
from repro.parallel import jobs
from repro.store import codec

_POOL_JOBS = _obs.REGISTRY.counter(
    "pool_jobs_total", "Jobs dispatched, by pool kind", labelnames=("kind",)
)
_POOL_RETRIES = _obs.REGISTRY.counter(
    "pool_retries_total",
    "Jobs re-run after a worker process died, by pool kind",
    labelnames=("kind",),
)
_POOL_JOB_SECONDS = _obs.REGISTRY.histogram(
    "pool_job_seconds",
    "Submit-to-collect wall time per job, by pool kind",
    labelnames=("kind",),
)

_UNSET = object()

#: Exceptions that mean "the worker running this job died" — retryable.
_WORKER_FAILURES = (BrokenProcessPool, CancelledError, FutureTimeout)


class PoolJob:
    """A dispatched job: ``result()`` blocks, decodes, and memoizes.

    The async handoff currency: the session engine holds these while
    block mining proceeds, collecting them at the deterministic drain
    point.  Collection retries transparently through the owning pool.
    """

    __slots__ = (
        "_pool", "_fn", "_payload", "_decoder", "_future", "_raw", "_value",
        "_submitted", "_trace_parent",
    )

    def __init__(
        self,
        pool: "_ProcessPool",
        fn: Callable[[bytes], bytes],
        payload: bytes,
        decoder: Optional[Callable[[bytes], Any]],
    ) -> None:
        self._pool = pool
        self._fn = fn
        self._payload = payload
        self._decoder = decoder
        self._future = None
        self._raw = _UNSET
        self._value = _UNSET
        #: Observability bookkeeping: span_clock() at submission and the
        #: span active then (the ``pool.job`` span's parent at collect).
        self._submitted = 0.0
        self._trace_parent = None

    def result(self) -> Any:
        if self._value is _UNSET:
            raw = self._pool._collect(self)
            self._value = self._decoder(raw) if self._decoder else raw
        return self._value

    # A job crossing a checkpoint is collected *now*: futures (and some
    # decoders) don't pickle, and the job's result is deterministic
    # regardless of when it is collected — forcing it here consumes no
    # entropy, so the checkpointed trajectory stays byte-identical.
    def __getstate__(self) -> Dict[str, Any]:
        return {"value": self.result()}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self._pool = None
        self._fn = None
        self._payload = b""
        self._decoder = None
        self._future = None
        self._raw = _UNSET
        self._value = state["value"]
        self._submitted = 0.0
        self._trace_parent = None


class _ProcessPool:
    """Executor lifecycle, retry policy, and codec-framed dispatch."""

    kind = "pool"

    def __init__(
        self,
        procs: int,
        *,
        start_method: Optional[str] = None,
        max_retries: int = 1,
        job_timeout: Optional[float] = None,
    ) -> None:
        if procs < 0:
            raise ValueError("pool size cannot be negative")
        self.procs = int(procs)
        self.start_method = start_method
        self.max_retries = int(max_retries)
        self.job_timeout = job_timeout
        self.retries = 0
        self.jobs_dispatched = 0
        self._executor: Optional[ProcessPoolExecutor] = None

    # -- executor lifecycle ---------------------------------------------------

    def _resolve_start_method(self) -> str:
        if self.start_method is not None:
            return self.start_method
        methods = multiprocessing.get_all_start_methods()
        return "fork" if "fork" in methods else methods[0]

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            context = multiprocessing.get_context(self._resolve_start_method())
            self._executor = ProcessPoolExecutor(
                max_workers=self.procs,
                mp_context=context,
                initializer=jobs.initialize_worker,
                initargs=(curve.fixed_base_cache_info()[1],),
            )
        return self._executor

    def _discard_executor(self) -> None:
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Shut the executor down; the pool can be reused (lazy rebuild)."""
        self._discard_executor()

    def __enter__(self) -> "_ProcessPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # Checkpoints pickle whatever object graph reaches a pool; only the
    # configuration travels — executors hold locks, pipes, and child
    # PIDs that mean nothing after restore.
    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state["_executor"] = None
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)

    # -- dispatch -------------------------------------------------------------

    def _submit(
        self,
        fn: Callable[[bytes], bytes],
        payload: bytes,
        decoder: Optional[Callable[[bytes], Any]] = None,
    ) -> PoolJob:
        tracer = get_tracer()
        if tracer.enabled and self.procs > 0 and fn is not jobs.job_traced:
            # Ship the job under the tracing envelope: the worker times
            # itself and its span rides home inside the framed result.
            # Wrapping happens *after* the caller encoded the payload
            # (and drew any per-job seed), so the parent entropy stream
            # is untouched by tracing.
            payload = codec.encode({"fn": fn.__name__, "inner": payload})
            fn = jobs.job_traced
        job = PoolJob(self, fn, payload, decoder)
        job._submitted = span_clock()
        job._trace_parent = tracer.current_span_id()
        self.jobs_dispatched += 1
        _POOL_JOBS.inc(kind=self.kind)
        if self.procs == 0:
            if tracer.enabled:
                with tracer.span(
                    "pool.job", fn=fn.__name__, kind=self.kind, inline=True
                ):
                    job._raw = fn(payload)
            else:
                job._raw = fn(payload)
            _POOL_JOB_SECONDS.observe(
                span_clock() - job._submitted, kind=self.kind
            )
            return job
        try:
            job._future = self._ensure_executor().submit(fn, payload)
        except BrokenProcessPool:
            # The pool died between jobs; this job never ran, so a fresh
            # executor does not consume the retry budget.
            self._discard_executor()
            job._future = self._ensure_executor().submit(fn, payload)
        return job

    def _collect(self, job: PoolJob) -> bytes:
        if job._raw is not _UNSET:
            return job._raw
        attempts = 0
        future = job._future
        while True:
            try:
                raw = future.result(timeout=self.job_timeout)
                job._raw = self._finish(job, raw)
                return job._raw
            except _WORKER_FAILURES as failure:
                self._discard_executor()
                if attempts >= self.max_retries:
                    raise ProofPoolError(
                        "%s pool job %s failed after %d attempt(s): worker "
                        "process died (%s)"
                        % (
                            self.kind,
                            job._fn.__name__,
                            attempts + 1,
                            type(failure).__name__,
                        )
                    ) from failure
                attempts += 1
                self.retries += 1
                _POOL_RETRIES.inc(kind=self.kind)
                future = self._ensure_executor().submit(job._fn, job._payload)

    def _finish(self, job: PoolJob, raw: bytes) -> bytes:
        """Collection-time bookkeeping; unwraps the tracing envelope.

        Unwrapping keys off how the job was *dispatched* (``job_traced``),
        not the tracer's current state, so a job collected after its
        tracer was uninstalled still hands its decoder the inner bytes.
        """
        collected = span_clock()
        _POOL_JOB_SECONDS.observe(collected - job._submitted, kind=self.kind)
        if job._fn is not jobs.job_traced:
            return raw
        envelope = codec.decode(raw)
        shipped = envelope["span"]
        tracer = get_tracer()
        if tracer.enabled:
            # The submit→collect span in the parent's clock domain, then
            # the worker's own measurement re-parented beneath it.  The
            # worker's timestamps are its process-local monotonic clock —
            # not comparable to the parent's — hence the domain marker.
            parent = tracer.emit(
                "pool.job",
                job._submitted,
                collected,
                parent=job._trace_parent,
                attrs={"fn": shipped["fn"], "kind": self.kind},
            )
            tracer.emit(
                "pool.job.worker",
                shipped["start"],
                shipped["end"],
                parent=parent,
                attrs={"fn": shipped["fn"], "pid": shipped["pid"]},
                clock="worker",
            )
        return envelope["raw"]

    def run_jobs(
        self,
        fn: Callable[[bytes], bytes],
        payloads: Sequence[bytes],
        decoder: Optional[Callable[[bytes], Any]] = None,
    ) -> List[Any]:
        """Submit every payload, then collect in submission order."""
        dispatched = [self._submit(fn, payload, decoder) for payload in payloads]
        return [job.result() for job in dispatched]

    # -- introspection --------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "procs": self.procs,
            "start_method": self._resolve_start_method(),
            "max_retries": self.max_retries,
            "jobs_dispatched": self.jobs_dispatched,
            "retries": self.retries,
            "alive": self._executor is not None,
        }

    def worker_cache_info(self) -> List[Dict[str, Any]]:
        """Best-effort per-worker fixed-base cache stats, sorted by pid.

        One probe job per worker slot; a busy worker can answer twice
        while another answers never, so results are deduplicated by pid
        rather than guaranteed exhaustive.
        """
        if self.procs == 0:
            return []
        probe = codec.encode({})
        results = self.run_jobs(jobs.job_cache_info, [probe] * self.procs)
        by_pid = {}
        for raw in results:
            info = codec.decode(raw)
            by_pid[info["pid"]] = info
        return [by_pid[pid] for pid in sorted(by_pid)]


class ProverPool(_ProcessPool):
    """Worker-side proving jobs under deterministically derived seeds.

    Every submission draws a fixed-size per-job seed from the parent
    entropy stream *at submission time* — so the parent stream position,
    and therefore every byte of a seeded simulation, is identical
    whether jobs then run inline (``procs=0``) or on 1/2/4/N processes.
    """

    kind = "prover"

    def submit_encrypt_vector(self, public_key, messages) -> PoolJob:
        payload = codec.encode(
            {
                "key": public_key.h,
                "messages": [int(message) for message in messages],
                "seed": entropy.derive_job_seed(b"encrypt-vector"),
            }
        )
        return self._submit(jobs.job_encrypt_vector, payload, codec.decode)

    def encrypt_vector(self, public_key, messages) -> List[Any]:
        return self.submit_encrypt_vector(public_key, messages).result()

    def submit_prove_decryption(
        self, secret_key, ciphertext, message_range
    ) -> PoolJob:
        payload = codec.encode(
            {
                "secret": secret_key.k,
                "ciphertext": ciphertext,
                "message_range": [int(value) for value in message_range],
                "seed": entropy.derive_job_seed(b"prove-vpke"),
            }
        )
        return self._submit(
            jobs.job_prove_decryption,
            payload,
            lambda raw: _pair_from(codec.decode(raw), "claim", "proof"),
        )

    def prove_decryption(self, secret_key, ciphertext, message_range):
        return self.submit_prove_decryption(
            secret_key, ciphertext, message_range
        ).result()

    def submit_prove_quality(
        self, secret_key, ciphertexts, gold_indexes, gold_answers, answer_range
    ) -> PoolJob:
        payload = codec.encode(
            {
                "secret": secret_key.k,
                "ciphertexts": list(ciphertexts),
                "gold_indexes": [int(index) for index in gold_indexes],
                "gold_answers": [int(answer) for answer in gold_answers],
                "answer_range": [int(value) for value in answer_range],
                "seed": entropy.derive_job_seed(b"prove-quality"),
            }
        )
        return self._submit(
            jobs.job_prove_quality,
            payload,
            lambda raw: _pair_from(codec.decode(raw), "quality", "proof"),
        )

    def prove_quality(
        self, secret_key, ciphertexts, gold_indexes, gold_answers, answer_range
    ):
        return self.submit_prove_quality(
            secret_key, ciphertexts, gold_indexes, gold_answers, answer_range
        ).result()


def _pair_from(data: Dict[str, Any], first: str, second: str) -> Tuple[Any, Any]:
    return data[first], data[second]


class VerifierPool(_ProcessPool):
    """Chunked MSM and Miller-loop products behind the crypto hooks.

    :meth:`install` routes :func:`repro.crypto.curve.msm` and
    :func:`repro.crypto.pairing.multi_pairing` through this pool, which
    parallelizes every batch verifier in the tree (VPKE, Schnorr, sigma,
    Groth16, PoQoEA) without touching their code.  Verification weights
    are drawn by the callers *in the parent*, and chunking changes only
    how the identical sum/product is evaluated — results are exact, not
    just equivalent.
    """

    kind = "verifier"

    def __init__(
        self,
        procs: int,
        *,
        min_msm_terms: int = 16,
        min_miller_pairs: int = 2,
        **kwargs: Any,
    ) -> None:
        super().__init__(procs, **kwargs)
        self.min_msm_terms = int(min_msm_terms)
        self.min_miller_pairs = int(min_miller_pairs)

    # -- backend hooks --------------------------------------------------------

    def install(self) -> None:
        """Become the process-wide MSM + Miller backend (one pool at a time)."""
        curve.set_msm_backend(self._msm_hook)
        pairing.set_miller_backend(self._miller_hook)

    def uninstall(self) -> None:
        curve.set_msm_backend(None)
        pairing.set_miller_backend(None)

    @contextmanager
    def installed(self) -> Iterator["VerifierPool"]:
        self.install()
        try:
            yield self
        finally:
            self.uninstall()

    def _msm_hook(self, points, reduced) -> Optional[G1Point]:
        if len(points) < self.min_msm_terms:
            return None
        return self.msm(points, reduced)

    def _miller_hook(self, pairs) -> Optional[FQ12]:
        if len(pairs) < self.min_miller_pairs:
            return None
        return self.miller_product(pairs)

    # -- chunked evaluation ---------------------------------------------------

    def msm(self, points, scalars) -> G1Point:
        """``sum_i scalars[i] * points[i]`` over chunked scalar windows.

        Each chunk covers a contiguous bit range of every scalar; the
        child shifts its partial back into place (doublings), so the
        parent combines with plain point additions.
        """
        if len(points) != len(scalars):
            raise ValueError("msm needs one scalar per point")
        reduced = [scalar % CURVE_ORDER for scalar in scalars]
        max_bits = max((scalar.bit_length() for scalar in reduced), default=0)
        if max_bits == 0:
            return G1Point.infinity()
        shipped = list(points)
        payloads = [
            codec.encode(
                {"points": shipped, "scalars": reduced, "lo": lo, "hi": hi}
            )
            for lo, hi in _bit_ranges(max_bits, max(1, self.procs))
        ]
        partials = self.run_jobs(jobs.job_msm_chunk, payloads, codec.decode)
        total = G1Point.infinity()
        for partial in partials:
            total = total + partial
        return total

    def miller_product(self, pairs) -> FQ12:
        """The raw Miller product over ``pairs``, chunked across workers.

        Children each multiply the raw Miller loops of a contiguous pair
        slice; the parent multiplies the partial products.  The final
        exponentiation stays with the caller (``multi_pairing``), so the
        whole batch still pays for exactly one.
        """
        shipped = []
        for g1_point, g2_point in pairs:
            if g2_point is None:
                shipped.append((g1_point, None))
            else:
                x, y = g2_point
                if not isinstance(x, FQ2) or not isinstance(y, FQ2):
                    raise InvalidPoint("G2 argument must be over Fp2")
                shipped.append((g1_point, (tuple(x.coeffs), tuple(y.coeffs))))
        chunk_count = max(1, min(self.procs, len(shipped)) or 1)
        payloads = [
            codec.encode(chunk) for chunk in _split_even(shipped, chunk_count)
        ]
        partials = self.run_jobs(jobs.job_miller_chunk, payloads)
        product = FQ12.one()
        for raw in partials:
            product = product * FQ12(list(codec.decode(raw)))
        return product


def _bit_ranges(max_bits: int, chunks: int) -> List[Tuple[int, int]]:
    """Split ``[0, max_bits)`` into up to ``chunks`` contiguous ranges."""
    chunks = max(1, min(chunks, max_bits))
    step = (max_bits + chunks - 1) // chunks
    return [(lo, min(lo + step, max_bits)) for lo in range(0, max_bits, step)]


def _split_even(items: List[Any], chunks: int) -> List[List[Any]]:
    """Split a list into ``chunks`` contiguous, near-even slices."""
    base, extra = divmod(len(items), chunks)
    slices = []
    start = 0
    for index in range(chunks):
        size = base + (1 if index < extra else 0)
        if size:
            slices.append(items[start : start + size])
        start += size
    return slices
