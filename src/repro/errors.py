"""Exception hierarchy for the Dragoon reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  Sub-hierarchies
mirror the package layout: crypto, ledger, chain, protocol, baseline.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# Crypto layer
# ---------------------------------------------------------------------------


class CryptoError(ReproError):
    """Base class for failures in the cryptographic substrate."""


class InvalidPoint(CryptoError):
    """A point is not on the expected curve or not in the expected subgroup."""


class InvalidScalar(CryptoError):
    """A scalar is outside the valid range for the group order."""


class NonResidueError(CryptoError):
    """A field element has no square root (not a quadratic residue).

    Raised by :func:`repro.crypto.field.sqrt_mod`; the *expected* failure
    mode of try-and-increment hashing (``G1Point.hash_to_group``), which
    catches exactly this class — any other exception out of the lifting
    path is a genuine bug and must propagate."""


class DecryptionError(CryptoError):
    """A ciphertext could not be decrypted to a plaintext in range."""


class ProofError(CryptoError):
    """A proof could not be generated for the claimed statement."""


class VerificationError(CryptoError):
    """A proof failed verification (raised only by strict APIs)."""


class CommitmentError(CryptoError):
    """A commitment could not be opened with the provided key."""


# ---------------------------------------------------------------------------
# Ledger layer
# ---------------------------------------------------------------------------


class LedgerError(ReproError):
    """Base class for ledger failures."""


class UnknownAccount(LedgerError):
    """The referenced account has never been registered on the ledger."""


class InsufficientFunds(LedgerError):
    """A freeze or transfer exceeds the available balance."""


class EscrowError(LedgerError):
    """A contract tried to pay out more than it holds in escrow."""


# ---------------------------------------------------------------------------
# Chain layer
# ---------------------------------------------------------------------------


class ChainError(ReproError):
    """Base class for blockchain-simulation failures."""


class OutOfGas(ChainError):
    """A transaction exceeded its gas limit."""


class InvalidTransaction(ChainError):
    """A transaction is malformed or violates chain rules."""


class ContractError(ChainError):
    """A contract call reverted."""


class PhaseError(ContractError):
    """A contract message arrived in the wrong protocol phase."""


# ---------------------------------------------------------------------------
# Protocol layer
# ---------------------------------------------------------------------------


class ProtocolError(ReproError):
    """Base class for HIT-protocol failures."""


class TaskSpecError(ProtocolError):
    """A HIT task specification is internally inconsistent."""


class AnswerError(ProtocolError):
    """A worker answer is malformed for the task it targets."""


# ---------------------------------------------------------------------------
# Parallel proving / verification pools
# ---------------------------------------------------------------------------


class ProofPoolError(ReproError):
    """A proving/verification pool job failed permanently.

    Raised after a crashed worker process (e.g. OOM-killed or SIGKILLed
    mid-job) has exhausted its retry budget.  The pool rebuilds its
    executor and retries before raising, so seeing this means the job
    itself keeps killing workers — it never presents as a hang."""


# ---------------------------------------------------------------------------
# Reporting pipeline
# ---------------------------------------------------------------------------


class ReportError(ReproError):
    """A failure in the telemetry analytics pipeline (:mod:`repro.reporting`).

    Raised for unusable inputs the pipeline must not silently paper
    over: a trace record with an unknown schema version, a metrics
    snapshot that does not round-trip canonically, a sweep spec whose
    axes name no known scenario knob, or report artifacts that disagree
    with their manifest."""


# ---------------------------------------------------------------------------
# RPC boundary
# ---------------------------------------------------------------------------


class RpcError(ReproError):
    """A failure at the JSON-RPC boundary (see :mod:`repro.rpc`).

    Raised client-side for transport problems and for server errors that
    do not map back onto a concrete library exception; ``code`` carries
    the JSON-RPC error code, ``data`` the server's structured detail.
    """

    def __init__(self, message: str, code: int = 0, data: object = None) -> None:
        super().__init__(message)
        self.code = code
        self.data = data


# ---------------------------------------------------------------------------
# Baseline (generic zk-proof) layer
# ---------------------------------------------------------------------------


class BaselineError(ReproError):
    """Base class for generic-ZKP baseline failures."""


class ConstraintError(BaselineError):
    """An R1CS constraint system is unsatisfied or malformed."""


class SetupError(BaselineError):
    """A SNARK trusted setup is inconsistent with the circuit."""
