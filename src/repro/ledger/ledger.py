"""The cryptocurrency ledger functionality L (paper §III).

The paper models the blockchain's coin layer as an ideal functionality
with two oracle queries available to contracts:

* ``FreezeCoins`` — move ``b`` coins from a party's balance into a
  contract's escrow (fails with ``nofund`` if the balance is short).
* ``PayCoins`` — move ``b`` coins from a contract's escrow to a party.

We additionally track plain transfers (used to charge gas fees) and keep
an append-only entry log so tests can assert exact payment traces and the
conservation invariant (total supply never changes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import EscrowError, InsufficientFunds, UnknownAccount
from repro.ledger.accounts import Address


@dataclass(frozen=True)
class LedgerEntry:
    """One append-only log record of a balance movement."""

    kind: str  # "mint" | "transfer" | "freeze" | "pay" | "fee"
    source: Optional[Address]
    destination: Optional[Address]
    amount: int
    memo: str = ""


class Ledger:
    """Balances, per-contract escrow, and an append-only movement log."""

    def __init__(self) -> None:
        self._balances: Dict[Address, int] = {}
        self._escrow: Dict[Address, int] = {}
        self._entries: List[LedgerEntry] = []
        self._fees_collected = 0

    # -- account management ---------------------------------------------------

    def open_account(self, address: Address, initial_balance: int = 0) -> None:
        """Create an account, minting ``initial_balance`` coins into it."""
        if address in self._balances:
            raise UnknownAccount("account already open: %s" % address)
        if initial_balance < 0:
            raise InsufficientFunds("cannot mint a negative balance")
        self._balances[address] = initial_balance
        if initial_balance:
            self._entries.append(
                LedgerEntry("mint", None, address, initial_balance)
            )

    def has_account(self, address: Address) -> bool:
        return address in self._balances

    def balance_of(self, address: Address) -> int:
        try:
            return self._balances[address]
        except KeyError:
            raise UnknownAccount("no such account: %s" % address) from None

    def escrow_of(self, contract: Address) -> int:
        return self._escrow.get(contract, 0)

    # -- the two oracle queries of L -------------------------------------------

    def freeze(self, contract: Address, party: Address, amount: int, memo: str = "") -> bool:
        """``FreezeCoins``: escrow ``amount`` from ``party`` under ``contract``.

        Returns True on success (the paper's ``frozen`` reply), False when
        the balance is insufficient (the ``nofund`` reply).
        """
        if amount < 0:
            raise InsufficientFunds("cannot freeze a negative amount")
        balance = self.balance_of(party)
        if balance < amount:
            return False
        self._balances[party] = balance - amount
        self._escrow[contract] = self._escrow.get(contract, 0) + amount
        self._entries.append(LedgerEntry("freeze", party, contract, amount, memo))
        return True

    def pay(self, contract: Address, party: Address, amount: int, memo: str = "") -> None:
        """``PayCoins``: release ``amount`` of ``contract``'s escrow to ``party``."""
        if amount < 0:
            raise EscrowError("cannot pay a negative amount")
        held = self._escrow.get(contract, 0)
        if held < amount:
            raise EscrowError(
                "contract %s holds %d, cannot pay %d" % (contract, held, amount)
            )
        if party not in self._balances:
            raise UnknownAccount("no such account: %s" % party)
        self._escrow[contract] = held - amount
        self._balances[party] += amount
        self._entries.append(LedgerEntry("pay", contract, party, amount, memo))

    def mint(self, address: Address, amount: int, memo: str = "") -> None:
        """Mint ``amount`` fresh coins into an existing account.

        ``open_account`` mints only at creation; a *persistent* node
        (see :mod:`repro.store`) carries balances across runs, so a
        long-lived requester needs a deposit path to fund new tasks
        after earlier budgets were spent.  Logged like the opening mint.
        """
        if address not in self._balances:
            raise UnknownAccount("no such account: %s" % address)
        if amount < 0:
            raise InsufficientFunds("cannot mint a negative amount")
        if amount:
            self._balances[address] += amount
            self._entries.append(LedgerEntry("mint", None, address, amount, memo))

    # -- plain transfers and fees ------------------------------------------------

    def transfer(self, source: Address, destination: Address, amount: int, memo: str = "") -> None:
        """Move coins directly between two accounts."""
        if amount < 0:
            raise InsufficientFunds("cannot transfer a negative amount")
        balance = self.balance_of(source)
        if balance < amount:
            raise InsufficientFunds(
                "%s holds %d, cannot send %d" % (source, balance, amount)
            )
        if destination not in self._balances:
            raise UnknownAccount("no such account: %s" % destination)
        self._balances[source] = balance - amount
        self._balances[destination] += amount
        self._entries.append(LedgerEntry("transfer", source, destination, amount, memo))

    def charge_fee(self, party: Address, amount: int, memo: str = "") -> None:
        """Burn a gas fee from ``party`` (tracked for cost accounting)."""
        balance = self.balance_of(party)
        if balance < amount:
            raise InsufficientFunds(
                "%s holds %d, cannot pay fee %d" % (party, balance, amount)
            )
        self._balances[party] = balance - amount
        self._fees_collected += amount
        self._entries.append(LedgerEntry("fee", party, None, amount, memo))

    # -- snapshots (transaction rollback support) -----------------------------------

    def snapshot(self) -> Tuple[Dict[Address, int], Dict[Address, int], int, int]:
        """Capture balances/escrow/fees for rollback of a reverted call."""
        return (
            dict(self._balances),
            dict(self._escrow),
            self._fees_collected,
            len(self._entries),
        )

    def restore(
        self, state: Tuple[Dict[Address, int], Dict[Address, int], int, int]
    ) -> None:
        """Roll back to a snapshot taken with :meth:`snapshot`."""
        balances, escrow, fees, entry_count = state
        self._balances = dict(balances)
        self._escrow = dict(escrow)
        self._fees_collected = fees
        del self._entries[entry_count:]

    # -- inspection ---------------------------------------------------------------

    @property
    def entries(self) -> Tuple[LedgerEntry, ...]:
        return tuple(self._entries)

    @property
    def fees_collected(self) -> int:
        return self._fees_collected

    def total_supply(self) -> int:
        """Sum of all balances, escrow, and burned fees (conserved)."""
        return sum(self._balances.values()) + sum(self._escrow.values()) + self._fees_collected

    def payments_to(self, party: Address) -> List[LedgerEntry]:
        """All ``pay`` entries whose destination is ``party``."""
        return [
            entry
            for entry in self._entries
            if entry.kind == "pay" and entry.destination == party
        ]
