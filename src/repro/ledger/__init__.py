"""The cryptocurrency ledger functionality L and account identities."""

from repro.ledger.accounts import Address, Registry
from repro.ledger.ledger import Ledger, LedgerEntry

__all__ = ["Address", "Registry", "Ledger", "LedgerEntry"]
