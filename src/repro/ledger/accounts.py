"""Account identities for the ledger and chain layers.

Addresses are 20-byte identifiers derived keccak-style from a label, so
logs read like Ethereum addresses but tests stay deterministic.  The
registration authority (RA) the paper assumes implicitly (footnote 6) is
modelled by :class:`Registry`: every protocol identity must be granted
before it can act, which is what rules out Sybil floods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.crypto.keccak import keccak256
from repro.errors import LedgerError


@dataclass(frozen=True)
class Address:
    """A 20-byte account address with a human-readable label."""

    value: bytes
    label: str = ""

    def __post_init__(self) -> None:
        if len(self.value) != 20:
            raise LedgerError("addresses are 20 bytes")

    @classmethod
    def from_label(cls, label: str) -> "Address":
        return cls(keccak256(label.encode("utf-8"))[-20:], label)

    def hex(self) -> str:
        return "0x" + self.value.hex()

    def __str__(self) -> str:
        return self.label or self.hex()[:10]


class Registry:
    """The paper's implicit registration authority: grants identities.

    Real deployments inherit an RA (the platform or a certificate
    authority); here registration is explicit so tests can check that
    unregistered identities are rejected by the protocol layer.
    """

    def __init__(self) -> None:
        self._granted: Dict[bytes, Address] = {}

    def grant(self, label: str) -> Address:
        """Register (or return the existing) identity for ``label``."""
        address = Address.from_label(label)
        return self._granted.setdefault(address.value, address)

    def is_granted(self, address: Address) -> bool:
        return address.value in self._granted

    def lookup(self, label: str) -> Optional[Address]:
        return self._granted.get(Address.from_label(label).value)

    def __iter__(self) -> Iterator[Address]:
        return iter(self._granted.values())

    def __len__(self) -> int:
        return len(self._granted)
