"""The Dragoon system facade: many tasks, one chain, one requester key.

The paper's §VI notes that "Dragoon enables the requester to manage only
one private-public key pair throughout all her tasks, because all
protocol scripts are simulatable without the secret key and therefore
leak nothing relevant".  :class:`Dragoon` packages that deployment
story: one chain + Swarm instance, per-requester long-lived keys, and a
task registry, so a downstream user can run many HITs the way the
deployed system at the paper's ropsten address did.

Batch API and throughput
------------------------

Two execution paths are offered:

* :meth:`Dragoon.run_task` — one task, one block per protocol phase
  (five blocks per task), sequential ``evaluate`` transactions, one
  VPKE verification per mismatch proof.  This is the paper's literal
  deployment story.
* :meth:`Dragoon.run_hits_batch` — N tasks interleaved on the shared
  chain.  All deployments seal into a *single* block
  (:meth:`repro.chain.chain.Chain.deploy_many`), all commits share the
  next block, then reveals, then evaluations, then finalizations: five
  blocks total for the whole batch instead of five per task.  Each
  requester's quality rejections ride one ``evaluate_batch``
  transaction whose VPKE proofs the contract verifies in a single
  random-linear-combination check
  (:func:`repro.crypto.vpke.verify_decryption_batch`).

Precomputation knobs
--------------------

The scalar-multiplication hot path caches 4-bit window tables per base
point (generator, requester public keys).  Deployments hosting many
requesters can size the cache with
:func:`repro.crypto.curve.configure_fixed_base_cache` and warm tables
ahead of a burst with :func:`repro.crypto.curve.precompute_base`;
:func:`repro.crypto.curve.fixed_base_cache_info` reports occupancy.

``benchmarks/bench_batch_verification.py`` records the batched-versus-
sequential speedup (see its module docstring for how to reproduce the
table).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chain.chain import Chain
from repro.chain.network import Scheduler
from repro.core.hit_contract import HITContract
from repro.core.protocol import GasReport, ProtocolOutcome
from repro.core.requester import RequesterClient
from repro.core.task import HITTask
from repro.core.worker import WorkerClient
from repro.errors import ProtocolError
from repro.ledger.accounts import Address
from repro.storage.swarm import SwarmStore


@dataclass
class TaskHandle:
    """One published task: its contract name, requester, and workers."""

    contract_name: str
    requester: RequesterClient
    workers: List[WorkerClient] = field(default_factory=list)
    finished: bool = False


class Dragoon:
    """A long-lived Dragoon deployment hosting many tasks.

    Requester identities keep their ElGamal key pair across tasks; the
    chain, ledger, and Swarm store are shared.  Each task runs the same
    five-block life cycle as :func:`repro.core.protocol.run_hit`, but
    tasks may be interleaved on the same chain.
    """

    def __init__(self, scheduler: Optional[Scheduler] = None) -> None:
        self.chain = Chain(scheduler=scheduler)
        self.swarm = SwarmStore()
        self._requester_keys: Dict[str, int] = {}
        self._task_counter = itertools.count()
        self.tasks: Dict[str, TaskHandle] = {}

    # ------------------------------------------------------------------
    # Identities
    # ------------------------------------------------------------------

    def fund(self, label: str, coins: int) -> Address:
        """Open (or top up awareness of) an account with ``coins``."""
        return self.chain.register_account(label, coins)

    def _requester_secret(self, label: str) -> int:
        """The requester's long-lived key (created on first use)."""
        from repro.crypto.curve import random_scalar

        if label not in self._requester_keys:
            self._requester_keys[label] = random_scalar()
        return self._requester_keys[label]

    # ------------------------------------------------------------------
    # Task life cycle
    # ------------------------------------------------------------------

    def publish_task(self, requester_label: str, task: HITTask) -> TaskHandle:
        """Publish a task under the requester's long-lived key."""
        requester = RequesterClient(
            requester_label,
            task,
            self.chain,
            self.swarm,
            balance=None
            if not self.chain.ledger.has_account(
                Address.from_label(requester_label)
            )
            else self.chain.ledger.balance_of(Address.from_label(requester_label)),
            secret=self._requester_secret(requester_label),
        )
        name = "hit:%s:%d" % (requester_label, next(self._task_counter))
        receipt = requester.publish(contract_name=name)
        if not receipt.succeeded:
            raise ProtocolError("publish failed: %s" % receipt.revert_reason)
        handle = TaskHandle(contract_name=name, requester=requester)
        self.tasks[name] = handle
        return handle

    def submit_answers(
        self, handle: TaskHandle, worker_label: str, answers: Sequence[int]
    ) -> WorkerClient:
        """Register a worker on a task and queue their commit."""
        worker = WorkerClient(
            worker_label, self.chain, self.swarm, answers=list(answers)
        )
        worker.discover(handle.contract_name)
        worker.send_commit()
        handle.workers.append(worker)
        return worker

    def run_task(
        self,
        requester_label: str,
        task: HITTask,
        worker_answers: Sequence[Sequence[int]],
        worker_labels: Optional[Sequence[str]] = None,
    ) -> ProtocolOutcome:
        """Publish, collect, evaluate, and settle one task end to end."""
        handle = self.publish_task(requester_label, task)
        labels = list(
            worker_labels
            if worker_labels is not None
            else [
                "%s/worker-%d" % (handle.contract_name, i)
                for i in range(len(worker_answers))
            ]
        )
        for label, answers in zip(labels, worker_answers):
            self.submit_answers(handle, label, answers)
        self.chain.mine_block()  # commits

        for worker in handle.workers:
            worker.send_reveal()
        self.chain.mine_block()  # reveals

        actions = handle.requester.evaluate_all()
        self.chain.mine_block()  # golden + rejections

        handle.requester.send_finalize()
        self.chain.mine_block()
        handle.finished = True

        contract = self.chain.contract(handle.contract_name)
        assert isinstance(contract, HITContract)
        gas = self._gas_report_for(handle)
        return ProtocolOutcome(
            chain=self.chain,
            swarm=self.swarm,
            requester=handle.requester,
            workers=handle.workers,
            contract=contract,
            actions=actions,
            gas=gas,
        )

    def publish_tasks_batch(
        self, specs: Sequence[Tuple[str, HITTask]]
    ) -> List[TaskHandle]:
        """Publish many tasks in one block (see :meth:`Chain.deploy_many`).

        ``specs`` is a sequence of ``(requester_label, task)`` pairs;
        requesters may repeat (each keeps its single long-lived key).
        """
        clients: List[RequesterClient] = []
        deployments = []
        names: List[str] = []
        for requester_label, task in specs:
            requester = RequesterClient(
                requester_label,
                task,
                self.chain,
                self.swarm,
                balance=None
                if not self.chain.ledger.has_account(
                    Address.from_label(requester_label)
                )
                else self.chain.ledger.balance_of(
                    Address.from_label(requester_label)
                ),
                secret=self._requester_secret(requester_label),
            )
            name = "hit:%s:%d" % (requester_label, next(self._task_counter))
            contract, args, payload = requester.prepare_publish(contract_name=name)
            deployments.append((contract, requester.address, args, payload))
            clients.append(requester)
            names.append(name)

        receipts = self.chain.deploy_many(deployments)
        handles: List[TaskHandle] = []
        for requester, name, receipt in zip(clients, names, receipts):
            if not receipt.succeeded:
                raise ProtocolError("publish failed: %s" % receipt.revert_reason)
            requester.contract_name = name
            handle = TaskHandle(contract_name=name, requester=requester)
            self.tasks[name] = handle
            handles.append(handle)
        return handles

    def run_hits_batch(
        self,
        specs: Sequence[Tuple[str, HITTask, Sequence[Sequence[int]]]],
    ) -> List[ProtocolOutcome]:
        """Run N tasks through five *shared* blocks (batched throughput).

        ``specs`` holds ``(requester_label, task, worker_answers)``
        triples.  All tasks publish in one block, then all workers'
        commits share a block, then all reveals, then all evaluations
        (each task's quality rejections in one ``evaluate_batch``
        transaction), then all finalizations — so a batch of N tasks
        advances the chain by 5 blocks instead of ~5N and verifies all
        of a task's mismatch proofs in a single batched check.
        """
        if not specs:
            return []
        handles = self.publish_tasks_batch(
            [(label, task) for label, task, _ in specs]
        )

        for handle, (_, _, worker_answers) in zip(handles, specs):
            for index, answers in enumerate(worker_answers):
                label = "%s/worker-%d" % (handle.contract_name, index)
                self.submit_answers(handle, label, answers)
        self.chain.mine_block()  # all tasks' commits

        for handle in handles:
            for worker in handle.workers:
                worker.send_reveal()
        self.chain.mine_block()  # all tasks' reveals

        actions_by_handle = []
        for handle in handles:
            actions_by_handle.append(handle.requester.evaluate_all_batched())
        self.chain.mine_block()  # all goldens + batched rejections

        for handle in handles:
            handle.requester.send_finalize()
        self.chain.mine_block()  # all finalizations

        outcomes: List[ProtocolOutcome] = []
        for handle, actions in zip(handles, actions_by_handle):
            handle.finished = True
            contract = self.chain.contract(handle.contract_name)
            assert isinstance(contract, HITContract)
            outcomes.append(
                ProtocolOutcome(
                    chain=self.chain,
                    swarm=self.swarm,
                    requester=handle.requester,
                    workers=handle.workers,
                    contract=contract,
                    actions=actions,
                    gas=self._gas_report_for(handle),
                )
            )
        return outcomes

    def _gas_report_for(self, handle: TaskHandle) -> GasReport:
        """Reconstruct the per-operation gas ledger from receipts."""
        gas = GasReport()
        for block in self.chain.blocks:
            for receipt in block.receipts:
                if receipt.transaction.contract != handle.contract_name:
                    continue
                if not receipt.succeeded:
                    continue
                method = receipt.transaction.method
                sender = receipt.transaction.sender.label
                if method == "__deploy__":
                    gas.publish = receipt.gas_used
                elif method == "commit":
                    gas.commits[sender] = receipt.gas_used
                elif method == "reveal":
                    gas.reveals[sender] = receipt.gas_used
                elif method == "golden":
                    gas.golden += receipt.gas_used
                elif method in ("evaluate", "outrange"):
                    target = receipt.transaction.args[0]
                    gas.rejections[target.label or target.hex()] = receipt.gas_used
                elif method == "evaluate_batch":
                    # Equal amortized shares; the division remainder goes
                    # to the first worker so the report sums to the
                    # receipt's actual gas.
                    rejections = receipt.transaction.args[0]
                    share, remainder = divmod(
                        receipt.gas_used, max(1, len(rejections))
                    )
                    for position, (target, _, _, _) in enumerate(rejections):
                        gas.rejections[target.label or target.hex()] = (
                            share + (remainder if position == 0 else 0)
                        )
                elif method == "finalize":
                    gas.finalize = receipt.gas_used
        return gas

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def requester_public_key_bytes(self, label: str) -> bytes:
        """The stable public key a requester uses across all her tasks."""
        from repro.crypto.elgamal import keygen

        public_key, _ = keygen(self._requester_secret(label))
        return public_key.to_bytes()

    @property
    def total_gas(self) -> int:
        return self.chain.total_gas
