"""The Dragoon system facade: many tasks, one chain, one requester key.

The paper's §VI notes that "Dragoon enables the requester to manage only
one private-public key pair throughout all her tasks, because all
protocol scripts are simulatable without the secret key and therefore
leak nothing relevant".  :class:`Dragoon` packages that deployment
story: one chain + Swarm instance, per-requester long-lived keys, and a
task registry, so a downstream user can run many HITs the way the
deployed system at the paper's ropsten address did.

Execution paths and throughput
------------------------------

Three execution paths are offered:

* :meth:`Dragoon.run_task` — one task, one block per protocol phase
  (five blocks per task), sequential ``evaluate`` transactions, one
  VPKE verification per mismatch proof.  This is the paper's literal
  deployment story.
* :meth:`Dragoon.run_hits_batch` — N tasks interleaved on the shared
  chain.  All deployments seal into a *single* block
  (:meth:`repro.chain.chain.Chain.deploy_many`), all commits share the
  next block, then reveals, then evaluations, then finalizations: five
  blocks total for the whole batch instead of five per task.  Each
  requester's quality rejections ride one ``evaluate_batch``
  transaction whose VPKE proofs the contract verifies in a single
  random-linear-combination check
  (:func:`repro.crypto.vpke.verify_decryption_batch`).
* :meth:`Dragoon.serve` — the general service loop over the session
  engine (:class:`repro.core.session.SessionEngine`): tasks arrive at
  arbitrary block offsets mid-stream, each runs its own event-driven
  phase state machine, and same-phase sessions share blocks (and the
  batched verification paths) automatically.  ``run_hits_batch`` is the
  special case where every task arrives at once.

Precomputation knobs
--------------------

The scalar-multiplication hot path caches 4-bit window tables per base
point (generator, requester public keys).  Deployments hosting many
requesters can size the cache with
:func:`repro.crypto.curve.configure_fixed_base_cache` and warm tables
ahead of a burst with :func:`repro.crypto.curve.precompute_base`;
:func:`repro.crypto.curve.fixed_base_cache_info` reports occupancy.

``benchmarks/bench_batch_verification.py`` records the batched-versus-
sequential speedup (see its module docstring for how to reproduce the
table).
"""

from __future__ import annotations

from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.chain.chain import Chain
from repro.chain.network import Scheduler
from repro.core.hit_contract import HITContract
from repro.core.protocol import (
    GasReport,
    ProtocolOutcome,
    gas_report_from_receipts,
)
from repro.core.requester import RequesterClient
from repro.core.session import (
    HITSession,
    SessionConfig,
    SessionEngine,
    WorkerPolicy,
)
from repro.core.task import HITTask
from repro.core.worker import WorkerClient
from repro.errors import ProtocolError
from repro.ledger.accounts import Address
from repro.storage.swarm import SwarmStore


@dataclass
class TaskArrival:
    """One task joining a :meth:`Dragoon.serve` run mid-stream.

    ``at_block`` counts engine steps from the start of the serve loop
    (0 = published before the first block of the run).  ``worker_policies``
    maps worker *indexes* to :class:`~repro.core.session.WorkerPolicy`
    adversaries — stragglers and dropouts; unmapped workers are honest.
    """

    at_block: int
    requester_label: str
    task: HITTask
    worker_answers: Sequence[Sequence[int]]
    worker_labels: Optional[Sequence[str]] = None
    worker_policies: Optional[Dict[int, WorkerPolicy]] = None
    evaluation: str = "batched"
    cancel_after: Optional[int] = None


@dataclass
class TaskHandle:
    """One published task: its contract name, requester, and workers."""

    contract_name: str
    requester: RequesterClient
    workers: List[WorkerClient] = field(default_factory=list)
    finished: bool = False


class Dragoon:
    """A long-lived Dragoon deployment hosting many tasks.

    Requester identities keep their ElGamal key pair across tasks; the
    chain, ledger, and Swarm store are shared.  Each task runs the same
    five-block life cycle as :func:`repro.core.protocol.run_hit`, but
    tasks may be interleaved on the same chain.
    """

    def __init__(
        self,
        scheduler: Optional[Scheduler] = None,
        chain: Optional[Chain] = None,
        swarm: Optional[SwarmStore] = None,
        prover_pool=None,
    ) -> None:
        if chain is not None and scheduler is not None:
            raise ProtocolError("pass a scheduler or a restored chain, not both")
        self.chain = chain if chain is not None else Chain(scheduler=scheduler)
        self.swarm = swarm if swarm is not None else SwarmStore()
        #: Optional :class:`repro.parallel.ProverPool`; when set, every
        #: session the engine registers pipelines proof generation
        #: (answer encryption, VPKE/PoQoEA proving) against block mining.
        self.prover_pool = prover_pool
        self.engine = SessionEngine(
            chain=self.chain, swarm=self.swarm, prover_pool=prover_pool
        )
        self._requester_keys: Dict[str, int] = {}
        self._task_serial = 0
        self.tasks: Dict[str, TaskHandle] = {}

    # ------------------------------------------------------------------
    # Persistence (see repro.store.nodestore)
    # ------------------------------------------------------------------

    def _next_task_serial(self) -> int:
        value = self._task_serial
        self._task_serial += 1
        return value

    def node_state(self) -> Dict[str, object]:
        """The facade-level durable state: long-lived requester keys and
        the task-name serial (contract names must keep advancing across
        process restarts — the chain rejects duplicate names)."""
        return {
            "requester_keys": dict(self._requester_keys),
            "task_serial": self._task_serial,
        }

    def restore_node_state(self, state: Dict[str, object]) -> None:
        self._requester_keys = dict(state.get("requester_keys", {}))
        self._task_serial = int(state.get("task_serial", 0))

    def attach_store(self, store) -> None:
        """Journal this deployment to ``store`` — chain *and* facade.

        Beyond :meth:`Chain.attach_store`, this wires
        :meth:`node_state` as the store's extra provider, so requester
        keys and the task serial ride every WAL record and snapshot: a
        crash at any block recovers the facade, not just the chain.
        """
        store.extra_provider = self.node_state
        self.chain.attach_store(store)

    # ------------------------------------------------------------------
    # Identities
    # ------------------------------------------------------------------

    def fund(self, label: str, coins: int) -> Address:
        """Open (or top up awareness of) an account with ``coins``."""
        return self.chain.register_account(label, coins)

    def ensure_funds(self, label: str, coins: int) -> Address:
        """Top ``label`` up to at least ``coins`` (minting the difference).

        The cross-invocation path of a persistent node: a requester who
        spent her budget in an earlier run needs a deposit before she
        can publish again, where a fresh in-memory run would have opened
        her account pre-funded.
        """
        address = self.chain.register_account(label, coins)
        balance = self.chain.ledger.balance_of(address)
        if balance < coins:
            self.chain.ledger.mint(address, coins - balance, memo="top-up")
        return address

    def _requester_secret(self, label: str) -> int:
        """The requester's long-lived key (created on first use)."""
        from repro.crypto.curve import random_scalar

        if label not in self._requester_keys:
            self._requester_keys[label] = random_scalar()
        return self._requester_keys[label]

    # ------------------------------------------------------------------
    # Task life cycle
    # ------------------------------------------------------------------

    def publish_task(self, requester_label: str, task: HITTask) -> TaskHandle:
        """Publish a task under the requester's long-lived key."""
        requester = RequesterClient(
            requester_label,
            task,
            self.chain,
            self.swarm,
            balance=None
            if not self.chain.ledger.has_account(
                Address.from_label(requester_label)
            )
            else self.chain.ledger.balance_of(Address.from_label(requester_label)),
            secret=self._requester_secret(requester_label),
        )
        name = "hit:%s:%d" % (requester_label, self._next_task_serial())
        receipt = requester.publish(contract_name=name)
        if not receipt.succeeded:
            raise ProtocolError("publish failed: %s" % receipt.revert_reason)
        handle = TaskHandle(contract_name=name, requester=requester)
        self.tasks[name] = handle
        return handle

    def submit_answers(
        self, handle: TaskHandle, worker_label: str, answers: Sequence[int]
    ) -> WorkerClient:
        """Register a worker on a task and queue their commit."""
        worker = WorkerClient(
            worker_label, self.chain, self.swarm, answers=list(answers)
        )
        worker.discover(handle.contract_name)
        worker.send_commit()
        handle.workers.append(worker)
        return worker

    def run_task(
        self,
        requester_label: str,
        task: HITTask,
        worker_answers: Sequence[Sequence[int]],
        worker_labels: Optional[Sequence[str]] = None,
    ) -> ProtocolOutcome:
        """Publish, collect, evaluate, and settle one task end to end."""
        handle = self.publish_task(requester_label, task)
        labels = list(
            worker_labels
            if worker_labels is not None
            else [
                "%s/worker-%d" % (handle.contract_name, i)
                for i in range(len(worker_answers))
            ]
        )
        for label, answers in zip(labels, worker_answers):
            self.submit_answers(handle, label, answers)
        self.chain.mine_block()  # commits

        for worker in handle.workers:
            worker.send_reveal()
        self.chain.mine_block()  # reveals

        actions = handle.requester.evaluate_all()
        self.chain.mine_block()  # golden + rejections

        handle.requester.send_finalize()
        self.chain.mine_block()
        handle.finished = True

        contract = self.chain.contract(handle.contract_name)
        assert isinstance(contract, HITContract)
        gas = self._gas_report_for(handle)
        return ProtocolOutcome(
            chain=self.chain,
            swarm=self.swarm,
            requester=handle.requester,
            workers=handle.workers,
            contract=contract,
            actions=actions,
            gas=gas,
        )

    def publish_tasks_batch(
        self, specs: Sequence[Tuple[str, HITTask]]
    ) -> List[TaskHandle]:
        """Publish many tasks in one block (see :meth:`Chain.deploy_many`).

        ``specs`` is a sequence of ``(requester_label, task)`` pairs;
        requesters may repeat (each keeps its single long-lived key).
        """
        clients: List[RequesterClient] = []
        deployments = []
        names: List[str] = []
        for requester_label, task in specs:
            requester = RequesterClient(
                requester_label,
                task,
                self.chain,
                self.swarm,
                balance=None
                if not self.chain.ledger.has_account(
                    Address.from_label(requester_label)
                )
                else self.chain.ledger.balance_of(
                    Address.from_label(requester_label)
                ),
                secret=self._requester_secret(requester_label),
            )
            name = "hit:%s:%d" % (requester_label, self._next_task_serial())
            contract, args, payload = requester.prepare_publish(contract_name=name)
            deployments.append((contract, requester.address, args, payload))
            clients.append(requester)
            names.append(name)

        receipts = self.chain.deploy_many(deployments)
        handles: List[TaskHandle] = []
        for requester, name, receipt in zip(clients, names, receipts):
            if not receipt.succeeded:
                raise ProtocolError("publish failed: %s" % receipt.revert_reason)
            requester.contract_name = name
            handle = TaskHandle(contract_name=name, requester=requester)
            self.tasks[name] = handle
            handles.append(handle)
        return handles

    def run_hits_batch(
        self,
        specs: Sequence[Tuple[str, HITTask, Sequence[Sequence[int]]]],
    ) -> List[ProtocolOutcome]:
        """Run N tasks through five *shared* blocks (batched throughput).

        ``specs`` holds ``(requester_label, task, worker_answers)``
        triples.  A thin wrapper over :meth:`serve` with every task
        arriving at block 0: all tasks publish in one block, then all
        workers' commits share a block, then all reveals, then all
        evaluations (each task's quality rejections in one
        ``evaluate_batch`` transaction), then all finalizations — so a
        batch of N tasks advances the chain by 5 blocks instead of ~5N
        and verifies all of a task's mismatch proofs in a single
        batched check.
        """
        if not specs:
            return []
        return self.serve(
            [
                TaskArrival(0, label, task, worker_answers)
                for label, task, worker_answers in specs
            ]
        )

    def serve(
        self,
        arrivals: Iterable[TaskArrival],
        max_blocks: Optional[int] = None,
    ) -> List[ProtocolOutcome]:
        """The service loop: accept task arrivals mid-stream, settle all.

        ``arrivals`` may be any iterable — a materialized sequence or an
        *open-ended generator* (e.g. a Poisson process from
        :mod:`repro.sim.arrivals`).  Nothing is precomputed: arrivals
        are pulled lazily as their block comes up, so neither the
        stream's length nor its horizon needs to be known.  A sequence
        may list arrivals in any order (outcomes come back in the
        sequence's order); a lazy iterator must yield them in
        non-decreasing ``at_block`` order (outcomes in arrival order).

        Each engine step mines one block; arrivals due at that step are
        published first (same-step arrivals share one deployment block
        via :meth:`Chain.deploy_many`), their sessions registered, and
        their workers enrolled, so a task entering at block 7 commits
        while earlier tasks are revealing or evaluating.  The loop ends
        at *quiescence*: stream exhausted, every session terminal, and
        the mempool drained.

        With ``max_blocks=None`` the stall bound adapts to the load: it
        scales with the number of in-flight sessions and defers to any
        self-scheduled future work (policy-delayed steps, pending
        ``cancel_after`` timeouts, a far-off next arrival).  A stalled
        loop raises :class:`ProtocolError` naming the stuck sessions
        and their phases.
        """
        stream: Iterator[Tuple[int, TaskArrival]]
        if isinstance(arrivals, SequenceABC):
            for arrival in arrivals:
                if arrival.at_block < 0:
                    raise ProtocolError(
                        "arrivals cannot predate the serve loop"
                    )
            stream = iter(
                sorted(enumerate(arrivals), key=lambda pair: pair[1].at_block)
            )
        else:
            stream = iter(enumerate(arrivals))

        sessions: Dict[int, HITSession] = {}  # arrival index -> session
        pending = next(stream, None)
        if pending is None:
            return []
        period0 = self.chain.clock.period  # period == period0 + step below
        step = 0
        last_progress = 0
        progress_mark = (0, 0)
        while True:
            due: List[Tuple[int, TaskArrival]] = []
            while pending is not None and pending[1].at_block <= step:
                if pending[1].at_block < 0:
                    raise ProtocolError(
                        "arrivals cannot predate the serve loop"
                    )
                if pending[1].at_block < step:
                    raise ProtocolError(
                        "arrival stream must be ordered by at_block "
                        "(got block %d after the loop reached block %d)"
                        % (pending[1].at_block, step)
                    )
                due.append(pending)
                pending = next(stream, None)
            if due:
                admitted = self.admit([arrival for _, arrival in due])
                sessions.update(
                    zip((index for index, _ in due), admitted)
                )
            if (
                pending is None
                and self.engine.all_done
                and not len(self.chain.mempool)
            ):
                break
            bound = (
                max_blocks
                if max_blocks is not None
                else self._stall_bound(last_progress, pending, period0)
            )
            # A non-empty mempool is imminent work (it mines next step),
            # never a stall — e.g. the cancel transaction a timed-out
            # session just submitted.
            if step >= bound and not len(self.chain.mempool):
                raise ProtocolError(
                    "service loop stalled at block %d with %d open "
                    "session(s): %s"
                    % (
                        step,
                        len(self.engine.active_sessions()),
                        self.engine.describe_stuck(),
                    )
                )
            self.engine.step()
            step += 1
            # Progress = a new admission or any session's phase moving;
            # history lengths only ever grow, so the pair is a cheap
            # monotone fingerprint.
            mark = (
                len(sessions),
                sum(len(session.history) for session in sessions.values()),
            )
            if mark != progress_mark:
                progress_mark = mark
                last_progress = step

        outcomes = []
        for index in sorted(sessions):
            session = sessions[index]
            self.tasks[session.contract_name].finished = True
            outcomes.append(session.outcome())
        return outcomes

    def _stall_bound(
        self,
        last_progress: int,
        pending: Optional[Tuple[int, TaskArrival]],
        period0: int,
    ) -> int:
        """The step past which an idle service loop counts as stuck.

        Anchored at the latest of: the last observed progress, every
        active session's self-scheduled work (converted from clock
        periods to loop steps), and the next arrival's block.  The
        slack on top scales with the number of in-flight sessions —
        a deeper pipeline legitimately takes longer to drain than the
        old flat ``horizon + 64`` allowance assumed.
        """
        active = self.engine.active_sessions()
        horizon = last_progress
        for session in active:
            until = session.scheduled_until()
            if until is not None:
                horizon = max(horizon, until - period0)
        if pending is not None:
            horizon = max(horizon, pending[1].at_block)
        return horizon + 16 + 4 * len(active)

    def admit(self, arrivals: Sequence[TaskArrival]) -> List[HITSession]:
        """Publish one step's arrivals (sharing a single deployment block)
        and enroll their sessions and workers.

        The building block :meth:`serve` (and the simulation runner in
        :mod:`repro.sim.runner`) uses between engine steps; an arrival
        with no ``worker_answers`` is admitted unstaffed — its workers
        join later (e.g. a :class:`repro.sim.population.WorkerPopulation`
        enrolling through the marketplace).
        """
        handles = self.publish_tasks_batch(
            [(arrival.requester_label, arrival.task) for arrival in arrivals]
        )
        sessions: List[HITSession] = []
        for arrival, handle in zip(arrivals, handles):
            session = self.engine.register(
                handle.requester,
                config=SessionConfig(
                    evaluation=arrival.evaluation,
                    cancel_after=arrival.cancel_after,
                ),
            )
            labels = list(
                arrival.worker_labels
                if arrival.worker_labels is not None
                else [
                    "%s/worker-%d" % (handle.contract_name, index)
                    for index in range(len(arrival.worker_answers))
                ]
            )
            if len(labels) != len(arrival.worker_answers):
                raise ProtocolError("worker label count mismatch")
            policies = arrival.worker_policies or {}
            for index, (label, answers) in enumerate(
                zip(labels, arrival.worker_answers)
            ):
                worker = WorkerClient(
                    label, self.chain, self.swarm, answers=list(answers)
                )
                session.add_worker(worker, policy=policies.get(index))
                handle.workers.append(worker)
            sessions.append(session)
        return sessions

    def _gas_report_for(self, handle: TaskHandle) -> GasReport:
        """Reconstruct the per-operation gas ledger from receipts."""
        return gas_report_from_receipts(
            [
                receipt
                for block in self.chain.blocks
                for receipt in block.receipts
                if receipt.transaction.contract == handle.contract_name
            ]
        )

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def requester_public_key_bytes(self, label: str) -> bytes:
        """The stable public key a requester uses across all her tasks."""
        from repro.crypto.elgamal import keygen

        public_key, _ = keygen(self._requester_secret(label))
        return public_key.to_bytes()

    @property
    def total_gas(self) -> int:
        return self.chain.total_gas
