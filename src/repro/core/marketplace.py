"""A worker-side task marketplace: discovery, vetting, selection.

On a public chain every published task is visible; what a rational
worker needs is a *vetted* view: the task's economics combined with the
requester's audit record (the paper's Turkopticon analogy [14, 15]).
:class:`TaskMarketplace` assembles that view from public data only:

* open tasks (published, commit phase not yet filled) with reward per
  worker, question count, threshold, and remaining slots;
* the requester's reputation from :class:`~repro.core.audit.GoldAuditLog`;
* an expected-utility estimate from
  :mod:`repro.analysis.incentives` given the worker's self-assessed
  accuracy — so "is this task worth my effort?" is one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.incentives import (
    IncentiveParameters,
    binomial_at_least,
)
from repro.chain.chain import Chain
from repro.chain.gas import GasPricing, PAPER_PRICING
from repro.core.audit import GoldAuditLog, RequesterReputation
from repro.core.hit_contract import HITContract
from repro.core.task import TaskParameters
from repro.ledger.accounts import Address


@dataclass(frozen=True)
class TaskListing:
    """One open task as a worker sees it."""

    contract_name: str
    requester: Address
    parameters: TaskParameters
    slots_taken: int
    requester_reputation: Optional[RequesterReputation]

    @property
    def slots_remaining(self) -> int:
        return self.parameters.num_workers - self.slots_taken

    @property
    def is_open(self) -> bool:
        return self.slots_remaining > 0

    @property
    def reward_per_worker(self) -> int:
        return self.parameters.reward_per_worker

    @property
    def requester_flagged(self) -> bool:
        return bool(
            self.requester_reputation and self.requester_reputation.is_suspicious
        )


class TaskMarketplace:
    """Public-data task discovery over one chain."""

    def __init__(self, chain: Chain, pricing: GasPricing = PAPER_PRICING) -> None:
        self.chain = chain
        self.pricing = pricing
        self._audit = GoldAuditLog(chain)

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------

    def listings(self, include_closed: bool = False) -> List[TaskListing]:
        """All published tasks, open ones first, best reward first."""
        reputations = self._audit.reputation()
        results: List[TaskListing] = []
        for event in self.chain.events:
            if event.name != "published":
                continue
            payload = event.payload
            contract_name = self._contract_name_for(event.contract.value)
            if contract_name is None:
                continue
            contract = self.chain.contract(contract_name)
            slots_taken = (
                len(contract.committed_workers())
                if isinstance(contract, HITContract)
                else 0
            )
            listing = TaskListing(
                contract_name=contract_name,
                requester=payload["requester"],
                parameters=payload["parameters"],
                slots_taken=slots_taken,
                requester_reputation=reputations.get(payload["requester"].label),
            )
            if listing.is_open or include_closed:
                results.append(listing)
        results.sort(
            key=lambda l: (not l.is_open, -l.reward_per_worker, l.contract_name)
        )
        return results

    def _contract_name_for(self, address_value: bytes) -> Optional[str]:
        for name in list(self.chain._contracts):
            if self.chain.contract(name).address.value == address_value:
                return name
        return None

    # ------------------------------------------------------------------
    # Vetting
    # ------------------------------------------------------------------

    def expected_utility(
        self,
        listing: TaskListing,
        worker_accuracy: float,
        effort_cost_per_question: float = 0.02,
        coin_value_usd: float = 0.05,
        submit_fee_usd: float = 0.48,
    ) -> float:
        """Expected USD utility of honestly working this task.

        ``coin_value_usd`` converts the task's coin reward; the fee
        defaults to the Table III per-worker handling cost.
        """
        parameters = listing.parameters
        pay_probability = binomial_at_least(
            parameters.num_golds,
            parameters.quality_threshold,
            worker_accuracy,
        )
        reward = listing.reward_per_worker * coin_value_usd
        cost = (
            effort_cost_per_question * parameters.num_questions
            + submit_fee_usd
        )
        return pay_probability * reward - cost

    def recommend(
        self,
        worker_accuracy: float,
        avoid_flagged: bool = True,
        **utility_kwargs,
    ) -> List[TaskListing]:
        """Open tasks worth working, best expected utility first."""
        candidates = []
        for listing in self.listings():
            if avoid_flagged and listing.requester_flagged:
                continue
            utility = self.expected_utility(
                listing, worker_accuracy, **utility_kwargs
            )
            if utility > 0:
                candidates.append((utility, listing))
        candidates.sort(key=lambda pair: -pair[0])
        return [listing for _, listing in candidates]
