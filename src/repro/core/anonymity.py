"""Anonymous worker participation (the ZebraLancer extension).

The base protocol identifies workers by their on-chain address.  With
the LSAG substrate (:mod:`repro.crypto.ring`) workers can instead join
a task as *anonymous members of a registered ring*:

* The registration authority (the paper's implicit RA) publishes the
  ring of eligible worker public keys for a task.
* A worker's ``commit`` carries a ring signature over the commitment
  digest, under the task id as linkability context.
* The contract verifies ring membership and stores the linkability tag:
  a second commit bearing the same tag (the same worker trying to take
  two slots — the Sybil play) is rejected, but nothing reveals *which*
  ring member committed.

:class:`AnonymousHITContract` extends the base contract's commit phase;
reveal/evaluate/finalize are inherited unchanged — payments go to the
pseudonymous submitting address, which the worker may make fresh per
task, so the persistent identity in the ring never touches the chain.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.chain.contract import CallContext
from repro.chain.gas import ECMUL, ECADD, keccak_cost
from repro.core.hit_contract import HITContract, PHASE_COMMIT
from repro.crypto.curve import G1Point
from repro.crypto.ring import RingSignature, ring_sign, ring_verify
from repro.errors import ProtocolError
from repro.ledger.accounts import Address


class AnonymousHITContract(HITContract):
    """A HIT contract whose commit phase authenticates via ring signatures."""

    def set_worker_ring(self, ring: Sequence[G1Point]) -> None:
        """Install the RA-published ring (done at deployment time)."""
        self.storage["worker_ring"] = [point.to_bytes() for point in ring]

    def _worker_ring(self) -> List[G1Point]:
        encoded = self._memory_read("worker_ring")
        if encoded is None:
            raise ProtocolError("no worker ring installed")
        return [G1Point.from_bytes(data) for data in encoded]

    def _charge_ring_verification(self, ctx: CallContext, ring_size: int) -> None:
        """Gas for on-chain LSAG verification: 4 ecMul + 2 ecAdd and one
        keccak per ring member."""
        ctx.meter.charge_ecmul(4 * ring_size)
        ctx.meter.charge_ecadd(2 * ring_size)
        for _ in range(ring_size):
            ctx.meter.charge_keccak(ring_size * 64 + 192)

    def commit_anonymous(self, ctx: CallContext) -> None:
        """Commit with a ring signature instead of a known identity.

        Args: ``(digest, signature)``.  The signature must verify over
        the digest against the installed ring with the contract name as
        linkability context; its tag must be fresh for this task.
        """
        digest, signature = ctx.args
        ctx.require(isinstance(digest, bytes) and len(digest) == 32,
                    "commitments are 32-byte digests")
        ctx.require(isinstance(signature, RingSignature),
                    "missing ring signature")
        self._require_phase(ctx, PHASE_COMMIT, "commit_anonymous")

        ring = self._worker_ring()
        self._charge_ring_verification(ctx, len(ring))
        ctx.require(
            ring_verify(digest, ring, signature, self.name.encode("utf-8")),
            "ring signature invalid",
        )

        tag_key = "ringtag:" + signature.tag.to_bytes().hex()
        ctx.require(self._sload(ctx, tag_key) is None,
                    "linkability tag already used (double participation)")
        self._sstore(ctx, tag_key, True)

        # From here the flow matches the base commit: the *submitting
        # address* becomes the payable pseudonym.
        duplicate_owner = self._sload(ctx, "comm:" + digest.hex())
        ctx.require(duplicate_owner is None, "duplicate commitment rejected")
        existing = self._sload(ctx, "comm_of:" + ctx.sender.hex())
        ctx.require(existing is None, "pseudonym already committed")

        self._sstore(ctx, "comm:" + digest.hex(), ctx.sender)
        self._sstore(ctx, "comm_of:" + ctx.sender.hex(), digest)
        workers = list(self._memory_read("workers", []))
        workers.append(ctx.sender)
        self._sstore(ctx, "workers", workers)

        self.emit(
            ctx,
            "committed",
            data=digest,
            topics=(signature.tag.to_bytes()[:32],),
            payload={"worker": ctx.sender, "digest": digest,
                     "count": len(workers), "tag": signature.tag},
        )
        parameters = self._parameters()
        if len(workers) == parameters.num_workers:
            self._sstore(ctx, "reveal_deadline", ctx.period + 1)
            self.emit(ctx, "all_committed",
                      payload={"workers": workers,
                               "reveal_deadline": ctx.period + 1})


class AnonymousWorkerIdentity:
    """A worker's persistent ring identity plus a per-task pseudonym."""

    def __init__(self, ring: Sequence[G1Point], secret: int, index: int) -> None:
        if ring[index] != G1Point.generator() * secret:
            raise ProtocolError("secret does not match the ring slot")
        self.ring = list(ring)
        self.secret = secret
        self.index = index

    def sign_commitment(self, digest: bytes, task_context: bytes) -> RingSignature:
        """Ring-sign a commitment digest under the task's context."""
        return ring_sign(
            digest, self.ring, self.secret, self.index, task_context
        )
