"""The protocol driver: runs Π_hit end to end on the simulated chain.

:func:`run_hit` wires a requester and K workers through the full task
life cycle — publish, commit, reveal, evaluate, finalize — mining one
block per clock period exactly as the synchronous model prescribes, and
returns a :class:`ProtocolOutcome` with the payment vector and a
per-operation gas ledger (the raw material of the paper's Table III).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chain.chain import Chain
from repro.chain.network import Scheduler
from repro.chain.transactions import Receipt
from repro.core.hit_contract import HITContract
from repro.core.requester import EvaluationAction, RequesterClient
from repro.core.task import HITTask
from repro.core.worker import WorkerClient
from repro.errors import ProtocolError
from repro.ledger.accounts import Address
from repro.storage.swarm import SwarmStore


@dataclass
class GasReport:
    """Gas usage per protocol operation, aggregated across a full run."""

    publish: int = 0
    commits: Dict[str, int] = field(default_factory=dict)
    reveals: Dict[str, int] = field(default_factory=dict)
    golden: int = 0
    rejections: Dict[str, int] = field(default_factory=dict)
    finalize: int = 0

    def submit_cost(self, worker_label: str) -> int:
        """Commit plus reveal gas for one worker (Table III 'submit')."""
        return self.commits.get(worker_label, 0) + self.reveals.get(worker_label, 0)

    @property
    def total(self) -> int:
        return (
            self.publish
            + sum(self.commits.values())
            + sum(self.reveals.values())
            + self.golden
            + sum(self.rejections.values())
            + self.finalize
        )


@dataclass
class ProtocolOutcome:
    """Everything a test or bench wants to know about a finished run."""

    chain: Chain
    swarm: SwarmStore
    requester: RequesterClient
    workers: List[WorkerClient]
    contract: HITContract
    actions: List[EvaluationAction]
    gas: GasReport
    receipts: List[Receipt] = field(default_factory=list)

    def payment_of(self, worker: WorkerClient) -> int:
        return self.chain.ledger.balance_of(worker.address)

    def payments(self) -> Dict[str, int]:
        return {w.label: self.payment_of(w) for w in self.workers}

    def verdicts(self) -> Dict[str, Optional[str]]:
        return {w.label: self.contract.verdict_of(w.address) for w in self.workers}


def _receipts_by_sender(receipts: Sequence[Receipt]) -> Dict[Address, List[Receipt]]:
    grouped: Dict[Address, List[Receipt]] = {}
    for receipt in receipts:
        grouped.setdefault(receipt.transaction.sender, []).append(receipt)
    return grouped


def run_hit(
    task: HITTask,
    worker_answers: Sequence[Sequence[int]],
    scheduler: Optional[Scheduler] = None,
    requester_label: str = "requester",
    worker_labels: Optional[Sequence[str]] = None,
    requester_evaluates: bool = True,
    requester_cls: type = RequesterClient,
    worker_cls: type = WorkerClient,
) -> ProtocolOutcome:
    """Run one complete HIT through the simulated blockchain.

    ``worker_answers`` supplies one answer vector per worker slot; pass a
    custom ``scheduler`` to inject the reordering adversary, or custom
    client classes to inject misbehaving parties.
    """
    parameters = task.parameters
    if len(worker_answers) != parameters.num_workers:
        raise ProtocolError(
            "need %d answer vectors, got %d"
            % (parameters.num_workers, len(worker_answers))
        )
    labels = list(
        worker_labels
        if worker_labels is not None
        else ["worker-%d" % i for i in range(parameters.num_workers)]
    )
    if len(labels) != parameters.num_workers:
        raise ProtocolError("worker label count mismatch")

    chain = Chain(scheduler=scheduler)
    swarm = SwarmStore()
    gas = GasReport()
    all_receipts: List[Receipt] = []

    # Phase 1: publish (contract deployment block).
    requester = requester_cls(requester_label, task, chain, swarm)
    publish_receipt = requester.publish()
    if not publish_receipt.succeeded:
        raise ProtocolError("publish failed: %s" % publish_receipt.revert_reason)
    gas.publish = publish_receipt.gas_used
    all_receipts.append(publish_receipt)
    contract = chain.contract(requester.contract_name)

    # Phase 2-a: all workers discover and commit; one block.
    workers = [
        worker_cls(label, chain, swarm, answers=answers)
        for label, answers in zip(labels, worker_answers)
    ]
    for worker in workers:
        worker.discover(requester.contract_name)
        worker.send_commit()
    commit_block = chain.mine_block()
    all_receipts.extend(commit_block.receipts)
    for receipt in commit_block.receipts:
        if receipt.succeeded:
            label = receipt.transaction.sender.label
            gas.commits[label] = gas.commits.get(label, 0) + receipt.gas_used

    # Phase 2-b: committed workers reveal; one block.
    committed = set(a.hex() for a in contract.committed_workers())
    for worker in workers:
        if worker.address.hex() in committed:
            worker.send_reveal()
    reveal_block = chain.mine_block()
    all_receipts.extend(reveal_block.receipts)
    for receipt in reveal_block.receipts:
        if receipt.succeeded:
            label = receipt.transaction.sender.label
            gas.reveals[label] = gas.reveals.get(label, 0) + receipt.gas_used

    # Phase 3: the requester opens golds and sends rejections; one block.
    actions: List[EvaluationAction] = []
    if requester_evaluates:
        actions = requester.evaluate_all()
    evaluate_block = chain.mine_block()
    all_receipts.extend(evaluate_block.receipts)
    for receipt in evaluate_block.receipts:
        if not receipt.succeeded:
            continue
        if receipt.transaction.method == "golden":
            gas.golden += receipt.gas_used
        elif receipt.transaction.method in ("evaluate", "outrange"):
            worker_arg = receipt.transaction.args[0]
            gas.rejections[worker_arg.label or worker_arg.hex()] = receipt.gas_used

    # Finalization block.
    requester.send_finalize()
    finalize_block = chain.mine_block()
    all_receipts.extend(finalize_block.receipts)
    for receipt in finalize_block.receipts:
        if receipt.succeeded and receipt.transaction.method == "finalize":
            gas.finalize = receipt.gas_used

    return ProtocolOutcome(
        chain=chain,
        swarm=swarm,
        requester=requester,
        workers=workers,
        contract=contract,
        actions=actions,
        gas=gas,
        receipts=all_receipts,
    )
