"""The protocol driver: runs Π_hit end to end on the simulated chain.

:func:`run_hit` wires a requester and K workers through the full task
life cycle — publish, commit, reveal, evaluate, finalize — and returns a
:class:`ProtocolOutcome` with the payment vector and a per-operation gas
ledger (the raw material of the paper's Table III).

Since the session-engine refactor, :func:`run_hit` is a thin wrapper
over :class:`repro.core.session.SessionEngine`: one session, honest
policies, sequential evaluation.  Everyone acts at the earliest allowed
period, so the engine reproduces the classic lock-step schedule — one
block per clock period, five blocks per task — transaction for
transaction.  The event-driven path (staggered arrivals, stragglers,
dropouts) lives in :mod:`repro.core.session`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.chain.chain import Chain
from repro.chain.network import Scheduler
from repro.chain.transactions import Receipt
from repro.core.hit_contract import HITContract
from repro.core.requester import EvaluationAction, RequesterClient
from repro.core.task import HITTask
from repro.core.worker import WorkerClient
from repro.errors import ProtocolError
from repro.storage.swarm import SwarmStore


@dataclass
class GasReport:
    """Gas usage per protocol operation, aggregated across a full run.

    The five scripted operations of the happy path keep their fixed
    slots (Table III reads them directly); anything outside that script
    — a cancelled task's refund, a late reveal burned against the
    Fig. 4 deadline — lands in the dynamic :attr:`extras` ledger via
    :meth:`record`, so per-session scenarios extend the report without
    changing its shape.
    """

    publish: int = 0
    commits: Dict[str, int] = field(default_factory=dict)
    reveals: Dict[str, int] = field(default_factory=dict)
    golden: int = 0
    rejections: Dict[str, int] = field(default_factory=dict)
    finalize: int = 0

    @property
    def extras(self) -> Dict[str, int]:
        """Gas of dynamic (non-scripted) operations, keyed by operation.

        Created lazily so the report's storage layout — frozen by the
        interface contract tests — is untouched until a scenario
        actually records something dynamic.
        """
        try:
            return self._extras
        except AttributeError:
            self._extras: Dict[str, int] = {}
            return self._extras

    def record(self, operation: str, gas: int) -> None:
        """Accumulate gas under a dynamic operation label.

        Operation labels are free-form but conventionally
        ``"<what>:<who>"`` — e.g. ``"cancel:requester"`` or
        ``"late-reveal:worker-3"``.
        """
        self.extras[operation] = self.extras.get(operation, 0) + gas

    def submit_cost(self, worker_label: str) -> int:
        """Commit plus reveal gas for one worker (Table III 'submit')."""
        return self.commits.get(worker_label, 0) + self.reveals.get(worker_label, 0)

    @property
    def total(self) -> int:
        return (
            self.publish
            + sum(self.commits.values())
            + sum(self.reveals.values())
            + self.golden
            + sum(self.rejections.values())
            + self.finalize
            + sum(getattr(self, "_extras", {}).values())
        )


@dataclass
class ProtocolOutcome:
    """Everything a test or bench wants to know about a finished run."""

    chain: Chain
    swarm: SwarmStore
    requester: RequesterClient
    workers: List[WorkerClient]
    contract: HITContract
    actions: List[EvaluationAction]
    gas: GasReport
    receipts: List[Receipt] = field(default_factory=list)

    def payment_of(self, worker: WorkerClient) -> int:
        return self.chain.ledger.balance_of(worker.address)

    def payments(self) -> Dict[str, int]:
        return {w.label: self.payment_of(w) for w in self.workers}

    def verdicts(self) -> Dict[str, Optional[str]]:
        return {w.label: self.contract.verdict_of(w.address) for w in self.workers}


def fold_receipt(gas: GasReport, receipt: Receipt) -> GasReport:
    """Fold one receipt into a task's gas ledger (see the batch helper).

    Successful scripted operations fill the report's fixed Table III
    slots; an ``evaluate_batch`` receipt is amortized into equal
    per-worker shares (the division remainder goes to the first worker
    so the report sums to the receipt's actual gas).  Dynamic
    per-session operations go to :meth:`GasReport.record`: a successful
    ``cancel`` (the unfilled-task refund) and the gas burned by
    commits/reveals that reverted against their Fig. 4 phase deadline.

    Exposed separately from :func:`gas_report_from_receipts` so
    streaming consumers — the simulation metrics pipeline folds each
    block's receipts as they seal — share the exact slotting rules.
    """
    method = receipt.transaction.method
    sender = receipt.transaction.sender.label
    if not receipt.succeeded:
        # Only deadline misses are a protocol-level operation worth
        # ledgering; other reverts (duplicate commitment, bad
        # opening) stay out of the totals, as they always have.
        if method in ("commit", "reveal") and (
            "only valid in phase" in receipt.revert_reason
        ):
            gas.record("late-%s:%s" % (method, sender), receipt.gas_used)
        return gas
    if method == "__deploy__":
        gas.publish = receipt.gas_used
    elif method == "commit":
        gas.commits[sender] = gas.commits.get(sender, 0) + receipt.gas_used
    elif method == "reveal":
        gas.reveals[sender] = gas.reveals.get(sender, 0) + receipt.gas_used
    elif method == "golden":
        gas.golden += receipt.gas_used
    elif method in ("evaluate", "outrange"):
        target = receipt.transaction.args[0]
        gas.rejections[target.label or target.hex()] = receipt.gas_used
    elif method == "evaluate_batch":
        rejections = receipt.transaction.args[0]
        share, remainder = divmod(receipt.gas_used, max(1, len(rejections)))
        for position, (target, _, _, _) in enumerate(rejections):
            gas.rejections[target.label or target.hex()] = (
                share + (remainder if position == 0 else 0)
            )
    elif method == "finalize":
        gas.finalize = receipt.gas_used
    elif method == "cancel":
        gas.record("cancel:%s" % sender, receipt.gas_used)
    return gas


def gas_report_from_receipts(receipts: Sequence[Receipt]) -> GasReport:
    """Rebuild the per-operation gas ledger of one task from its receipts
    (the slotting rules live in :func:`fold_receipt`)."""
    gas = GasReport()
    for receipt in receipts:
        fold_receipt(gas, receipt)
    return gas


def run_hit(
    task: HITTask,
    worker_answers: Sequence[Sequence[int]],
    scheduler: Optional[Scheduler] = None,
    requester_label: str = "requester",
    worker_labels: Optional[Sequence[str]] = None,
    requester_evaluates: bool = True,
    requester_cls: type = RequesterClient,
    worker_cls: type = WorkerClient,
) -> ProtocolOutcome:
    """Run one complete HIT through the simulated blockchain.

    ``worker_answers`` supplies one answer vector per worker slot; pass a
    custom ``scheduler`` to inject the reordering adversary, or custom
    client classes to inject misbehaving parties.

    A thin wrapper over the session engine: publish the task, enroll
    every worker with the honest policy, and pump until the session
    settles — publish, commit, reveal, evaluate, finalize, one block per
    clock period, exactly as the synchronous model prescribes.
    """
    from repro.core.session import SessionConfig, SessionEngine

    parameters = task.parameters
    if len(worker_answers) != parameters.num_workers:
        raise ProtocolError(
            "need %d answer vectors, got %d"
            % (parameters.num_workers, len(worker_answers))
        )
    labels = list(
        worker_labels
        if worker_labels is not None
        else ["worker-%d" % i for i in range(parameters.num_workers)]
    )
    if len(labels) != parameters.num_workers:
        raise ProtocolError("worker label count mismatch")

    engine = SessionEngine(scheduler=scheduler)
    requester = requester_cls(requester_label, task, engine.chain, engine.swarm)
    session = engine.publish_session(
        requester,
        config=SessionConfig(
            evaluation="sequential" if requester_evaluates else "none"
        ),
    )
    for label, answers in zip(labels, worker_answers):
        session.add_worker(
            worker_cls(label, engine.chain, engine.swarm, answers=answers)
        )
    # The lock-step schedule: deploy block + four mined blocks.  Like the
    # scripted driver of old, run_hit always returns after five blocks —
    # a task whose commit phase never fills (a misbehaving worker_cls)
    # comes back as an unfinished outcome, not an exception.
    while not session.finished and engine.chain.height < 5:
        engine.step()
    return session.outcome()
