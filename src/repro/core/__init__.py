"""Dragoon's protocol core: tasks, contract, clients, driver, ideal world."""

from repro.core.task import (
    TaskParameters,
    HITTask,
    make_imagenet_task,
    make_street_parking_task,
    sample_worker_answers,
    parse_golden_blob,
)
from repro.core.hit_contract import (
    HITContract,
    PHASE_COMMIT,
    PHASE_REVEAL,
    PHASE_EVALUATE,
    PHASE_DONE,
    CIPHERTEXT_BYTES,
)
from repro.core.requester import RequesterClient, EvaluationAction
from repro.core.worker import WorkerClient, DiscoveredTask
from repro.core.protocol import (
    run_hit,
    ProtocolOutcome,
    GasReport,
    gas_report_from_receipts,
)
from repro.core.session import (
    HITSession,
    SessionConfig,
    SessionEngine,
    WorkerPolicy,
    DropScheduler,
    StragglerScheduler,
    SESSION_COMMIT,
    SESSION_REVEAL,
    SESSION_EVALUATE,
    SESSION_FINALIZE,
    SESSION_DONE,
    SESSION_CANCELLED,
)
from repro.core.ideal import IdealHIT, IdealOutcome, Leak
from repro.core.simulator import (
    compare_worlds,
    run_ideal_mirror,
    WorldComparison,
    leakage_is_plaintext_free,
)
from repro.core.aggregation import (
    ConsensusResult,
    homomorphic_tally,
    binary_consensus_from_tally,
    majority_vote,
    pairwise_agreement,
    accuracy_against_truth,
)
from repro.core.audit import GoldAuditLog, TaskAuditRecord, RequesterReputation
from repro.core.marketplace import TaskMarketplace, TaskListing

__all__ = [
    "TaskParameters",
    "HITTask",
    "make_imagenet_task",
    "make_street_parking_task",
    "sample_worker_answers",
    "parse_golden_blob",
    "HITContract",
    "PHASE_COMMIT",
    "PHASE_REVEAL",
    "PHASE_EVALUATE",
    "PHASE_DONE",
    "CIPHERTEXT_BYTES",
    "RequesterClient",
    "EvaluationAction",
    "WorkerClient",
    "DiscoveredTask",
    "run_hit",
    "ProtocolOutcome",
    "GasReport",
    "gas_report_from_receipts",
    "HITSession",
    "SessionConfig",
    "SessionEngine",
    "WorkerPolicy",
    "DropScheduler",
    "StragglerScheduler",
    "SESSION_COMMIT",
    "SESSION_REVEAL",
    "SESSION_EVALUATE",
    "SESSION_FINALIZE",
    "SESSION_DONE",
    "SESSION_CANCELLED",
    "IdealHIT",
    "IdealOutcome",
    "Leak",
    "compare_worlds",
    "run_ideal_mirror",
    "WorldComparison",
    "leakage_is_plaintext_free",
    "ConsensusResult",
    "homomorphic_tally",
    "binary_consensus_from_tally",
    "majority_vote",
    "pairwise_agreement",
    "accuracy_against_truth",
    "GoldAuditLog",
    "TaskAuditRecord",
    "RequesterReputation",
    "TaskMarketplace",
    "TaskListing",
]
