"""The HIT contract C_hit (paper Fig. 4), as a gas-metered simulated contract.

The contract is the on-chain referee of the protocol.  Its life cycle:

* **Publish (deploy)** — the requester deploys with the public task
  parameters, her ElGamal public key ``h``, the gold-standard commitment
  ``commgs``, and the Swarm digest of the question blob; the budget ``B``
  is frozen from her ledger balance.
* **Commit** — workers submit commitments to their encrypted answers.
  Duplicate commitments (the copy-paste attack) and double commits are
  rejected.  When ``K`` distinct commitments arrive the reveal window
  opens (one clock period).
* **Reveal** — committed workers open their commitments to the actual
  ciphertext vectors.  The contract stores only *per-question keccak
  hashes* of the ciphertexts (the paper's storage optimization) and emits
  the full ciphertexts as an event for off-chain consumption.
* **Evaluate** — the requester opens ``commgs`` to reveal ``(G, Gs)``
  (publicly auditable gold standards), then may reject a worker either
  with a PoQoEA proof (quality below Θ) or an out-of-range verifiable
  decryption.  Per Fig. 4, a *bogus* rejection attempt results in the
  worker being paid — cheating requesters pay full price.
* **Finalize** — after the evaluation window, every revealed worker not
  validly rejected is paid ``B/K``; leftover escrow returns to the
  requester.  If the requester never opened the golds, *everyone* is
  paid (the anti-false-reporting default).

Phase boundaries follow the synchronous model: the deadline for each
phase is fixed when the previous phase completes, so a lagging requester
or worker cannot stall the task.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.chain.contract import CallContext, Contract
from repro.crypto.commitment import Commitment, open_commitment
from repro.crypto.elgamal import Ciphertext, ElGamalPublicKey
from repro.crypto.poqoea import QualityProof
from repro.crypto.vpke import (
    Claim,
    DecryptionProof,
    verify_decryption,
    verify_decryption_batch,
)
from repro.core.task import TaskParameters, parse_golden_blob
from repro.errors import ContractError
from repro.ledger.accounts import Address

# Phase constants (stored values; the effective phase is time-dependent).
PHASE_COMMIT = 1
PHASE_REVEAL = 2
PHASE_EVALUATE = 3
PHASE_DONE = 4

CIPHERTEXT_BYTES = 128

#: Gas profile of one on-chain VPKE verification: the two Schnorr-variant
#: equations cost six ecMul and three ecAdd plus the Fiat–Shamir keccak
#: over the ~450-byte transcript.
_VPKE_TRANSCRIPT_BYTES = 452


class HITContract(Contract):
    """The smart contract of Fig. 4."""

    def __init__(self, name: str) -> None:
        super().__init__(name)

    # ------------------------------------------------------------------
    # Phase 1: publish (the deployment transaction)
    # ------------------------------------------------------------------

    def on_deploy(self, ctx: CallContext) -> None:
        params_json, pubkey_bytes, commgs_digest, task_digest = ctx.args
        parameters = TaskParameters.from_json(params_json)

        # Freeze the requester's budget; abort the publish on nofund.
        frozen = ctx.ledger.freeze(
            self.address, ctx.sender, parameters.budget, memo="task budget"
        )
        ctx.require(frozen, "requester cannot cover the budget B")
        ctx.meter.charge_value_transfer()

        # Parameter storage: N/B/K/range/Θ pack into two slots, the
        # public key takes two, commitments/digests one each.
        self._sstore(ctx, "params", params_json)
        self._sstore(ctx, "params2", (parameters.num_golds, parameters.quality_threshold))
        self._sstore(ctx, "requester", ctx.sender)
        self._sstore(ctx, "pubkey_x", pubkey_bytes[:32])
        self._sstore(ctx, "pubkey_y", pubkey_bytes[32:])
        self._sstore(ctx, "commgs", commgs_digest)
        self._sstore(ctx, "task_digest", task_digest)
        self._sstore(ctx, "phase", PHASE_COMMIT)

        self.emit(
            ctx,
            "published",
            data=ctx.payload,
            topics=(ctx.sender.value,),
            payload={
                "requester": ctx.sender,
                "parameters": parameters,
                "pubkey": pubkey_bytes,
                "commgs": commgs_digest,
                "task_digest": task_digest,
            },
        )

    # ------------------------------------------------------------------
    # Effective phase computation
    # ------------------------------------------------------------------

    def _parameters(self) -> TaskParameters:
        return TaskParameters.from_json(self._memory_read("params"))

    def _effective_phase(self, period: int) -> int:
        if self._memory_read("finalized"):
            return PHASE_DONE
        reveal_deadline = self._memory_read("reveal_deadline")
        if reveal_deadline is None:
            return PHASE_COMMIT
        if period <= reveal_deadline:
            return PHASE_REVEAL
        if period <= reveal_deadline + 1:
            return PHASE_EVALUATE
        return PHASE_DONE  # only finalize remains

    def _require_phase(self, ctx: CallContext, phase: int, action: str) -> None:
        ctx.meter.charge_sload(2)  # deadline + finalized flags
        current = self._effective_phase(ctx.period)
        ctx.require(
            current == phase,
            "%s is only valid in phase %d (current %d)" % (action, phase, current),
        )

    # ------------------------------------------------------------------
    # Phase 2-a: commit
    # ------------------------------------------------------------------

    def commit(self, ctx: CallContext) -> None:
        (digest,) = ctx.args
        ctx.require(isinstance(digest, bytes) and len(digest) == 32,
                    "commitments are 32-byte digests")
        self._require_phase(ctx, PHASE_COMMIT, "commit")
        ctx.require(ctx.sender != self._memory_read("requester"),
                    "the requester cannot pose as a worker")

        # Reject duplicated commitments (copy-paste) and double commits.
        duplicate_owner = self._sload(ctx, "comm:" + digest.hex())
        ctx.require(duplicate_owner is None, "duplicate commitment rejected")
        existing = self._sload(ctx, "comm_of:" + ctx.sender.hex())
        ctx.require(existing is None, "worker already committed")

        self._sstore(ctx, "comm:" + digest.hex(), ctx.sender)
        self._sstore(ctx, "comm_of:" + ctx.sender.hex(), digest)

        workers: List[Address] = list(self._memory_read("workers", []))
        workers.append(ctx.sender)
        self._sstore(ctx, "workers", workers)

        count = len(workers)
        self.emit(
            ctx,
            "committed",
            data=digest,
            topics=(ctx.sender.value,),
            payload={"worker": ctx.sender, "digest": digest, "count": count},
        )
        parameters = self._parameters()
        if count == parameters.num_workers:
            # The reveal window is the next clock period.
            self._sstore(ctx, "reveal_deadline", ctx.period + 1)
            self.emit(
                ctx,
                "all_committed",
                payload={"workers": workers, "reveal_deadline": ctx.period + 1},
            )

    # ------------------------------------------------------------------
    # Phase 2-b: reveal
    # ------------------------------------------------------------------

    def reveal(self, ctx: CallContext) -> None:
        ciphertext_bytes, blinding_key = ctx.args
        self._require_phase(ctx, PHASE_REVEAL, "reveal")
        commitment_digest = self._sload(ctx, "comm_of:" + ctx.sender.hex())
        ctx.require(commitment_digest is not None, "no commitment from this worker")
        ctx.require(
            self._memory_read("revealed:" + ctx.sender.hex()) is None,
            "worker already revealed",
        )

        # Check the commitment opening.
        ctx.meter.charge_keccak(len(ciphertext_bytes) + len(blinding_key))
        opened = open_commitment(
            Commitment(commitment_digest), ciphertext_bytes, blinding_key
        )
        ctx.require(opened, "commitment opening failed")

        parameters = self._parameters()
        expected = parameters.num_questions * CIPHERTEXT_BYTES
        ctx.require(
            len(ciphertext_bytes) == expected,
            "answer vector must encode %d ciphertexts" % parameters.num_questions,
        )

        # Store one keccak hash per question ciphertext (the paper's
        # storage optimization: hashes on-chain, bodies in the event log).
        from repro.crypto.keccak import keccak256

        for index in range(parameters.num_questions):
            chunk = ciphertext_bytes[
                index * CIPHERTEXT_BYTES : (index + 1) * CIPHERTEXT_BYTES
            ]
            ctx.meter.charge_keccak(CIPHERTEXT_BYTES)
            self._sstore(
                ctx, "cthash:%s:%d" % (ctx.sender.hex(), index), keccak256(chunk)
            )

        self._sstore(ctx, "revealed:" + ctx.sender.hex(), True)
        self.emit(
            ctx,
            "revealed",
            data=ciphertext_bytes,
            topics=(ctx.sender.value,),
            payload={"worker": ctx.sender, "ciphertexts": ciphertext_bytes},
        )

    # ------------------------------------------------------------------
    # Phase 3: evaluate
    # ------------------------------------------------------------------

    def golden(self, ctx: CallContext) -> None:
        golden_blob, blinding_key = ctx.args
        self._require_phase(ctx, PHASE_EVALUATE, "golden")
        ctx.require(ctx.sender == self._memory_read("requester"),
                    "only the requester opens the gold standards")
        ctx.require(not self._memory_read("golden_opened"),
                    "gold standards already opened")

        commgs = self._sload(ctx, "commgs")
        ctx.meter.charge_keccak(len(golden_blob) + len(blinding_key))
        opened = open_commitment(Commitment(commgs), golden_blob, blinding_key)
        ctx.require(opened, "gold-standard opening failed")

        gold_indexes, gold_answers = parse_golden_blob(golden_blob)
        parameters = self._parameters()
        ctx.require(len(gold_indexes) == parameters.num_golds,
                    "gold set size disagrees with the published parameters")

        self._sstore(ctx, "golden_opened", True)
        self._sstore(ctx, "gold_indexes", gold_indexes)
        self._sstore(ctx, "gold_answers", gold_answers)
        self.emit(
            ctx,
            "golden_opened",
            data=golden_blob,
            payload={"G": gold_indexes, "Gs": gold_answers},
        )

    def _charge_vpke_verification(self, ctx: CallContext) -> None:
        """Gas for one on-chain VPKE verification (EIP-1108 prices)."""
        ctx.meter.charge_keccak(_VPKE_TRANSCRIPT_BYTES)
        ctx.meter.charge_ecmul(6)
        ctx.meter.charge_ecadd(3)

    def _charge_vpke_batch_verification(self, ctx: CallContext, count: int) -> None:
        """Gas for one random-linear-combination check over ``count`` proofs.

        Each proof still pays its Fiat–Shamir keccak, but the group work
        folds into one multi-scalar multiplication: 5 ecMul per proof
        (claim, c1, c2 and the two weighted commitments) plus 2 shared
        fixed-base terms for ``g`` and ``h``, against 6 ecMul + 3 ecAdd
        per proof sequentially.
        """
        if count == 0:
            return
        for _ in range(count):
            ctx.meter.charge_keccak(_VPKE_TRANSCRIPT_BYTES)
        ctx.meter.charge_ecmul(5 * count + 2)
        ctx.meter.charge_ecadd(6 * count + 1)

    def _public_key(self) -> ElGamalPublicKey:
        from repro.crypto.curve import G1Point

        pubkey_bytes = self._memory_read("pubkey_x") + self._memory_read("pubkey_y")
        return ElGamalPublicKey(G1Point.from_bytes(pubkey_bytes))

    def _check_ciphertext_against_stored_hash(
        self, ctx: CallContext, worker: Address, index: int, chunk: bytes
    ) -> Ciphertext:
        from repro.crypto.keccak import keccak256

        ctx.require(len(chunk) == CIPHERTEXT_BYTES, "ciphertexts are 128 bytes")
        stored = self._sload(ctx, "cthash:%s:%d" % (worker.hex(), index))
        ctx.require(stored is not None, "no stored hash for this position")
        ctx.meter.charge_keccak(CIPHERTEXT_BYTES)
        ctx.require(keccak256(chunk) == stored,
                    "ciphertext does not match the revealed submission")
        return Ciphertext.from_bytes(chunk)

    def evaluate(self, ctx: CallContext) -> None:
        """Reject (or inadvertently pay) a worker via a PoQoEA proof.

        Args: ``(worker, claimed_quality, proof, gold_ciphertexts)`` where
        ``gold_ciphertexts`` maps gold position -> the 128-byte ciphertext
        at that position of the worker's revealed vector.
        """
        worker, claimed_quality, proof, gold_ciphertexts = ctx.args
        self._require_phase(ctx, PHASE_EVALUATE, "evaluate")
        ctx.require(ctx.sender == self._memory_read("requester"),
                    "only the requester evaluates")
        ctx.require(bool(self._memory_read("golden_opened")),
                    "gold standards must be opened first")
        ctx.require(self._memory_read("revealed:" + worker.hex()) is not None,
                    "worker did not reveal")
        ctx.require(
            self._memory_read("adjudicated:" + worker.hex()) is None,
            "worker already adjudicated",
        )

        parameters = self._parameters()
        gold_indexes: List[int] = self._memory_read("gold_indexes")
        gold_answers: List[int] = self._memory_read("gold_answers")
        truth_by_index = dict(zip(gold_indexes, gold_answers))
        public_key = self._public_key()

        # Fig. 4: the worker is paid if χ ≥ Θ *or* the proof fails.
        def _proof_is_valid() -> bool:
            statements = self._screen_rejection(
                ctx, worker, claimed_quality, proof, gold_ciphertexts,
                truth_by_index, len(gold_indexes),
            )
            if statements is None:
                return False
            for claim, ciphertext, decryption_proof in statements:
                self._charge_vpke_verification(ctx)
                if not verify_decryption(
                    public_key, claim, ciphertext, decryption_proof
                ):
                    return False
            return True

        if claimed_quality >= parameters.quality_threshold or not _proof_is_valid():
            self._pay_worker(ctx, worker, parameters, verdict="paid-evaluate")
        else:
            self._sstore(ctx, "adjudicated:" + worker.hex(), "rejected-quality")
            self.emit(
                ctx,
                "evaluated",
                topics=(worker.value,),
                payload={"worker": worker, "quality": claimed_quality,
                         "verdict": "rejected"},
            )

    def evaluate_batch(self, ctx: CallContext) -> None:
        """Adjudicate many workers with one batched PoQoEA verification.

        Args: ``(rejections,)`` where ``rejections`` is a sequence of
        ``(worker, claimed_quality, proof, gold_ciphertexts)`` tuples,
        each shaped exactly like one :meth:`evaluate` call.

        Fig. 4 semantics are preserved per worker — a bogus rejection
        attempt pays that worker, a valid one rejects them — but all
        VPKE decryption proofs across the whole batch are verified in a
        single random-linear-combination check, so the group-operation
        gas is charged once for the batch (5 ecMul per proof + 2 shared
        fixed-base terms) instead of 6 ecMul + 3 ecAdd per proof.  If
        the combined check fails, the offending workers are localized
        with one per-worker batch check each (charged on top, exactly
        like the optimistic on-chain pattern).

        The whole transaction reverts if any named worker never
        revealed, was already adjudicated, or appears twice — those are
        caller errors, not proof defects.
        """
        (rejections,) = ctx.args
        self._require_phase(ctx, PHASE_EVALUATE, "evaluate_batch")
        ctx.require(ctx.sender == self._memory_read("requester"),
                    "only the requester evaluates")
        ctx.require(bool(self._memory_read("golden_opened")),
                    "gold standards must be opened first")

        parameters = self._parameters()
        gold_indexes: List[int] = self._memory_read("gold_indexes")
        gold_answers: List[int] = self._memory_read("gold_answers")
        truth_by_index = dict(zip(gold_indexes, gold_answers))
        public_key = self._public_key()

        seen_workers: set = set()
        for worker, _, _, _ in rejections:
            ctx.require(worker.hex() not in seen_workers,
                        "worker appears twice in the batch")
            seen_workers.add(worker.hex())
            ctx.require(self._memory_read("revealed:" + worker.hex()) is not None,
                        "worker did not reveal")
            ctx.require(
                self._memory_read("adjudicated:" + worker.hex()) is None,
                "worker already adjudicated",
            )

        # Structural screening (the cheap half of Fig. 3's verifier);
        # workers surviving it contribute their VPKE statements to the
        # combined check.
        pending: List[Tuple[Address, int, List[Tuple[Claim, Ciphertext,
                                                     DecryptionProof]]]] = []
        for worker, claimed_quality, proof, gold_ciphertexts in rejections:
            if claimed_quality >= parameters.quality_threshold:
                self._pay_worker(ctx, worker, parameters, verdict="paid-evaluate")
                continue
            statements = self._screen_rejection(
                ctx, worker, claimed_quality, proof, gold_ciphertexts,
                truth_by_index, len(gold_indexes),
            )
            if statements is None:
                self._pay_worker(ctx, worker, parameters, verdict="paid-evaluate")
            else:
                pending.append((worker, claimed_quality, statements))

        combined = [stmt for _, _, stmts in pending for stmt in stmts]
        self._charge_vpke_batch_verification(ctx, len(combined))
        if verify_decryption_batch(public_key, combined):
            verdict_of = {worker.hex(): True for worker, _, _ in pending}
        else:
            verdict_of = {}
            for worker, _, stmts in pending:
                self._charge_vpke_batch_verification(ctx, len(stmts))
                verdict_of[worker.hex()] = verify_decryption_batch(
                    public_key, stmts
                )

        rejected = 0
        for worker, claimed_quality, _ in pending:
            if not verdict_of[worker.hex()]:
                self._pay_worker(ctx, worker, parameters, verdict="paid-evaluate")
                continue
            rejected += 1
            self._sstore(ctx, "adjudicated:" + worker.hex(), "rejected-quality")
            self.emit(
                ctx,
                "evaluated",
                topics=(worker.value,),
                payload={"worker": worker, "quality": claimed_quality,
                         "verdict": "rejected"},
            )
        self.emit(
            ctx,
            "batch_evaluated",
            payload={
                "batch_size": len(rejections),
                "rejected": rejected,
                "proofs_verified": len(combined),
            },
        )

    def _screen_rejection(
        self,
        ctx: CallContext,
        worker: Address,
        claimed_quality: int,
        proof: Any,
        gold_ciphertexts: Dict[int, bytes],
        truth_by_index: Dict[int, int],
        num_golds: int,
    ) -> Optional[List[Tuple[Claim, Ciphertext, DecryptionProof]]]:
        """Everything :meth:`evaluate` checks *except* the VPKE proofs.

        Returns the VPKE statements still to be verified, or ``None``
        when the rejection is already bogus (which per Fig. 4 pays the
        worker).
        """
        if not isinstance(proof, QualityProof):
            return None
        seen: set = set()
        statements: List[Tuple[Claim, Ciphertext, DecryptionProof]] = []
        for entry in proof.entries:
            if entry.index in seen or entry.index not in truth_by_index:
                return None
            seen.add(entry.index)
            chunk = gold_ciphertexts.get(entry.index)
            if chunk is None:
                return None
            ciphertext = self._check_ciphertext_against_stored_hash(
                ctx, worker, entry.index, chunk
            )
            if entry.answer == truth_by_index[entry.index]:
                return None
            statements.append((entry.answer, ciphertext, entry.proof))
        if claimed_quality + len(statements) < num_golds:
            return None
        return statements

    def outrange(self, ctx: CallContext) -> None:
        """Reject a worker whose answer at ``index`` is outside the range.

        Args: ``(worker, index, claim, proof, ciphertext_bytes)``.  Per
        Fig. 4 the worker is paid if the revealed value is actually in
        range or the decryption proof fails.
        """
        worker, index, claim, proof, chunk = ctx.args
        self._require_phase(ctx, PHASE_EVALUATE, "outrange")
        ctx.require(ctx.sender == self._memory_read("requester"),
                    "only the requester disputes")
        ctx.require(bool(self._memory_read("golden_opened")),
                    "gold standards must be opened first")
        ctx.require(self._memory_read("revealed:" + worker.hex()) is not None,
                    "worker did not reveal")
        ctx.require(
            self._memory_read("adjudicated:" + worker.hex()) is None,
            "worker already adjudicated",
        )

        parameters = self._parameters()
        ciphertext = self._check_ciphertext_against_stored_hash(
            ctx, worker, index, chunk
        )
        self._charge_vpke_verification(ctx)

        claim_in_range = isinstance(claim, int) and claim in parameters.answer_range
        proof_valid = isinstance(proof, DecryptionProof) and verify_decryption(
            self._public_key(), claim, ciphertext, proof
        )
        if claim_in_range or not proof_valid:
            self._pay_worker(ctx, worker, parameters, verdict="paid-outrange")
        else:
            self._sstore(ctx, "adjudicated:" + worker.hex(), "rejected-outrange")
            self.emit(
                ctx,
                "outranged",
                topics=(worker.value,),
                payload={"worker": worker, "index": index, "value": claim},
            )

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------

    def finalize(self, ctx: CallContext) -> None:
        """Settle the task after the evaluation window (callable by anyone).

        Pays every revealed, un-adjudicated worker (this covers both the
        honest default and the silent-requester case) and refunds the
        leftover escrow to the requester.
        """
        ctx.meter.charge_sload(2)
        ctx.require(not self._memory_read("finalized"), "already finalized")
        reveal_deadline = self._memory_read("reveal_deadline")
        ctx.require(reveal_deadline is not None, "task never filled its commits")
        ctx.require(
            ctx.period > reveal_deadline + 1,
            "the evaluation window is still open",
        )

        parameters = self._parameters()
        workers: List[Address] = list(self._memory_read("workers", []))
        for worker in workers:
            revealed = self._memory_read("revealed:" + worker.hex())
            adjudicated = self._memory_read("adjudicated:" + worker.hex())
            ctx.meter.charge_sload(2)
            if revealed and adjudicated is None:
                self._pay_worker(ctx, worker, parameters, verdict="paid-default")

        leftover = ctx.ledger.escrow_of(self.address)
        if leftover:
            requester = self._memory_read("requester")
            ctx.ledger.pay(self.address, requester, leftover, memo="budget refund")
            ctx.meter.charge_value_transfer()

        self._sstore(ctx, "finalized", True)
        self.emit(ctx, "finalized", payload={"workers": workers})

    def cancel(self, ctx: CallContext) -> None:
        """Refund a task whose commit phase never filled (extension).

        Fig. 4 leaves an unfilled task implicit; without this path a
        commit-phase griefing attack (e.g. a front-runner burning a
        worker slot with an unopenable copied commitment) would lock the
        requester's budget forever.  Only the requester may cancel, only
        while the commit phase is still open, and only after at least
        two full clock periods have passed since publication.
        """
        ctx.require(ctx.sender == self._memory_read("requester"),
                    "only the requester cancels")
        self._require_phase(ctx, PHASE_COMMIT, "cancel")
        ctx.require(ctx.period >= 2, "cancellation window not reached")

        leftover = ctx.ledger.escrow_of(self.address)
        if leftover:
            ctx.ledger.pay(self.address, ctx.sender, leftover, memo="cancelled")
            ctx.meter.charge_value_transfer()
        self._sstore(ctx, "finalized", True)
        self.emit(ctx, "cancelled", payload={"refund": leftover})

    def _pay_worker(
        self,
        ctx: CallContext,
        worker: Address,
        parameters: TaskParameters,
        verdict: str,
    ) -> None:
        ctx.ledger.pay(
            self.address, worker, parameters.reward_per_worker, memo=verdict
        )
        ctx.meter.charge_value_transfer()
        self._sstore(ctx, "adjudicated:" + worker.hex(), verdict)
        self.emit(
            ctx,
            "paid",
            topics=(worker.value,),
            payload={"worker": worker, "amount": parameters.reward_per_worker,
                     "verdict": verdict},
        )

    # ------------------------------------------------------------------
    # Off-chain observation helpers (gas-free; clients and tests)
    # ------------------------------------------------------------------

    def verdict_of(self, worker: Address) -> Optional[str]:
        return self._memory_read("adjudicated:" + worker.hex())

    def committed_workers(self) -> List[Address]:
        return list(self._memory_read("workers", []))

    def is_finalized(self) -> bool:
        return bool(self._memory_read("finalized"))
