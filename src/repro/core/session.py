"""Event-driven HIT sessions: per-task phase machines over the event bus.

The original driver (:func:`repro.core.protocol.run_hit`) was a
lock-step script — every task started at block 0 and marched through
publish → commit → reveal → evaluate → finalize in unison, so staggered
arrivals, stragglers, and dropouts were inexpressible.  This module
inverts the life cycle:

* :class:`HITSession` is an explicit per-task phase state machine that
  mirrors the contract's ``_effective_phase``.  It never calls
  ``mine_block`` and is never handed receipts: it reacts to the events
  the chain's :class:`~repro.chain.eventlog.EventLog` shows it, routed
  through the reactive step methods
  :meth:`~repro.core.worker.WorkerClient.on_event` and
  :meth:`~repro.core.requester.RequesterClient.on_event`.
* :class:`SessionEngine` pumps the clock: each :meth:`SessionEngine.step`
  mines one block (possibly empty — time passes without traffic) and
  delivers that block's events to every registered session.  Any number
  of sessions run concurrently at arbitrary block offsets; sessions in
  the same phase land their transactions in the same block, so all of a
  task's quality rejections ride one ``evaluate_batch`` transaction
  (``evaluation="batched"``) and the chain grows per *phase*, not per
  task.
* :class:`DropScheduler` and :class:`StragglerScheduler` are the
  scenario adversaries: they sit between a worker's reactive steps and
  the mempool, dropping or delaying commits and reveals to exercise the
  contract's Fig. 4 deadlines (a late reveal reverts; an unrevealed slot
  is refunded to the requester at finalization).

``run_hit`` and ``Dragoon.run_hits_batch`` are thin wrappers over this
engine; the lock-step five-block schedule falls out of the state machine
as the special case where everyone acts at the earliest allowed period.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.chain.blocks import Block
from repro.chain.chain import Chain
from repro.chain.eventlog import EventRecord
from repro.chain.network import Scheduler
from repro.core.protocol import (
    ProtocolOutcome,
    gas_report_from_receipts,
)
from repro.core.requester import EvaluationAction, RequesterClient
from repro.core.worker import WorkerClient
from repro.errors import ProtocolError
from repro.ledger.accounts import Address
from repro.obs import registry as _obs
from repro.obs.tracing import get_tracer, span_clock, trace_span
from repro.storage.swarm import SwarmStore

_PHASE_TRANSITIONS = _obs.REGISTRY.counter(
    "session_phase_transitions_total",
    "Session phase transitions, labeled by the phase entered",
    labelnames=("phase",),
)
_PHASE_SECONDS = _obs.REGISTRY.histogram(
    "session_phase_seconds",
    "Wall-clock time a session spent in each phase before leaving it",
    labelnames=("phase",),
)
_DROPPED_STEPS = _obs.REGISTRY.counter(
    "session_dropped_steps_total",
    "Worker steps a scheduling policy refused to send",
)
_ENGINE_STEPS = _obs.REGISTRY.counter(
    "engine_steps_total", "SessionEngine.step invocations"
)
_ENGINE_STEP_SECONDS = _obs.REGISTRY.histogram(
    "engine_step_seconds", "Wall-clock duration of one engine step"
)
_SESSIONS_ACTIVE = _obs.REGISTRY.gauge(
    "sessions_active", "Registered sessions not yet in a terminal phase"
)

# Client-side session phases.  COMMIT/REVEAL/EVALUATE mirror the
# contract's effective phases; FINALIZE covers "window closed, settlement
# transaction in flight"; DONE and CANCELLED are terminal.
SESSION_COMMIT = "commit"
SESSION_REVEAL = "reveal"
SESSION_EVALUATE = "evaluate"
SESSION_FINALIZE = "finalize"
SESSION_DONE = "done"
SESSION_CANCELLED = "cancelled"

TERMINAL_PHASES = (SESSION_DONE, SESSION_CANCELLED)


@dataclass
class SessionConfig:
    """How one session conducts its requester's duties.

    ``evaluation`` selects the phase-3 path: ``"sequential"`` sends one
    ``evaluate``/``outrange`` transaction per rejected worker (the
    paper's literal deployment story), ``"batched"`` folds all quality
    rejections into one ``evaluate_batch`` transaction verified by a
    single random-linear-combination check, and ``"none"`` models the
    silent requester (everyone is paid by default).  ``cancel_after``
    makes the requester reclaim her budget if the commit phase is still
    unfilled that many clock periods after arrival (``None``: wait
    forever).
    """

    evaluation: str = "sequential"  # "sequential" | "batched" | "none"
    cancel_after: Optional[int] = None


class WorkerPolicy:
    """When a worker's due protocol steps actually reach the mempool.

    The honest policy submits every step the moment it becomes due.
    Adversarial subclasses delay (:class:`StragglerScheduler`) or
    suppress (:class:`DropScheduler`) steps; they model worker-side
    behaviour, not network power — the network adversary stays in
    :mod:`repro.chain.network`.
    """

    def schedule(self, step: str, period: int) -> Optional[int]:
        """The period to submit ``step`` at, or ``None`` to never send it."""
        return period


class StragglerScheduler(WorkerPolicy):
    """Delay chosen steps by whole clock periods (late commits/reveals).

    ``StragglerScheduler(reveal=1)`` submits the reveal one period after
    it became due — past the Fig. 4 reveal deadline, so the contract
    rejects it and the worker's slot is refunded to the requester at
    finalization.
    """

    def __init__(self, **delays: int) -> None:
        for step, blocks in delays.items():
            if blocks < 0:
                raise ValueError("cannot deliver %s into the past" % step)
        self.delays = dict(delays)

    def schedule(self, step: str, period: int) -> Optional[int]:
        return period + self.delays.get(step, 0)


class DropScheduler(WorkerPolicy):
    """Suppress chosen steps entirely (worker dropouts).

    ``DropScheduler("reveal")`` commits but never opens — the classic
    mid-task dropout; ``DropScheduler("commit")`` never shows up, which
    leaves the task unfilled until the requester cancels.
    """

    def __init__(self, *steps: str) -> None:
        if not steps:
            raise ValueError("name at least one step to drop")
        self.dropped_steps = frozenset(steps)

    def schedule(self, step: str, period: int) -> Optional[int]:
        if step in self.dropped_steps:
            return None
        return period


class HITSession:
    """The client-side state machine of one published task.

    Mirrors the contract's ``_effective_phase``: the session learns the
    reveal deadline from the ``all_committed`` event (through the
    requester's reactive view) and times every subsequent duty off it,
    exactly as a deployed client would.  All chain interaction goes
    through the registered clients' existing step methods, so
    adversarial client subclasses behave identically under the engine
    and under the old lock-step driver.
    """

    def __init__(
        self,
        chain: Chain,
        swarm: SwarmStore,
        requester: RequesterClient,
        config: Optional[SessionConfig] = None,
        prover_pool=None,
    ) -> None:
        if requester.contract_name is None:
            raise ProtocolError("session requires a published task")
        self.chain = chain
        self.swarm = swarm
        self.requester = requester
        #: Optional :class:`repro.parallel.ProverPool` (usually handed
        #: down by the engine): commit-step encryption is dispatched as
        #: pool jobs and collected at the engine's drain point, so many
        #: sessions' proving overlaps instead of serializing.
        self.prover_pool = prover_pool
        #: Async commit jobs awaiting collection: (worker, job).
        self._pending_async: List[Tuple[WorkerClient, object]] = []
        self.contract_name: str = requester.contract_name
        self.contract_address = chain.contract(self.contract_name).address
        self.config = config or SessionConfig()
        self.workers: List[WorkerClient] = []
        self.phase = SESSION_COMMIT
        self.arrival_period = chain.clock.period
        self.actions: List[EvaluationAction] = []
        #: (block_number, phase) at every transition, for traces/tests.
        self.history: List[Tuple[int, str]] = [
            (max(0, chain.height - 1), SESSION_COMMIT)
        ]
        #: (worker_label, step) pairs a policy refused to send.
        self.dropped: List[Tuple[str, str]] = []
        #: span_clock() at the last phase entry — observability only,
        #: never an input to protocol decisions.
        self._phase_entered = span_clock()
        self._policies: Dict[str, WorkerPolicy] = {}
        self._deferred: List[Tuple[int, str, str, Callable[[], object]]] = []
        self._cancel_requested = False
        self._finalize_sent = False
        self._terminal_phase: Optional[str] = None
        published = chain.events_named("published", self.contract_name)
        if not published:
            raise ProtocolError(
                "no published event for %s" % self.contract_name
            )
        self._published_event = published[0]

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def add_worker(
        self, worker: WorkerClient, policy: Optional[WorkerPolicy] = None
    ) -> WorkerClient:
        """Enroll a worker: discover the task and react to its publication.

        The worker is handed the ``published`` event it would have seen
        on the bus; its :meth:`~repro.core.worker.WorkerClient.on_event`
        answers with the due ``commit`` step, which the policy then
        schedules (immediately, late, or never).
        """
        if worker.discovered is None:
            worker.discover(self.contract_name)
        if self.prover_pool is not None and worker.prover_pool is None:
            worker.prover_pool = self.prover_pool
        self.workers.append(worker)
        if policy is not None:
            self._policies[worker.label] = policy
        for step in worker.on_event(self._published_event):
            self._schedule_worker_step(worker, step, self.chain.clock.period)
        return worker

    @property
    def reveal_deadline(self) -> Optional[int]:
        """The observed Fig. 4 reveal deadline (None while unfilled)."""
        return self.requester.observed_reveal_deadline

    @property
    def finished(self) -> bool:
        return self.phase in TERMINAL_PHASES

    # ------------------------------------------------------------------
    # Event delivery (called by the engine once per mined block)
    # ------------------------------------------------------------------

    def on_block(
        self, block_number: int, period: int, records: Iterable[EventRecord]
    ) -> None:
        """Deliver one block's events, then act on the new clock period."""
        for record in records:
            event = record.event
            self.requester.on_event(event)
            if event.name == "finalized":
                self._terminal_phase = SESSION_DONE
            elif event.name == "cancelled":
                self._terminal_phase = SESSION_CANCELLED
            for worker in self.workers:
                for step in worker.on_event(event):
                    self._schedule_worker_step(worker, step, period)
        self._advance(block_number, period)

    def _schedule_worker_step(
        self, worker: WorkerClient, step: str, period: int
    ) -> None:
        policy = self._policies.get(worker.label)
        due = period if policy is None else policy.schedule(step, period)
        if due is None:
            self.dropped.append((worker.label, step))
            _DROPPED_STEPS.inc()
            return
        submit = worker.send_commit if step == "commit" else worker.send_reveal
        if due <= period:
            if step == "commit" and self.prover_pool is not None:
                # Async handoff: dispatch the encryption now, send the
                # commitment at the engine's drain point (before the
                # next block is mined, so it lands in the same block a
                # synchronous send would).  Meanwhile other sessions'
                # jobs run on the remaining pool workers.
                self._pending_async.append((worker, worker.begin_commit()))
            else:
                submit()
        else:
            self._deferred.append((due, worker.label, step, submit))

    def drain_async_steps(self) -> None:
        """Collect dispatched proving jobs and send their transactions.

        Called by the engine right before it mines the next block;
        collection order is dispatch order, so the mempool sequence is
        independent of how many pool processes raced the jobs.
        """
        pending, self._pending_async = self._pending_async, []
        for worker, job in pending:
            worker.finish_commit(job)

    def _run_deferred(self, period: int) -> None:
        still_waiting = []
        for due, label, step, submit in self._deferred:
            if due <= period:
                submit()
            else:
                still_waiting.append((due, label, step, submit))
        self._deferred = still_waiting

    # ------------------------------------------------------------------
    # The phase state machine
    # ------------------------------------------------------------------

    def _advance(self, block_number: int, period: int) -> None:
        """Fire every transition the new period allows (Fig. 4 timing).

        With everyone honest this advances one phase per block — the
        lock-step schedule — but the ``>=`` guards let a session catch
        up after idle blocks, which is what staggered scenarios need.
        """
        if self.finished:
            return
        self._run_deferred(period)
        if self._terminal_phase is not None:
            # Which terminal event actually arrived decides the phase: a
            # cancel that reverted (a late commit filled the task in the
            # same block) still runs to DONE through finalization.
            self._set_phase(block_number, self._terminal_phase)
            return
        deadline = self.reveal_deadline
        if self.phase == SESSION_COMMIT:
            if deadline is not None:
                self._set_phase(block_number, SESSION_REVEAL)
            elif self._commit_phase_timed_out(period) and not self._cancel_requested:
                self._cancel_requested = True
                self.requester.send_cancel()
        if self.phase == SESSION_REVEAL and deadline is not None:
            if period >= deadline + 1:
                self._set_phase(block_number, SESSION_EVALUATE)
                self._evaluate()
        if self.phase == SESSION_EVALUATE and deadline is not None:
            if period >= deadline + 2 and not self._finalize_sent:
                self._finalize_sent = True
                self._set_phase(block_number, SESSION_FINALIZE)
                self.requester.send_finalize()

    def scheduled_until(self) -> Optional[int]:
        """The latest clock period at which this session still expects
        self-scheduled progress: a policy-deferred worker step, or a
        pending ``cancel_after`` timeout on an unfilled commit phase.
        ``None`` when nothing is scheduled — a session idle past this
        period is genuinely stuck, not waiting.
        """
        dues = [due for due, _, _, _ in self._deferred]
        if (
            self.phase == SESSION_COMMIT
            and not self._cancel_requested
            and self.config.cancel_after is not None
        ):
            # The cancel fires no earlier than period 2 (contract rule).
            dues.append(max(2, self.arrival_period + self.config.cancel_after))
        return max(dues) if dues else None

    def _commit_phase_timed_out(self, period: int) -> bool:
        after = self.config.cancel_after
        # The contract only accepts cancellations from period 2 on; a
        # cancel submitted now executes at this same period number.
        return (
            after is not None
            and period >= 2
            and period - self.arrival_period >= after
        )

    def _evaluate(self) -> None:
        mode = self.config.evaluation
        if mode == "none":
            return
        if mode == "batched":
            self.actions = self.requester.evaluate_all_batched()
        elif mode == "sequential":
            self.actions = self.requester.evaluate_all()
        else:
            raise ProtocolError("unknown evaluation mode: %r" % mode)

    def _set_phase(self, block_number: int, phase: str) -> None:
        now = span_clock()
        entered = getattr(self, "_phase_entered", now)
        _PHASE_SECONDS.observe(now - entered, phase=self.phase)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(
                "session.phase",
                entered,
                now,
                parent=tracer.current_span_id(),
                attrs={
                    "task": self.contract_name,
                    "phase": self.phase,
                    "next": phase,
                    "block": block_number,
                },
            )
        self.phase = phase
        self._phase_entered = now
        _PHASE_TRANSITIONS.inc(phase=phase)
        self.history.append((block_number, phase))

    # ------------------------------------------------------------------
    # Outcome
    # ------------------------------------------------------------------

    def receipts(self):
        """Every receipt this task's contract produced, in chain order."""
        return [
            receipt
            for block in self.chain.blocks
            for receipt in block.receipts
            if receipt.transaction.contract == self.contract_name
        ]

    def outcome(self) -> ProtocolOutcome:
        """The finished session, packaged like the lock-step driver's."""
        contract = self.chain.contract(self.contract_name)
        receipts = self.receipts()
        return ProtocolOutcome(
            chain=self.chain,
            swarm=self.swarm,
            requester=self.requester,
            workers=self.workers,
            contract=contract,
            actions=self.actions,
            gas=gas_report_from_receipts(receipts),
            receipts=receipts,
        )


@dataclass
class BlockTrace:
    """What one engine step looked like (the CLI's per-block trace)."""

    block_number: int
    period: int
    transactions: int
    events: List[Tuple[str, str]] = field(default_factory=list)  # (task, event)
    phases: Dict[str, str] = field(default_factory=dict)  # task -> phase


class SessionEngine:
    """Pumps the clock and routes each block's events to its sessions.

    One engine owns one chain (and its Swarm store) and any number of
    concurrent sessions at arbitrary offsets: tasks may arrive
    mid-stream (:meth:`publish_session` between steps), and each
    :meth:`step` mines exactly one block — empty if nobody acted — then
    delivers the block's events to every session whose contract emitted
    them.  Same-phase sessions therefore share blocks, which is what
    collapses N tasks to five blocks and routes all of a task's quality
    rejections through one batched verification.
    """

    def __init__(
        self,
        chain: Optional[Chain] = None,
        swarm: Optional[SwarmStore] = None,
        scheduler: Optional[Scheduler] = None,
        prover_pool=None,
    ) -> None:
        if chain is not None and scheduler is not None:
            raise ProtocolError("pass a scheduler or a chain, not both")
        self.chain = chain if chain is not None else Chain(scheduler=scheduler)
        self.swarm = swarm if swarm is not None else SwarmStore()
        #: Optional :class:`repro.parallel.ProverPool`, handed to every
        #: registered session (and through it to clients): proof
        #: generation then pipelines against block mining.
        self.prover_pool = prover_pool
        self.sessions: List[HITSession] = []
        self._by_address: Dict[Address, HITSession] = {}
        self.trace: List[BlockTrace] = []
        # The engine's own cursor: each step polls only the events that
        # appeared since the last one (including any deployment blocks
        # sealed between steps), never rescanning the log.
        self._subscription = self.chain.subscribe()

    # ------------------------------------------------------------------
    # Session registration
    # ------------------------------------------------------------------

    def publish_session(
        self,
        requester: RequesterClient,
        contract_name: Optional[str] = None,
        config: Optional[SessionConfig] = None,
    ) -> HITSession:
        """Publish the requester's task now and register its session."""
        receipt = requester.publish(contract_name=contract_name)
        if not receipt.succeeded:
            raise ProtocolError("publish failed: %s" % receipt.revert_reason)
        return self.register(requester, config=config)

    def register(
        self,
        requester: RequesterClient,
        config: Optional[SessionConfig] = None,
    ) -> HITSession:
        """Adopt an already-published task (e.g. from a batched deploy)."""
        if self.prover_pool is not None and requester.prover_pool is None:
            requester.prover_pool = self.prover_pool
        session = HITSession(
            self.chain,
            self.swarm,
            requester,
            config=config,
            prover_pool=self.prover_pool,
        )
        self.sessions.append(session)
        self._by_address[session.contract_address] = session
        return session

    # ------------------------------------------------------------------
    # The pump
    # ------------------------------------------------------------------

    def step(self) -> Block:
        """Mine one block and deliver its events to the sessions."""
        started = span_clock()
        with trace_span("engine.step", sessions=len(self.sessions)) as span:
            # Collect the proving jobs dispatched while the previous
            # block's events were delivered — their transactions enter
            # the mempool now, in dispatch order, and ride the block
            # mined right after (the same one a synchronous submission
            # would have ridden).
            for session in self.sessions:
                session.drain_async_steps()
            block = self.chain.mine_block()
            period = self.chain.clock.period
            routed: Dict[Address, List[EventRecord]] = {}
            for record in self._subscription.poll():
                routed.setdefault(record.event.contract, []).append(record)
            trace = BlockTrace(block.number, period, len(block.transactions))
            for session in self.sessions:
                if session.finished:
                    continue
                records = routed.get(session.contract_address, [])
                session.on_block(block.number, period, records)
                trace.events.extend(
                    (session.contract_name, record.event.name)
                    for record in records
                )
                trace.phases[session.contract_name] = session.phase
            self.trace.append(trace)
            span.set(block=block.number)
        _ENGINE_STEPS.inc()
        _SESSIONS_ACTIVE.set(len(self.active_sessions()))
        _ENGINE_STEP_SECONDS.observe(span_clock() - started)
        return block

    def active_sessions(self) -> List[HITSession]:
        return [session for session in self.sessions if not session.finished]

    @property
    def all_done(self) -> bool:
        return not self.active_sessions()

    def describe_stuck(self, limit: int = 8) -> str:
        """Name the unfinished sessions and their phases (error messages)."""
        active = self.active_sessions()
        shown = ", ".join(
            "%s (phase=%s)" % (session.contract_name, session.phase)
            for session in active[:limit]
        )
        if len(active) > limit:
            shown += ", ... %d more" % (len(active) - limit)
        return shown or "none"

    def run(self, max_blocks: int = 256) -> int:
        """Step until every session settles; returns the blocks mined.

        Raises :class:`ProtocolError` naming the stuck sessions if they
        are still open after ``max_blocks`` — an unfilled task with no
        ``cancel_after`` is the usual culprit.
        """
        mined = 0
        while not self.all_done:
            if mined >= max_blocks:
                raise ProtocolError(
                    "%d sessions still open after %d blocks: %s"
                    % (len(self.active_sessions()), mined, self.describe_stuck())
                )
            self.step()
            mined += 1
        return mined
