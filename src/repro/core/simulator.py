"""The ideal/real correspondence harness (paper §V-D, Theorem 1).

The paper proves Π_hit realizes F_hit by exhibiting a simulator S.  A
full cryptographic proof is out of scope for a test suite, but the
*observable consequence* of the theorem is mechanically checkable: for
any scripted scenario, running the real protocol (contract + clients +
chain) and the ideal functionality (trusted party + ledger) must produce

* identical payment vectors,
* matching accept/reject verdicts per worker, and
* an ideal-world leakage trace that upper-bounds what the real-world
  adversary observes (sizes and public parameters, never plaintext
  answers outside the opened gold positions).

:func:`run_ideal_mirror` replays a real-world scenario in the ideal
world; :func:`compare_worlds` runs both and reports the differences
(an empty report = the distinguisher loses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.ideal import IdealHIT, IdealOutcome
from repro.core.protocol import ProtocolOutcome, run_hit
from repro.core.task import HITTask
from repro.ledger.accounts import Address
from repro.ledger.ledger import Ledger


@dataclass
class WorldComparison:
    """The distinguisher's view: differences between the two worlds."""

    real_payments: Dict[str, int]
    ideal_payments: Dict[str, int]
    real_verdict_kinds: Dict[str, Optional[str]]
    ideal_verdict_kinds: Dict[str, Optional[str]]
    differences: List[str] = field(default_factory=list)

    @property
    def indistinguishable(self) -> bool:
        return not self.differences


def _verdict_kind(verdict: Optional[str]) -> Optional[str]:
    """Collapse verdict strings to their payment-relevant kind."""
    if verdict is None:
        return None
    if verdict.startswith("paid"):
        return "paid"
    if verdict.startswith("rejected"):
        return "rejected"
    return verdict


def run_ideal_mirror(
    task: HITTask,
    worker_answers: Sequence[Optional[Sequence[int]]],
    worker_labels: Optional[Sequence[str]] = None,
    requester_label: str = "requester",
    requester_evaluates: bool = True,
) -> IdealOutcome:
    """Execute the same scenario inside F_hit with a fresh ledger.

    ``worker_answers`` may contain ``None`` for a worker who commits but
    never reveals (the ⊥ submission of Fig. 2).
    """
    parameters = task.parameters
    labels = list(
        worker_labels
        if worker_labels is not None
        else ["worker-%d" % i for i in range(parameters.num_workers)]
    )
    ledger = Ledger()
    requester = Address.from_label(requester_label)
    ledger.open_account(requester, parameters.budget)
    worker_addresses = [Address.from_label(label) for label in labels]
    for address in worker_addresses:
        ledger.open_account(address, 0)

    functionality = IdealHIT(ledger, Address.from_label("F_hit"))
    assert functionality.publish(
        requester, parameters, task.gold_indexes, task.gold_answers
    )
    for address, answers in zip(worker_addresses, worker_answers):
        functionality.answer(address, answers)

    if requester_evaluates:
        # The honest requester evaluates every submission; out-of-range
        # answers are disputed per position, others by quality.
        for address, answers in zip(worker_addresses, worker_answers):
            if answers is None:
                continue
            out_of_range = [
                i
                for i, a in enumerate(answers)
                if a not in parameters.answer_range
            ]
            if out_of_range:
                functionality.outrange(address, out_of_range[0])
            else:
                functionality.evaluate(address)
    return functionality.finalize()


def compare_worlds(
    task: HITTask,
    worker_answers: Sequence[Sequence[int]],
    requester_evaluates: bool = True,
    real_outcome: Optional[ProtocolOutcome] = None,
) -> WorldComparison:
    """Run the real and ideal worlds on one scenario and diff the outputs."""
    real = (
        real_outcome
        if real_outcome is not None
        else run_hit(task, worker_answers, requester_evaluates=requester_evaluates)
    )
    ideal = run_ideal_mirror(
        task,
        worker_answers,
        worker_labels=[w.label for w in real.workers],
        requester_evaluates=requester_evaluates,
    )

    real_payments = real.payments()
    real_verdicts = {k: _verdict_kind(v) for k, v in real.verdicts().items()}
    ideal_verdicts = {k: _verdict_kind(v) for k, v in ideal.verdicts.items()}

    differences: List[str] = []
    for label in real_payments:
        if real_payments[label] != ideal.payments.get(label):
            differences.append(
                "payment mismatch for %s: real=%d ideal=%s"
                % (label, real_payments[label], ideal.payments.get(label))
            )
        if real_verdicts.get(label) != ideal_verdicts.get(label):
            differences.append(
                "verdict mismatch for %s: real=%s ideal=%s"
                % (label, real_verdicts.get(label), ideal_verdicts.get(label))
            )
    return WorldComparison(
        real_payments=real_payments,
        ideal_payments=ideal.payments,
        real_verdict_kinds=real_verdicts,
        ideal_verdict_kinds=ideal_verdicts,
        differences=differences,
    )


def leakage_is_plaintext_free(
    leakage: Sequence, answers: Sequence[Sequence[int]], gold_indexes: Sequence[int]
) -> bool:
    """Check the ideal leakage never contains non-gold answer values.

    The only answer material in F_hit's trace is the gold standard
    itself (after the audit reveal); everything else is lengths and
    public parameters.  Used by the confidentiality tests.
    """
    gold_set = set(gold_indexes)
    for leak in leakage:
        if leak.tag == "answered" or leak.tag == "answering":
            # payload is (label, length) — lengths only.
            if len(leak.payload) != 2:
                return False
        if leak.tag == "evaluated":
            continue  # gold standards are public after audit
    # Non-gold answers must not appear anywhere in the trace payloads.
    flattened = []
    for leak in leakage:
        for item in leak.payload:
            if isinstance(item, tuple):
                flattened.extend(item)
            else:
                flattened.append(item)
    non_gold_values = [
        vector[i]
        for vector in answers
        if vector is not None
        for i in range(len(vector))
        if i not in gold_set
    ]
    # Lengths and parameters may numerically collide with answer values;
    # the meaningful check is that full answer vectors never leak.
    for vector in answers:
        if vector is not None and tuple(vector) in [
            item for item in flattened if isinstance(item, tuple)
        ]:
            return False
    return True
