"""Homomorphic answer aggregation: what the requester does with the data.

Dragoon's output is a pile of per-worker encrypted answer vectors.  For
the ImageNet-style use case the requester usually wants the *consensus*
label per question.  Exponential ElGamal is additively homomorphic, so
for binary questions the requester can sum the ciphertexts of all
qualified workers per question *before* decrypting — one baby-step/
giant-step decryption of a small count per question instead of one per
worker-question pair, and the individual responses of workers never
need to be materialized side by side.

This module also hosts the plaintext-side utilities: majority voting
with tie handling and inter-worker agreement statistics, which are how
ImageNet-style pipelines assess collected annotations [2, 12].
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.elgamal import Ciphertext, ElGamalSecretKey
from repro.errors import ProtocolError


@dataclass(frozen=True)
class ConsensusResult:
    """Per-question consensus over a set of submissions."""

    labels: Tuple[int, ...]  # winning option per question
    support: Tuple[int, ...]  # votes for the winner per question
    num_workers: int

    def agreement_rate(self) -> float:
        """Mean fraction of workers agreeing with the consensus label."""
        if not self.labels or self.num_workers == 0:
            return 0.0
        return sum(self.support) / (len(self.support) * self.num_workers)


def homomorphic_tally(
    secret_key: ElGamalSecretKey,
    submissions: Sequence[Sequence[Ciphertext]],
) -> List[int]:
    """Per-question sums of *binary* answers, computed under encryption.

    Adds the ciphertexts of all workers position-wise and decrypts each
    aggregate with BSGS.  The result at position ``i`` is the number of
    workers who answered 1 on question ``i``.
    """
    if not submissions:
        return []
    length = len(submissions[0])
    if any(len(vector) != length for vector in submissions):
        raise ProtocolError("all submissions must cover the same questions")
    tallies: List[int] = []
    for position in range(length):
        aggregate: Optional[Ciphertext] = None
        for vector in submissions:
            aggregate = (
                vector[position]
                if aggregate is None
                else aggregate + vector[position]
            )
        assert aggregate is not None
        tallies.append(secret_key.decrypt_bsgs(aggregate, len(submissions)))
    return tallies


def binary_consensus_from_tally(
    tallies: Sequence[int], num_workers: int, tie_break: int = 1
) -> ConsensusResult:
    """Majority labels for binary questions from a homomorphic tally."""
    labels: List[int] = []
    support: List[int] = []
    for ones in tallies:
        zeros = num_workers - ones
        if ones > zeros:
            labels.append(1)
            support.append(ones)
        elif zeros > ones:
            labels.append(0)
            support.append(zeros)
        else:
            labels.append(tie_break)
            support.append(ones)
    return ConsensusResult(tuple(labels), tuple(support), num_workers)


def majority_vote(
    answer_sets: Sequence[Sequence[int]], tie_break: Optional[int] = None
) -> ConsensusResult:
    """Plaintext majority vote over arbitrary option ranges.

    Ties resolve to ``tie_break`` when given, else to the smallest tied
    option (deterministic).
    """
    if not answer_sets:
        raise ProtocolError("majority vote needs at least one submission")
    length = len(answer_sets[0])
    if any(len(a) != length for a in answer_sets):
        raise ProtocolError("all submissions must cover the same questions")
    labels: List[int] = []
    support: List[int] = []
    for position in range(length):
        votes = Counter(answers[position] for answers in answer_sets)
        top_count = max(votes.values())
        tied = sorted(option for option, count in votes.items()
                      if count == top_count)
        if len(tied) > 1 and tie_break is not None and tie_break in tied:
            winner = tie_break
        else:
            winner = tied[0]
        labels.append(winner)
        support.append(votes[winner])
    return ConsensusResult(tuple(labels), tuple(support), len(answer_sets))


def pairwise_agreement(answer_sets: Sequence[Sequence[int]]) -> float:
    """Mean pairwise agreement between workers (a simple quality signal)."""
    workers = len(answer_sets)
    if workers < 2:
        return 1.0
    length = len(answer_sets[0])
    total = 0
    pairs = 0
    for i in range(workers):
        for j in range(i + 1, workers):
            pairs += 1
            total += sum(
                1
                for a, b in zip(answer_sets[i], answer_sets[j])
                if a == b
            ) / length
    return total / pairs


def accuracy_against_truth(
    answers: Sequence[int], ground_truth: Sequence[int]
) -> float:
    """Fraction of positions matching a reference labeling."""
    if len(answers) != len(ground_truth):
        raise ProtocolError("length mismatch against ground truth")
    if not answers:
        return 1.0
    return sum(1 for a, t in zip(answers, ground_truth) if a == t) / len(answers)
