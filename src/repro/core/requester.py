"""The requester client (paper Fig. 5, requester side).

The requester manages one ElGamal key pair across all her tasks (the
paper notes this is safe because every protocol script is simulatable
without the secret key).  Her protocol duties:

1. *Publish*: push the question blob to Swarm, commit to the gold
   standards, deploy the HIT contract with the budget frozen.
2. *Evaluate*: after reveals, decrypt every submission off-chain, open
   the gold-standard commitment on-chain, and for each worker below the
   quality threshold send a PoQoEA rejection (or an out-of-range
   verifiable decryption).  Acceptable submissions need no transaction —
   the contract pays them by default at finalization, which is what makes
   the happy path cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.chain.chain import Chain
from repro.chain.transactions import Receipt, Transaction
from repro.core.hit_contract import CIPHERTEXT_BYTES, HITContract
from repro.core.task import HITTask
from repro.crypto.commitment import commit as make_commitment
from repro.crypto.elgamal import Ciphertext, ElGamalSecretKey, keygen
from repro.crypto.poqoea import QualityProof, prove_quality
from repro.crypto.vpke import DecryptionProof, prove_decryption
from repro.ledger.accounts import Address
from repro.storage.swarm import SwarmStore
from repro.utils.serialization import int_to_bytes


@dataclass
class EvaluationAction:
    """What the requester decided to do about one worker's submission."""

    worker: Address
    kind: str  # "accept" | "reject-quality" | "reject-outrange"
    quality: Optional[int] = None
    transaction: Optional[Transaction] = None


class _ImmediateResult:
    """A pre-computed value behind the pool-job ``result()`` interface."""

    __slots__ = ("_value",)

    def __init__(self, value) -> None:
        self._value = value

    def result(self):
        return self._value


class RequesterClient:
    """An honest requester; adversarial variants subclass the hooks."""

    def __init__(
        self,
        label: str,
        task: HITTask,
        chain: Chain,
        swarm: SwarmStore,
        balance: Optional[int] = None,
        secret: Optional[int] = None,
        prover_pool=None,
    ) -> None:
        self.label = label
        self.task = task
        self.chain = chain
        self.swarm = swarm
        #: Optional :class:`repro.parallel.ProverPool`; when set, PoQoEA
        #: and VPKE proof generation run as pool jobs.
        self.prover_pool = prover_pool
        budget = task.parameters.budget
        self.address = chain.register_account(
            label, budget if balance is None else balance
        )
        self.public_key, self.secret_key = keygen(secret)
        self.contract_name: Optional[str] = None
        self._golden_key: Optional[bytes] = None
        self.observed_reveal_deadline: Optional[int] = None
        self.observed_finished = False

    # ------------------------------------------------------------------
    # Phase 1: publish
    # ------------------------------------------------------------------

    def prepare_publish(
        self, contract_name: Optional[str] = None
    ) -> Tuple[HITContract, Tuple, bytes]:
        """Build the deployment of this task without sending it.

        Pushes the question blob to Swarm and commits to the golds, then
        returns ``(contract, args, payload)`` ready for
        :meth:`repro.chain.chain.Chain.deploy` — or, batched with other
        tasks' deployments, for :meth:`~repro.chain.chain.Chain.deploy_many`.
        """
        name = contract_name or ("hit:" + self.label)
        task_digest = self.swarm.put(self.task.questions_blob())
        commitment, self._golden_key = make_commitment(self.task.golden_blob())

        params_json = self.task.parameters.to_json()
        pubkey_bytes = self.public_key.to_bytes()
        payload = (
            params_json.encode("utf-8")
            + pubkey_bytes
            + commitment.digest
            + task_digest
        )
        contract = HITContract(name)
        args = (params_json, pubkey_bytes, commitment.digest, task_digest)
        return contract, args, payload

    def publish(self, contract_name: Optional[str] = None) -> Receipt:
        """Deploy the HIT contract; returns the deployment receipt."""
        contract, args, payload = self.prepare_publish(contract_name)
        receipt = self.chain.deploy(
            contract, self.address, args=args, payload=payload
        )
        if receipt.succeeded:
            self.contract_name = contract.name
        return receipt

    # ------------------------------------------------------------------
    # Reactive step function (the session engine's hook)
    # ------------------------------------------------------------------

    def on_event(self, event) -> List[str]:
        """React to one chain event of this requester's task.

        The requester's duties are deadline-driven rather than
        event-driven (she evaluates when the reveal window closes and
        finalizes when the evaluation window closes, whether or not
        anything happened), so this method records the observed phase
        boundaries — ``observed_reveal_deadline`` from the contract's
        ``all_committed`` event, ``observed_finished`` from
        ``finalized``/``cancelled`` — and returns no immediate steps.
        The :class:`~repro.core.session.HITSession` state machine reads
        these observations to time ``evaluate_all`` and
        ``send_finalize``.
        """
        if event.name == "all_committed":
            self.observed_reveal_deadline = event.payload["reveal_deadline"]
        elif event.name in ("finalized", "cancelled"):
            self.observed_finished = True
        return []

    # ------------------------------------------------------------------
    # Phase 3: evaluate
    # ------------------------------------------------------------------

    def collect_submissions(self) -> Dict[Address, bytes]:
        """Read every worker's revealed ciphertext vector from the logs."""
        assert self.contract_name is not None, "publish first"
        submissions: Dict[Address, bytes] = {}
        for event in self.chain.events_named("revealed", self.contract_name):
            payload = event.payload
            submissions[payload["worker"]] = payload["ciphertexts"]
        return submissions

    def decrypt_submission(
        self, ciphertext_bytes: bytes
    ) -> Tuple[List[Ciphertext], List[Union[int, object]]]:
        """Split and decrypt one revealed vector."""
        count = len(ciphertext_bytes) // CIPHERTEXT_BYTES
        ciphertexts = [
            Ciphertext.from_bytes(
                ciphertext_bytes[i * CIPHERTEXT_BYTES : (i + 1) * CIPHERTEXT_BYTES]
            )
            for i in range(count)
        ]
        plaintexts = self.secret_key.decrypt_vector(
            ciphertexts, self.task.parameters.answer_range
        )
        return ciphertexts, plaintexts

    def send_golden(self) -> Transaction:
        """Open the gold-standard commitment on-chain."""
        assert self.contract_name is not None and self._golden_key is not None
        blob = self.task.golden_blob()
        return self.chain.send(
            self.address,
            self.contract_name,
            "golden",
            args=(blob, self._golden_key),
            payload=blob + self._golden_key,
        )

    def evaluate_all(self) -> List[EvaluationAction]:
        """Decide accept/reject for every submission and send the txs.

        Sends the ``golden`` opening first, then one ``evaluate`` or
        ``outrange`` transaction per rejected worker.  Accepted workers
        get no transaction (they are paid by default at finalize).
        """
        self.send_golden()
        actions: List[EvaluationAction] = []
        for worker, ciphertext_bytes in sorted(
            self.collect_submissions().items(), key=lambda item: item[0].hex()
        ):
            actions.append(self._evaluate_one(worker, ciphertext_bytes))
        return actions

    def evaluate_all_batched(self) -> List[EvaluationAction]:
        """Like :meth:`evaluate_all`, but all quality rejections ride one
        ``evaluate_batch`` transaction.

        The contract then verifies every rejected worker's VPKE proofs
        in a single random-linear-combination check instead of one
        6-ecMul check per proof.  Out-of-range disputes (rare) still go
        as individual ``outrange`` transactions, and accepted workers
        still cost nothing.
        """
        self.send_golden()
        actions: List[EvaluationAction] = []
        batch: List[Tuple[Address, int, QualityProof, Dict[int, bytes]]] = []
        batch_payload = b""
        batch_actions: List[EvaluationAction] = []
        # Classify everything first, dispatching each rejection's PoQoEA
        # proof as it is found — with a prover pool the proofs for many
        # rejected workers generate concurrently while classification
        # (decryption) continues; without one each job runs inline at
        # collection.  Transaction order is unchanged either way:
        # outrange disputes during the scan, one batch at the end.
        pending: List[Tuple[Address, bytes, EvaluationAction, object]] = []
        for worker, ciphertext_bytes in sorted(
            self.collect_submissions().items(), key=lambda item: item[0].hex()
        ):
            kind, quality, ciphertexts, outrange_index = self._classify_submission(
                ciphertext_bytes
            )
            if kind == "reject-outrange":
                transaction = self._send_outrange(
                    worker, outrange_index, ciphertexts[outrange_index],
                    ciphertext_bytes,
                )
                actions.append(
                    EvaluationAction(worker, "reject-outrange", None, transaction)
                )
                continue
            if kind == "accept":
                actions.append(EvaluationAction(worker, "accept", quality, None))
                continue

            action = EvaluationAction(worker, "reject-quality", quality, None)
            pending.append(
                (worker, ciphertext_bytes, action,
                 self.submit_quality_proof(ciphertexts))
            )
            actions.append(action)

        for worker, ciphertext_bytes, action, job in pending:
            proved_quality, proof = job.result()
            gold_chunks, payload = self._rejection_packaging(
                worker, proved_quality, proof, ciphertext_bytes
            )
            batch.append((worker, proved_quality, proof, gold_chunks))
            batch_payload += payload
            batch_actions.append(action)

        if batch:
            transaction = self.chain.send(
                self.address,
                self.contract_name,
                "evaluate_batch",
                args=(batch,),
                payload=batch_payload,
            )
            for action in batch_actions:
                action.transaction = transaction
        return actions

    def _classify_submission(
        self, ciphertext_bytes: bytes
    ) -> Tuple[str, Optional[int], List[Ciphertext], Optional[int]]:
        """Decrypt one submission and decide its fate.

        Returns ``(kind, quality, ciphertexts, outrange_index)`` where
        ``kind`` is ``accept`` / ``reject-quality`` / ``reject-outrange``
        (quality is None for outrange; outrange_index is None otherwise).
        """
        ciphertexts, plaintexts = self.decrypt_submission(ciphertext_bytes)
        for index, plaintext in enumerate(plaintexts):
            if not isinstance(plaintext, int):
                return "reject-outrange", None, ciphertexts, index
        quality = self.task.quality_of(list(plaintexts))
        if quality >= self.task.parameters.quality_threshold:
            return "accept", quality, ciphertexts, None
        return "reject-quality", quality, ciphertexts, None

    def _quality_rejection_material(
        self,
        worker: Address,
        ciphertexts: Sequence[Ciphertext],
        full_vector: bytes,
    ) -> Tuple[int, QualityProof, Dict[int, bytes], bytes]:
        """The proof, gold-position chunks, and payload of one rejection."""
        quality, proof = self.make_quality_proof(ciphertexts)
        gold_chunks, payload = self._rejection_packaging(
            worker, quality, proof, full_vector
        )
        return quality, proof, gold_chunks, payload

    def _rejection_packaging(
        self,
        worker: Address,
        quality: int,
        proof: QualityProof,
        full_vector: bytes,
    ) -> Tuple[Dict[int, bytes], bytes]:
        """The gold-position chunks and payload of one proved rejection."""
        gold_chunks = {
            entry.index: full_vector[
                entry.index * CIPHERTEXT_BYTES
                : (entry.index + 1) * CIPHERTEXT_BYTES
            ]
            for entry in proof.entries
        }
        payload = worker.value + int_to_bytes(quality, 4) + proof.to_bytes()
        for chunk in gold_chunks.values():
            payload += chunk
        return gold_chunks, payload

    def _evaluate_one(
        self, worker: Address, ciphertext_bytes: bytes
    ) -> EvaluationAction:
        kind, quality, ciphertexts, outrange_index = self._classify_submission(
            ciphertext_bytes
        )
        if kind == "reject-outrange":
            # Out-of-range answers are disputed with a single verifiable
            # decryption of the offending position.
            transaction = self._send_outrange(
                worker, outrange_index, ciphertexts[outrange_index],
                ciphertext_bytes,
            )
            return EvaluationAction(worker, "reject-outrange", None, transaction)
        if kind == "accept":
            return EvaluationAction(worker, "accept", quality, None)
        transaction = self._send_quality_rejection(
            worker, ciphertexts, ciphertext_bytes
        )
        return EvaluationAction(worker, "reject-quality", quality, transaction)

    def _send_outrange(
        self,
        worker: Address,
        index: int,
        ciphertext: Ciphertext,
        full_vector: bytes,
    ) -> Transaction:
        if self.prover_pool is not None:
            claim, proof = self.prover_pool.prove_decryption(
                self.secret_key, ciphertext,
                list(self.task.parameters.answer_range),
            )
        else:
            claim, proof = prove_decryption(
                self.secret_key, ciphertext, self.task.parameters.answer_range
            )
        chunk = full_vector[index * CIPHERTEXT_BYTES : (index + 1) * CIPHERTEXT_BYTES]
        payload = (
            worker.value
            + int_to_bytes(index, 4)
            + (int_to_bytes(claim, 33) if isinstance(claim, int) else claim.to_bytes())
            + proof.to_bytes()
            + chunk
        )
        return self.chain.send(
            self.address,
            self.contract_name,
            "outrange",
            args=(worker, index, claim, proof, chunk),
            payload=payload,
        )

    def _send_quality_rejection(
        self,
        worker: Address,
        ciphertexts: Sequence[Ciphertext],
        full_vector: bytes,
    ) -> Transaction:
        quality, proof, gold_chunks, payload = self._quality_rejection_material(
            worker, ciphertexts, full_vector
        )
        return self.chain.send(
            self.address,
            self.contract_name,
            "evaluate",
            args=(worker, quality, proof, gold_chunks),
            payload=payload,
        )

    def make_quality_proof(
        self, ciphertexts: Sequence[Ciphertext]
    ) -> Tuple[int, QualityProof]:
        """Produce the PoQoEA proof for one submission (hook for attacks)."""
        if self.prover_pool is not None:
            return self.prover_pool.prove_quality(
                self.secret_key,
                list(ciphertexts),
                self.task.gold_indexes,
                self.task.gold_answers,
                list(self.task.parameters.answer_range),
            )
        return prove_quality(
            self.secret_key,
            list(ciphertexts),
            self.task.gold_indexes,
            self.task.gold_answers,
            list(self.task.parameters.answer_range),
        )

    def submit_quality_proof(self, ciphertexts: Sequence[Ciphertext]):
        """Dispatch one PoQoEA proof; returns an object with ``result()``.

        With a prover pool (and the stock :meth:`make_quality_proof`)
        the proof generates in a worker process.  Adversarial
        subclasses that override :meth:`make_quality_proof` keep their
        behaviour: the override runs inline and is wrapped in an
        immediate result.
        """
        if (
            self.prover_pool is not None
            and type(self).make_quality_proof is RequesterClient.make_quality_proof
        ):
            return self.prover_pool.submit_prove_quality(
                self.secret_key,
                list(ciphertexts),
                self.task.gold_indexes,
                self.task.gold_answers,
                list(self.task.parameters.answer_range),
            )
        return _ImmediateResult(self.make_quality_proof(ciphertexts))

    def send_finalize(self) -> Transaction:
        """Poke the contract to settle (anyone may; usually the requester)."""
        assert self.contract_name is not None
        return self.chain.send(
            self.address, self.contract_name, "finalize", args=(), payload=b""
        )

    def send_cancel(self) -> Transaction:
        """Reclaim the budget of a task whose commit phase never filled."""
        assert self.contract_name is not None
        return self.chain.send(
            self.address, self.contract_name, "cancel", args=(), payload=b""
        )
