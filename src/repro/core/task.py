"""HIT task model: batched multiple-choice questions with gold standards.

A task (paper §IV) is a sequence of ``N`` multiple-choice questions whose
answers lie in a small ``range``.  A secret subset ``G`` of positions are
gold-standard questions with known answers ``Gs``; a worker's *quality*
is the number of gold positions answered correctly, and a worker is paid
``B/K`` iff quality reaches the threshold ``Θ``.

:class:`TaskParameters` is the public on-chain part; :class:`HITTask`
adds the requester's secrets (the gold set and, for synthetic workloads,
a full ground truth used by the answer generator).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.crypto.poqoea import compute_quality
from repro.errors import AnswerError, TaskSpecError


@dataclass(frozen=True)
class TaskParameters:
    """The public parameters published on-chain (Fig. 4, phase 1)."""

    num_questions: int  # N
    budget: int  # B, in ledger coins
    num_workers: int  # K
    answer_range: Tuple[int, ...]  # allowed options per question
    quality_threshold: int  # Θ
    num_golds: int  # |G| (public; the positions stay secret)

    def __post_init__(self) -> None:
        if self.num_questions <= 0:
            raise TaskSpecError("a task needs at least one question")
        if self.num_workers <= 0:
            raise TaskSpecError("a task needs at least one worker slot")
        if self.budget < self.num_workers:
            raise TaskSpecError("budget must cover at least 1 coin per worker")
        if self.budget % self.num_workers != 0:
            raise TaskSpecError("budget must split evenly across K workers")
        if len(self.answer_range) < 2:
            raise TaskSpecError("questions need at least two options")
        if len(set(self.answer_range)) != len(self.answer_range):
            raise TaskSpecError("answer range contains duplicates")
        if any(option < 0 for option in self.answer_range):
            raise TaskSpecError("answer options must be non-negative")
        if not 0 < self.num_golds <= self.num_questions:
            raise TaskSpecError("gold count must be in [1, N]")
        if not 0 <= self.quality_threshold <= self.num_golds:
            raise TaskSpecError("threshold must be in [0, |G|]")

    @property
    def reward_per_worker(self) -> int:
        return self.budget // self.num_workers

    def to_json(self) -> str:
        return json.dumps(
            {
                "num_questions": self.num_questions,
                "budget": self.budget,
                "num_workers": self.num_workers,
                "answer_range": list(self.answer_range),
                "quality_threshold": self.quality_threshold,
                "num_golds": self.num_golds,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, raw: str) -> "TaskParameters":
        data = json.loads(raw)
        return cls(
            num_questions=data["num_questions"],
            budget=data["budget"],
            num_workers=data["num_workers"],
            answer_range=tuple(data["answer_range"]),
            quality_threshold=data["quality_threshold"],
            num_golds=data["num_golds"],
        )


@dataclass
class HITTask:
    """A full task: public parameters plus the requester's secrets."""

    parameters: TaskParameters
    questions: List[str]  # human-readable question payloads (go to Swarm)
    gold_indexes: List[int]  # G — secret until the evaluate phase
    gold_answers: List[int]  # Gs — ditto
    ground_truth: Optional[List[int]] = None  # for synthetic workloads only

    def __post_init__(self) -> None:
        p = self.parameters
        if len(self.questions) != p.num_questions:
            raise TaskSpecError(
                "expected %d questions, got %d" % (p.num_questions, len(self.questions))
            )
        if len(self.gold_indexes) != p.num_golds:
            raise TaskSpecError("gold index count must equal num_golds")
        if len(self.gold_indexes) != len(set(self.gold_indexes)):
            raise TaskSpecError("gold indexes must be distinct")
        if any(not 0 <= i < p.num_questions for i in self.gold_indexes):
            raise TaskSpecError("gold index out of range")
        if len(self.gold_answers) != len(self.gold_indexes):
            raise TaskSpecError("gold answers must align with gold indexes")
        if any(a not in p.answer_range for a in self.gold_answers):
            raise TaskSpecError("gold answer outside the answer range")
        if self.ground_truth is not None:
            if len(self.ground_truth) != p.num_questions:
                raise TaskSpecError("ground truth must cover every question")
            for index, answer in zip(self.gold_indexes, self.gold_answers):
                if self.ground_truth[index] != answer:
                    raise TaskSpecError(
                        "ground truth disagrees with gold answer at %d" % index
                    )

    # -- derived views --------------------------------------------------------

    def questions_blob(self) -> bytes:
        """The off-chain task description published to Swarm."""
        return json.dumps(
            {"parameters": json.loads(self.parameters.to_json()),
             "questions": self.questions},
            sort_keys=True,
        ).encode("utf-8")

    def golden_blob(self) -> bytes:
        """The serialized ``G || Gs`` string committed in ``commgs``."""
        return json.dumps(
            {"G": self.gold_indexes, "Gs": self.gold_answers}, sort_keys=True
        ).encode("utf-8")

    def quality_of(self, answers: Sequence[int]) -> int:
        """The paper's quality function on a full answer vector."""
        return compute_quality(answers, self.gold_indexes, self.gold_answers)

    def validate_answers(self, answers: Sequence[int]) -> None:
        """Raise unless ``answers`` is a structurally valid submission."""
        if len(answers) != self.parameters.num_questions:
            raise AnswerError(
                "expected %d answers, got %d"
                % (self.parameters.num_questions, len(answers))
            )
        for position, answer in enumerate(answers):
            if answer not in self.parameters.answer_range:
                raise AnswerError(
                    "answer %r at position %d outside range" % (answer, position)
                )


def parse_golden_blob(raw: bytes) -> Tuple[List[int], List[int]]:
    """Decode a ``golden_blob`` back into ``(G, Gs)``."""
    data = json.loads(raw.decode("utf-8"))
    return list(data["G"]), list(data["Gs"])


# ---------------------------------------------------------------------------
# Synthetic workload generation
# ---------------------------------------------------------------------------


def make_imagenet_task(
    num_questions: int = 106,
    num_golds: int = 6,
    num_workers: int = 4,
    quality_threshold: int = 4,
    budget: int = 400,
    seed: int = 2020,
) -> HITTask:
    """The paper's ImageNet HIT: binary attribute questions (§VI).

    106 binary questions, 6 of them gold standards, 4 workers, and a
    submission is rejected if it misses 3 or more golds (i.e. Θ = 4).
    """
    rng = random.Random(seed)
    ground_truth = [rng.randint(0, 1) for _ in range(num_questions)]
    gold_indexes = sorted(rng.sample(range(num_questions), num_golds))
    gold_answers = [ground_truth[i] for i in gold_indexes]
    questions = [
        "Does image %04d contain the attribute 'striped'? (0=no, 1=yes)" % i
        for i in range(num_questions)
    ]
    parameters = TaskParameters(
        num_questions=num_questions,
        budget=budget,
        num_workers=num_workers,
        answer_range=(0, 1),
        quality_threshold=quality_threshold,
        num_golds=num_golds,
    )
    return HITTask(parameters, questions, gold_indexes, gold_answers, ground_truth)


def make_street_parking_task(
    num_spots: int = 40,
    num_golds: int = 5,
    num_workers: int = 3,
    quality_threshold: int = 4,
    budget: int = 300,
    seed: int = 7,
) -> HITTask:
    """The paper's motivating example (§IV): Alice's parking survey.

    Alice knows the availability of a few street-parking spots (her gold
    standards) and crowdsources the rest.  Options: 0 = free, 1 = taken,
    2 = no-parking zone.
    """
    rng = random.Random(seed)
    ground_truth = [rng.randint(0, 2) for _ in range(num_spots)]
    gold_indexes = sorted(rng.sample(range(num_spots), num_golds))
    gold_answers = [ground_truth[i] for i in gold_indexes]
    questions = [
        "Availability of parking spot #%d? (0=free, 1=taken, 2=no parking)" % i
        for i in range(num_spots)
    ]
    parameters = TaskParameters(
        num_questions=num_spots,
        budget=budget,
        num_workers=num_workers,
        answer_range=(0, 1, 2),
        quality_threshold=quality_threshold,
        num_golds=num_golds,
    )
    return HITTask(parameters, questions, gold_indexes, gold_answers, ground_truth)


def sample_worker_answers(
    task: HITTask, accuracy: float, seed: Optional[int] = None
) -> List[int]:
    """Synthesize a worker's answer sheet with the given per-question accuracy.

    With probability ``accuracy`` the worker answers a question correctly;
    otherwise a uniformly random *wrong* option is chosen.  Requires the
    task to carry a ground truth.
    """
    if task.ground_truth is None:
        raise TaskSpecError("answer synthesis needs a task with ground truth")
    if not 0.0 <= accuracy <= 1.0:
        raise ValueError("accuracy must be a probability")
    rng = random.Random(seed)
    options = task.parameters.answer_range
    answers: List[int] = []
    for truth in task.ground_truth:
        if rng.random() < accuracy:
            answers.append(truth)
        else:
            wrong = [option for option in options if option != truth]
            answers.append(rng.choice(wrong))
    return answers
