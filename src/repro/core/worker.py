"""The worker client (paper Fig. 5, worker side).

A worker discovers a published task from the contract's event log,
fetches the question blob from Swarm (integrity-checked against the
on-chain digest), answers, then submits in two steps:

* **commit** — send ``H(ciphertexts || key)``; nothing about the answers
  is visible yet, so a rushing adversary that reorders commits learns
  nothing and a copier has nothing to copy.
* **reveal** — after all K commits are in, open the commitment to the
  encrypted answer vector.

The answers themselves are encrypted to the requester's public key, so
even after the reveal no other worker can read (or grade) them — that is
the confidentiality property that kills copy-paste free-riding.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.chain.chain import Chain
from repro.chain.transactions import Transaction
from repro.core.hit_contract import CIPHERTEXT_BYTES
from repro.core.task import TaskParameters
from repro.crypto.commitment import commit as make_commitment
from repro.crypto.elgamal import Ciphertext, ElGamalPublicKey
from repro.crypto.curve import G1Point
from repro.errors import AnswerError, ProtocolError
from repro.ledger.accounts import Address
from repro.storage.swarm import SwarmStore


@dataclass
class DiscoveredTask:
    """A worker's view of a published task."""

    contract_name: str
    requester: Address
    parameters: TaskParameters
    public_key: ElGamalPublicKey
    questions: List[str]
    commgs: bytes


class WorkerClient:
    """An honest worker; adversarial variants override the hooks."""

    def __init__(
        self,
        label: str,
        chain: Chain,
        swarm: SwarmStore,
        answers: Optional[Sequence[int]] = None,
        answer_strategy: Optional[Callable[[DiscoveredTask], List[int]]] = None,
        prover_pool=None,
    ) -> None:
        self.label = label
        self.chain = chain
        self.swarm = swarm
        self.address = chain.register_account(label, 0)
        self._fixed_answers = list(answers) if answers is not None else None
        self._strategy = answer_strategy
        #: Optional :class:`repro.parallel.ProverPool`; when set, answer
        #: encryption runs as a pool job under a derived per-job seed.
        self.prover_pool = prover_pool
        self.discovered: Optional[DiscoveredTask] = None
        self.ciphertext_bytes: Optional[bytes] = None
        self.blinding_key: Optional[bytes] = None
        self._commit_requested = False
        self._commit_confirmed = False

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------

    def discover(self, contract_name: str) -> DiscoveredTask:
        """Read the ``published`` event and fetch the questions from Swarm."""
        events = self.chain.events_named("published", contract_name)
        if not events:
            raise ProtocolError("no published task on contract %s" % contract_name)
        return self.discover_from_event(contract_name, events[0])

    def discover_from_event(self, contract_name: str, event) -> DiscoveredTask:
        """Discover a task from a ``published`` event already in hand.

        What a subscribed client does: it saw the event on the bus and
        needs no log rescan — which also keeps discovery working on a
        chain whose event log has been pruned (long simulation runs).
        """
        payload = event.payload
        blob = self.swarm.get(payload["task_digest"])
        description = json.loads(blob.decode("utf-8"))
        pubkey = ElGamalPublicKey(G1Point.from_bytes(payload["pubkey"]))
        self.discovered = DiscoveredTask(
            contract_name=contract_name,
            requester=payload["requester"],
            parameters=payload["parameters"],
            public_key=pubkey,
            questions=list(description["questions"]),
            commgs=payload["commgs"],
        )
        return self.discovered

    # ------------------------------------------------------------------
    # Answering
    # ------------------------------------------------------------------

    def produce_answers(self) -> List[int]:
        """The worker's answers (fixed list, strategy callback, or error)."""
        if self.discovered is None:
            raise ProtocolError("discover the task before answering")
        if self._fixed_answers is not None:
            answers = list(self._fixed_answers)
        elif self._strategy is not None:
            answers = self._strategy(self.discovered)
        else:
            raise ProtocolError("worker %s has no answers configured" % self.label)
        expected = self.discovered.parameters.num_questions
        if len(answers) != expected:
            raise AnswerError(
                "worker %s produced %d answers for %d questions"
                % (self.label, len(answers), expected)
            )
        return answers

    def encrypt_answers(self, answers: Sequence[int]) -> bytes:
        """Encrypt the answer vector to the requester's key; returns bytes."""
        assert self.discovered is not None
        if self.prover_pool is not None:
            ciphertexts = self.prover_pool.encrypt_vector(
                self.discovered.public_key, list(answers)
            )
        else:
            ciphertexts = self.discovered.public_key.encrypt_vector(list(answers))
        return b"".join(c.to_bytes() for c in ciphertexts)

    # ------------------------------------------------------------------
    # Reactive step function (the session engine's hook)
    # ------------------------------------------------------------------

    def on_event(self, event) -> List[str]:
        """React to one chain event of this worker's task.

        The worker-side half of the event-driven life cycle: the method
        updates the worker's observed view of the contract and returns
        the protocol steps that just became due (``"commit"`` on the
        task's publication, ``"reveal"`` once every slot committed and
        this worker's own commit was confirmed on-chain).  The caller —
        normally a :class:`~repro.core.session.HITSession` — decides
        *when* to submit each step, which is where straggler and dropout
        adversaries plug in.
        """
        steps: List[str] = []
        if event.name == "published":
            if self.discovered is not None and not self._commit_requested:
                self._commit_requested = True
                steps.append("commit")
        elif event.name == "committed":
            if event.payload["worker"] == self.address:
                self._commit_confirmed = True
        elif event.name == "all_committed":
            if self._commit_confirmed:
                steps.append("reveal")
        return steps

    # ------------------------------------------------------------------
    # Phase 2-a: commit
    # ------------------------------------------------------------------

    def send_commit(self) -> Transaction:
        """Encrypt, commit, and send the commitment on-chain."""
        answers = self.produce_answers()
        self.ciphertext_bytes = self.encrypt_answers(answers)
        commitment, self.blinding_key = make_commitment(self.ciphertext_bytes)
        return self._send_commit_digest(commitment.digest)

    def begin_commit(self):
        """Dispatch the encryption of this worker's answers to the pool.

        The async half of :meth:`send_commit`: the returned job runs in
        a pool worker while the caller (the session engine) keeps
        processing other sessions; :meth:`finish_commit` collects it and
        sends the commitment transaction.  Requires ``prover_pool``.
        """
        if self.prover_pool is None:
            raise ProtocolError(
                "worker %s has no prover pool for async commits" % self.label
            )
        answers = self.produce_answers()
        assert self.discovered is not None
        return self.prover_pool.submit_encrypt_vector(
            self.discovered.public_key, list(answers)
        )

    def finish_commit(self, job) -> Transaction:
        """Collect a :meth:`begin_commit` job and send the commitment."""
        ciphertexts = job.result()
        self.ciphertext_bytes = b"".join(c.to_bytes() for c in ciphertexts)
        commitment, self.blinding_key = make_commitment(self.ciphertext_bytes)
        return self._send_commit_digest(commitment.digest)

    def _send_commit_digest(self, digest: bytes) -> Transaction:
        assert self.discovered is not None
        return self.chain.send(
            self.address,
            self.discovered.contract_name,
            "commit",
            args=(digest,),
            payload=digest,
        )

    # ------------------------------------------------------------------
    # Phase 2-b: reveal
    # ------------------------------------------------------------------

    def send_reveal(self) -> Transaction:
        """Open the commitment to the encrypted answers on-chain."""
        if self.discovered is None or self.ciphertext_bytes is None:
            raise ProtocolError("commit before revealing")
        assert self.blinding_key is not None
        return self.chain.send(
            self.address,
            self.discovered.contract_name,
            "reveal",
            args=(self.ciphertext_bytes, self.blinding_key),
            payload=self.ciphertext_bytes + self.blinding_key,
        )

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def was_paid(self) -> bool:
        """Whether this worker received a task payment on the ledger."""
        return bool(self.chain.ledger.payments_to(self.address))

    def balance(self) -> int:
        return self.chain.ledger.balance_of(self.address)
