"""The ideal functionality F_hit (paper Fig. 2).

The ideal world is the security yardstick: a trusted party that sees the
*plaintext* answers, applies the quality function directly, and drives
the ledger L.  The paper's Theorem 1 states Π_hit realizes this
functionality; our test-suite analogue runs scripted scenarios in both
worlds and checks the outputs (payments, verdicts) coincide and that the
real world leaks no more than the ideal world's leakage trace.

The functionality is synchronous in the same way the contract is: the
adversary (here: the caller, standing in for the simulator S) controls
the order in which ``answer`` messages are delivered and may delay
evaluation messages, but cannot forge or drop them beyond one period.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.task import TaskParameters
from repro.crypto.poqoea import compute_quality
from repro.errors import ProtocolError
from repro.ledger.accounts import Address
from repro.ledger.ledger import Ledger

PHASE_PUBLISH = 0
PHASE_COLLECT = 1
PHASE_EVALUATE = 2
PHASE_DONE = 3


@dataclass(frozen=True)
class Leak:
    """One entry of the adversary's view (what S learns and when)."""

    tag: str
    payload: Tuple = ()


@dataclass
class IdealOutcome:
    """Final state of an ideal-world execution."""

    payments: Dict[str, int]
    verdicts: Dict[str, Optional[str]]
    leakage: List[Leak]


class IdealHIT:
    """F_hit: the trusted-party formulation of a single HIT."""

    def __init__(self, ledger: Ledger, functionality_address: Address) -> None:
        self.ledger = ledger
        self.address = functionality_address
        self.phase = PHASE_PUBLISH
        self.leakage: List[Leak] = []
        self._parameters: Optional[TaskParameters] = None
        self._requester: Optional[Address] = None
        self._gold_indexes: List[int] = []
        self._gold_answers: List[int] = []
        self._answers: Dict[Address, Optional[List[int]]] = {}
        self._order: List[Address] = []
        self._verdicts: Dict[Address, str] = {}

    # ------------------------------------------------------------------
    # Phase 1: publish
    # ------------------------------------------------------------------

    def publish(
        self,
        requester: Address,
        parameters: TaskParameters,
        gold_indexes: Sequence[int],
        gold_answers: Sequence[int],
    ) -> bool:
        """The requester's publish message; freezes the budget via L."""
        if self.phase != PHASE_PUBLISH:
            raise ProtocolError("publish arrives only once")
        # F_hit leaks the public parameters and the *sizes* of G and Gs.
        self.leakage.append(
            Leak(
                "publishing",
                (
                    requester.label,
                    parameters.num_questions,
                    parameters.budget,
                    parameters.num_workers,
                    tuple(parameters.answer_range),
                    parameters.quality_threshold,
                    len(gold_indexes),
                    len(gold_answers),
                ),
            )
        )
        if not self.ledger.freeze(self.address, requester, parameters.budget):
            self.leakage.append(Leak("nofund", (requester.label,)))
            return False
        self._parameters = parameters
        self._requester = requester
        self._gold_indexes = list(gold_indexes)
        self._gold_answers = list(gold_answers)
        self.phase = PHASE_COLLECT
        return True

    # ------------------------------------------------------------------
    # Phase 2: collect answers
    # ------------------------------------------------------------------

    def answer(self, worker: Address, answers: Optional[Sequence[int]]) -> bool:
        """A worker's answer message (``None`` models the ⊥ submission).

        Returns False for duplicates (F_hit ignores them).  Only the
        *length* of the answer leaks to the adversary.
        """
        if self.phase != PHASE_COLLECT:
            raise ProtocolError("answers only arrive in the collect phase")
        assert self._parameters is not None
        length = len(answers) if answers is not None else 0
        self.leakage.append(Leak("answering", (worker.label, length)))
        if worker in self._answers:
            return False
        self._answers[worker] = list(answers) if answers is not None else None
        self._order.append(worker)
        self.leakage.append(Leak("answered", (worker.label, length)))
        if len(self._answers) == self._parameters.num_workers:
            self.phase = PHASE_EVALUATE
        return True

    # ------------------------------------------------------------------
    # Phase 3: evaluate
    # ------------------------------------------------------------------

    def evaluate(self, worker: Address) -> None:
        """Requester's evaluate message: pay iff quality meets Θ.

        In F_hit the quality check happens inside the functionality, so a
        corrupted requester simply cannot lie about it.
        """
        self._require_evaluate_phase()
        answers = self._answers.get(worker)
        if answers is None:
            return
        assert self._parameters is not None
        quality = compute_quality(answers, self._gold_indexes, self._gold_answers)
        if quality >= self._parameters.quality_threshold:
            self._pay(worker, "paid-evaluate")
        else:
            self._verdicts[worker] = "rejected-quality"
        self.leakage.append(
            Leak(
                "evaluated",
                (worker.label, tuple(self._gold_indexes), tuple(self._gold_answers)),
            )
        )

    def outrange(self, worker: Address, index: int) -> None:
        """Requester's out-of-range dispute for one position."""
        self._require_evaluate_phase()
        answers = self._answers.get(worker)
        if answers is None:
            return
        assert self._parameters is not None
        value = answers[index] if 0 <= index < len(answers) else None
        if value is not None and value not in self._parameters.answer_range:
            self._verdicts[worker] = "rejected-outrange"
            self.leakage.append(Leak("outranged", (worker.label, value)))
        else:
            self._pay(worker, "paid-outrange")

    def finalize(self) -> IdealOutcome:
        """End of the evaluation window: default-pay the unevaluated.

        Every worker from whom a non-⊥ answer was collected and about
        whom the requester sent no (valid) rejection is paid B/K; the
        leftover budget returns to the requester.
        """
        self._require_evaluate_phase()
        assert self._parameters is not None and self._requester is not None
        for worker in self._order:
            if worker in self._verdicts:
                continue
            if self._answers[worker] is not None:
                self._pay(worker, "paid-default")
        leftover = self.ledger.escrow_of(self.address)
        if leftover:
            self.ledger.pay(self.address, self._requester, leftover, memo="refund")
        self.phase = PHASE_DONE
        return IdealOutcome(
            payments={
                worker.label: self.ledger.balance_of(worker) for worker in self._order
            },
            verdicts={
                worker.label: self._verdicts.get(worker) for worker in self._order
            },
            leakage=list(self.leakage),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _require_evaluate_phase(self) -> None:
        if self.phase != PHASE_EVALUATE:
            raise ProtocolError("not in the evaluate phase")

    def _pay(self, worker: Address, verdict: str) -> None:
        assert self._parameters is not None
        self.ledger.pay(
            self.address, worker, self._parameters.reward_per_worker, memo=verdict
        )
        self._verdicts[worker] = verdict
