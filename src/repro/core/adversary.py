"""Adversarial parties and network strategies (paper §I and §IV).

Each class realizes one of the attacks the protocol is designed to
defeat; the integration tests run them and assert the honest parties'
guarantees hold:

* :class:`CopyCatWorker` — the copy-paste free-rider: replays another
  worker's commitment (optionally front-running it via the rushing
  scheduler).  The contract's duplicate check plus the hiding commitment
  make the copy worthless: the copier can never open it.
* :class:`LateJoinerWorker` — waits for reveals hoping to copy visible
  ciphertexts; the commit phase is already closed, and the ciphertexts
  are useless without the requester's key anyway.
* :class:`NoRevealWorker` — commits but never reveals (the ⊥ answer):
  forfeits payment, harms nobody else.
* :class:`FalseReportingRequester` — claims every worker has quality 0
  with an empty/bogus proof; Fig. 4 makes the contract *pay the worker*
  on an invalid rejection.
* :class:`ReplayProofRequester` — pads a genuine PoQoEA proof by
  duplicating one mismatch entry to inflate the rejection count; the
  verifier's distinctness check catches it.
* :func:`front_running_scheduler` — a rushing adversary that delivers a
  chosen sender's transactions first.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.chain.network import RushingScheduler
from repro.chain.transactions import Transaction
from repro.core.requester import RequesterClient
from repro.core.worker import WorkerClient
from repro.crypto.poqoea import MismatchEntry, QualityProof
from repro.errors import ProtocolError
from repro.ledger.accounts import Address


class CopyCatWorker(WorkerClient):
    """Replays the victim's commitment digest instead of computing one."""

    def __init__(self, label, chain, swarm, victim: WorkerClient) -> None:
        super().__init__(label, chain, swarm, answers=None)
        self.victim = victim

    def send_commit(self) -> Transaction:
        victim_digest = self._steal_commit_digest()
        if victim_digest is None:
            raise ProtocolError("victim has not committed yet; nothing to copy")
        # The copier never learns the ciphertexts or the blinding key, so
        # it cannot reveal later even if the commit were accepted.
        self.ciphertext_bytes = None
        self.blinding_key = None
        return self._send_commit_digest(victim_digest)

    def _steal_commit_digest(self) -> Optional[bytes]:
        """Rushing capability: read the victim's pending commit payload."""
        for transaction in self.chain.mempool.pending:
            if (
                transaction.sender == self.victim.address
                and transaction.method == "commit"
            ):
                return transaction.payload
        # Fall back to an already-mined commitment (late copier).
        assert self.discovered is not None
        for event in self.chain.events_named(
            "committed", self.discovered.contract_name
        ):
            if event.payload["worker"] == self.victim.address:
                return event.payload["digest"]
        return None

    def send_reveal(self) -> Transaction:
        raise ProtocolError("a copycat has nothing to reveal")


class LateJoinerWorker(WorkerClient):
    """Tries to commit after observing reveals (always too late)."""

    def copy_revealed_ciphertexts(self) -> Optional[bytes]:
        assert self.discovered is not None
        events = self.chain.events_named("revealed", self.discovered.contract_name)
        if not events:
            return None
        return events[0].payload["ciphertexts"]

    def send_commit(self) -> Transaction:
        stolen = self.copy_revealed_ciphertexts()
        if stolen is None:
            raise ProtocolError("nothing revealed yet")
        from repro.crypto.commitment import commit as make_commitment

        commitment, self.blinding_key = make_commitment(stolen)
        self.ciphertext_bytes = stolen
        return self._send_commit_digest(commitment.digest)


class NoRevealWorker(WorkerClient):
    """Commits honestly, then goes silent (the ⊥ submission)."""

    def send_reveal(self) -> Transaction:
        raise ProtocolError("this worker never reveals")


class OutOfRangeWorker(WorkerClient):
    """Encrypts an answer outside the permitted option range."""

    def __init__(self, label, chain, swarm, answers, bad_position: int = 0,
                 bad_value: int = 999) -> None:
        super().__init__(label, chain, swarm, answers=answers)
        self.bad_position = bad_position
        self.bad_value = bad_value

    def produce_answers(self) -> List[int]:
        answers = list(self._fixed_answers or [])
        if self.discovered is None:
            raise ProtocolError("discover first")
        answers[self.bad_position] = self.bad_value
        return answers


class FalseReportingRequester(RequesterClient):
    """Claims quality 0 for everyone, with an empty proof."""

    def make_quality_proof(self, ciphertexts):
        return 0, QualityProof(())

    def _evaluate_one(self, worker, ciphertext_bytes):
        # Reject every submission unconditionally (data-reaping attempt).
        ciphertexts, _ = self.decrypt_submission(ciphertext_bytes)
        transaction = self._send_quality_rejection(
            worker, ciphertexts, ciphertext_bytes
        )
        from repro.core.requester import EvaluationAction

        return EvaluationAction(worker, "reject-quality", 0, transaction)


class ReplayProofRequester(RequesterClient):
    """Duplicates one genuine mismatch entry to inflate the count."""

    def make_quality_proof(self, ciphertexts):
        from repro.crypto.poqoea import prove_quality

        quality, proof = prove_quality(
            self.secret_key,
            list(ciphertexts),
            self.task.gold_indexes,
            self.task.gold_answers,
            list(self.task.parameters.answer_range),
        )
        if proof.entries:
            padded = proof.entries + (proof.entries[0],) * (
                len(self.task.gold_indexes) - len(proof.entries)
            )
            # Claim quality 0 and "prove" |G| mismatches via replays.
            return 0, QualityProof(padded)
        return quality, proof


class WrongGoldenRequester(RequesterClient):
    """Opens the gold commitment with a fabricated gold set."""

    def send_golden(self) -> Transaction:
        import json

        assert self.contract_name is not None and self._golden_key is not None
        fake = dict(
            G=self.task.gold_indexes,
            Gs=[
                next(
                    option
                    for option in self.task.parameters.answer_range
                    if option != answer
                )
                for answer in self.task.gold_answers
            ],
        )
        blob = json.dumps(fake, sort_keys=True).encode("utf-8")
        return self.chain.send(
            self.address,
            self.contract_name,
            "golden",
            args=(blob, self._golden_key),
            payload=blob + self._golden_key,
        )


def front_running_scheduler(first_sender: Address) -> RushingScheduler:
    """A rushing adversary that delivers ``first_sender``'s messages first."""

    def strategy(pending: Sequence[Transaction]) -> List[Transaction]:
        mine = [t for t in pending if t.sender == first_sender]
        rest = [t for t in pending if t.sender != first_sender]
        return mine + rest

    return RushingScheduler(strategy)
