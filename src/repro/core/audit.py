"""Gold-standard auditability (paper §IV, "Audibility of gold-standards").

The choice of gold standards is the requester's, so a malicious
requester could publish bogus golds to reject everyone.  Dragoon's
mitigation — inherited from the Turkopticon-style reputation systems the
paper cites [14, 15] — is that the golds become *publicly auditable*
once the task ends: the commitment ``commgs`` is opened on-chain.

:class:`GoldAuditLog` turns that property into a queryable artifact: it
scans a chain's event log, reconstructs every requester's gold-reveal
and rejection history, and computes reputation signals a worker would
consult before accepting a task:

* **rejection rate** — a requester who rejects nearly everything is
  either posting impossible tasks or cheating on golds;
* **gold-consensus divergence** — golds that systematically disagree
  with the consensus of *accepted* submissions suggest bogus ground
  truth;
* **silent finishes** — tasks where the requester never opened the
  golds (everyone is paid, but the requester learns answers without
  accountability for her quality bar).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chain.chain import Chain
from repro.ledger.accounts import Address


@dataclass
class TaskAuditRecord:
    """What the public chain reveals about one finished task."""

    contract_name: str
    requester: Optional[Address]
    gold_indexes: Tuple[int, ...] = ()
    gold_answers: Tuple[int, ...] = ()
    golden_opened: bool = False
    rejected_workers: Tuple[str, ...] = ()
    paid_workers: Tuple[str, ...] = ()

    @property
    def total_adjudicated(self) -> int:
        return len(self.rejected_workers) + len(self.paid_workers)

    @property
    def rejection_rate(self) -> float:
        total = self.total_adjudicated
        return len(self.rejected_workers) / total if total else 0.0


@dataclass
class RequesterReputation:
    """Aggregated audit signals for one requester identity."""

    requester: str
    tasks: int = 0
    silent_tasks: int = 0
    workers_paid: int = 0
    workers_rejected: int = 0
    flags: List[str] = field(default_factory=list)

    @property
    def rejection_rate(self) -> float:
        total = self.workers_paid + self.workers_rejected
        return self.workers_rejected / total if total else 0.0

    @property
    def is_suspicious(self) -> bool:
        return bool(self.flags)


class GoldAuditLog:
    """Reconstructs per-task and per-requester audit views from a chain."""

    def __init__(self, chain: Chain) -> None:
        self.chain = chain

    # ------------------------------------------------------------------
    # Per-task reconstruction
    # ------------------------------------------------------------------

    def audit_tasks(self) -> Dict[str, TaskAuditRecord]:
        """One audit record per published task, from public events only."""
        records: Dict[str, TaskAuditRecord] = {}
        name_by_address: Dict[bytes, str] = {}
        for name in list(self.chain._contracts):
            contract = self.chain.contract(name)
            name_by_address[contract.address.value] = name

        for event in self.chain.events:
            contract_name = name_by_address.get(event.contract.value)
            if contract_name is None:
                continue
            record = records.setdefault(
                contract_name, TaskAuditRecord(contract_name, None)
            )
            payload = event.payload or {}
            if event.name == "published":
                record.requester = payload["requester"]
            elif event.name == "golden_opened":
                record.golden_opened = True
                record.gold_indexes = tuple(payload["G"])
                record.gold_answers = tuple(payload["Gs"])
            elif event.name in ("evaluated", "outranged"):
                worker = payload["worker"]
                record.rejected_workers = record.rejected_workers + (worker.label,)
            elif event.name == "paid":
                worker = payload["worker"]
                record.paid_workers = record.paid_workers + (worker.label,)
        return records

    # ------------------------------------------------------------------
    # Per-requester reputation
    # ------------------------------------------------------------------

    def reputation(
        self,
        rejection_rate_threshold: float = 0.75,
        min_tasks_for_flags: int = 1,
    ) -> Dict[str, RequesterReputation]:
        """Aggregate audit records into requester reputations with flags."""
        reputations: Dict[str, RequesterReputation] = {}
        for record in self.audit_tasks().values():
            if record.requester is None:
                continue
            label = record.requester.label
            reputation = reputations.setdefault(
                label, RequesterReputation(requester=label)
            )
            reputation.tasks += 1
            reputation.workers_paid += len(record.paid_workers)
            reputation.workers_rejected += len(record.rejected_workers)
            if not record.golden_opened and record.total_adjudicated:
                reputation.silent_tasks += 1

        for reputation in reputations.values():
            if reputation.tasks < min_tasks_for_flags:
                continue
            if reputation.rejection_rate >= rejection_rate_threshold:
                reputation.flags.append(
                    "rejects %.0f%% of adjudicated workers"
                    % (100 * reputation.rejection_rate)
                )
            if reputation.silent_tasks:
                reputation.flags.append(
                    "%d task(s) finished without opening golds"
                    % reputation.silent_tasks
                )
        return reputations

    def divergence_from_consensus(
        self,
        record: TaskAuditRecord,
        accepted_answers: Sequence[Sequence[int]],
    ) -> float:
        """How often the revealed golds disagree with accepted consensus.

        A high divergence on many tasks is the classic signature of
        bogus golds.  Requires the caller to supply the decrypted
        accepted submissions (only the requester, or a worker comparing
        against their own answers, can do this).
        """
        if not record.golden_opened or not accepted_answers:
            return 0.0
        from repro.core.aggregation import majority_vote

        consensus = majority_vote(accepted_answers)
        disagreements = sum(
            1
            for index, answer in zip(record.gold_indexes, record.gold_answers)
            if index < len(consensus.labels) and consensus.labels[index] != answer
        )
        return disagreements / len(record.gold_indexes) if record.gold_indexes else 0.0
