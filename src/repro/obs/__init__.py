"""Unified observability: metrics registry, span tracer, structured logs.

Three coordinated pieces, one determinism contract — observability only
*observes*; it never feeds the DRBG, the codec, or ``state_root``:

* :mod:`repro.obs.registry` — counters / gauges / histograms every layer
  registers into, scraped as Prometheus text via ``GET /metrics`` and as
  plain data via the ``node_metrics`` RPC method;
* :mod:`repro.obs.tracing` — JSONL span traces (``--trace FILE``) with
  explicit clocks and cross-process worker spans;
* :mod:`repro.obs.logging` — the stdlib-logging structured logger behind
  the CLI (``--log-json`` / ``--log-level``).
"""

from repro.obs.logging import (
    StructuredLogger,
    add_logging_flags,
    configure_logging,
    get_logger,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    REGISTRY,
    render_prometheus,
)
from repro.obs.tracing import (
    NullTracer,
    SPAN_SCHEMA_VERSION,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    span_clock,
    trace_span,
    trace_to,
)

__all__ = [
    "REGISTRY",
    "MetricsRegistry",
    "MetricError",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "render_prometheus",
    "SPAN_SCHEMA_VERSION",
    "Span",
    "Tracer",
    "NullTracer",
    "span_clock",
    "get_tracer",
    "set_tracer",
    "trace_to",
    "trace_span",
    "StructuredLogger",
    "configure_logging",
    "get_logger",
    "add_logging_flags",
]
