"""The metrics registry: counters, gauges, histograms, one scrape surface.

Every runtime layer registers its instruments into one process-global
:data:`REGISTRY` (chain block/gas counters, session phase histograms,
RPC dispatch counters, pool job counters, crypto hot-path counters), and
every export surface — the Prometheus-text ``GET /metrics`` endpoint on
both HTTP front-ends, the ``node_metrics`` RPC method, and the
registry-backed sections of ``node_status`` — reads back from it.  One
source of truth, many skins.

Design constraints, in order:

* **Cheap hot path.**  ``Counter.inc`` on the unlabeled fast path is a
  dict-entry ``+=`` under the GIL — no lock, no allocation.  The
  instruments live in module globals at the call sites, so the per-call
  cost is one attribute load and one integer add.  (Telemetry tolerates
  the theoretical read-modify-write race this "lock-free-ish" choice
  accepts; registration and scraping, which restructure dicts, do take
  the registry lock.)
* **Determinism safety.**  Nothing in this module touches the DRBG, the
  codec, or chain state: metrics are observations *about* a run, never
  inputs *to* it.  A seeded scenario is byte-identical with metrics
  scraped or ignored — the contract ``tests/obs`` pins.
* **Fixed histogram buckets.**  Bucket edges are declared at
  registration and never adapt, so two nodes' histograms are mergeable
  and the text exposition is stable.

Callback instruments (``sampler=``) invert the read: instead of being
pushed to, the instrument pulls its value at scrape time — how the
fixed-base cache population and the verifier pool's shape are exported
without those layers pushing on their hot paths.
"""

from __future__ import annotations

import re
import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_BUCKETS",
    "render_prometheus",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Latency bucket edges (seconds) shared by every duration histogram in
#: the tree, so traces and scrape tables bin identically.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class MetricError(ValueError):
    """A metric was declared or used inconsistently."""


def _check_labels(
    labelnames: Tuple[str, ...], labels: Dict[str, Any]
) -> Tuple[str, ...]:
    if tuple(sorted(labels)) != tuple(sorted(labelnames)):
        raise MetricError(
            "expected labels %r, got %r" % (labelnames, tuple(sorted(labels)))
        )
    return tuple(str(labels[name]) for name in labelnames)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _plain_number(value: Any) -> Any:
    """Coerce a sample to a canonical plain number (int or float).

    ``collect()`` snapshots travel: through JSON to ``node_metrics``
    readers, through the canonical codec into report artifacts, and
    across hosts for folding.  Bools become ints and exotic numerics
    (a sampler returning e.g. a Fraction) become floats here, so a
    snapshot always round-trips byte-identically — the exact-float
    guarantee both ``json`` (shortest-repr) and the codec (packed
    IEEE double) provide only for the plain types.
    """
    if isinstance(value, bool):
        return int(value)
    if type(value) is int or type(value) is float:
        return value
    if isinstance(value, int):
        return int(value)
    try:
        return float(value)
    except (TypeError, ValueError):
        raise MetricError(
            "metric values must be numbers, got %r" % (value,)
        ) from None


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        if value in (float("inf"), float("-inf")):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    raise MetricError("metric values must be numbers, got %r" % (value,))


class _Instrument:
    """Shared family plumbing: name, help, labels, children, sampler."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        sampler: Optional[Callable[[], Any]] = None,
    ) -> None:
        if not _NAME_RE.match(name):
            raise MetricError("invalid metric name %r" % name)
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise MetricError("invalid label name %r" % label)
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: Dict[Tuple[str, ...], Any] = {}
        self._sampler = sampler

    def set_sampler(self, sampler: Optional[Callable[[], Any]]) -> None:
        """Install (or clear) a scrape-time callback.

        The callback returns either a plain number (one unlabeled
        sample) or an iterable of ``(labels_dict, value)`` pairs; it is
        invoked on every scrape, replacing any pushed children.  Latest
        registration wins — node front-ends re-bind these to the live
        pool/cache they front.
        """
        self._sampler = sampler

    def _sampled(self) -> List[Tuple[Tuple[str, ...], Any]]:
        """``(label_values, value)`` pairs at this instant."""
        if self._sampler is not None:
            try:
                produced = self._sampler()
            except Exception as exc:
                # A dead sampler must not fail the scrape — but it must
                # not die silently either, or a family vanishing from
                # /metrics is undiagnosable.  Count it (visible on the
                # very scrape that hit it) and leave a debug trace.
                _sampler_errors().inc(family=self.name)
                from repro.obs.logging import get_logger

                get_logger("obs").debug(
                    "sampler error",
                    family=self.name,
                    error="%s: %s" % (type(exc).__name__, exc),
                )
                return []
            if isinstance(produced, (int, float)):
                return [((), produced)]
            return [
                (_check_labels(self.labelnames, dict(labels)), value)
                for labels, value in produced
            ]
        return sorted(self._children.items())

    def samples(self) -> List[Tuple[Dict[str, str], Any]]:
        """Public snapshot: ``(labels_dict, value)`` pairs."""
        return [
            (dict(zip(self.labelnames, key)), value)
            for key, value in self._sampled()
        ]


class Counter(_Instrument):
    """A monotonically increasing count (``*_total`` by convention)."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels: Any) -> None:
        if amount < 0:
            raise MetricError("counters only go up")
        key = _check_labels(self.labelnames, labels) if labels else ()
        if key == () and self.labelnames:
            raise MetricError(
                "%s needs labels %r" % (self.name, self.labelnames)
            )
        self._children[key] = self._children.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        key = _check_labels(self.labelnames, labels) if labels else ()
        return self._children.get(key, 0)


class Gauge(_Instrument):
    """A value that goes up and down (or is sampled at scrape time)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = _check_labels(self.labelnames, labels) if labels else ()
        if key == () and self.labelnames:
            raise MetricError(
                "%s needs labels %r" % (self.name, self.labelnames)
            )
        self._children[key] = value

    def inc(self, amount: float = 1, **labels: Any) -> None:
        key = _check_labels(self.labelnames, labels) if labels else ()
        self._children[key] = self._children.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        key = _check_labels(self.labelnames, labels) if labels else ()
        return self._children.get(key, 0)


class _HistogramChild:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, edges: Tuple[float, ...]) -> None:
        self.counts = [0] * (len(edges) + 1)  # +Inf bucket last
        self.sum = 0.0
        self.count = 0


class Histogram(_Instrument):
    """Cumulative-bucket histogram with fixed, declared edges."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        edges = tuple(float(edge) for edge in buckets)
        if not edges or list(edges) != sorted(set(edges)):
            raise MetricError("bucket edges must be sorted and unique")
        self.edges = edges

    def observe(self, value: float, **labels: Any) -> None:
        key = _check_labels(self.labelnames, labels) if labels else ()
        if key == () and self.labelnames:
            raise MetricError(
                "%s needs labels %r" % (self.name, self.labelnames)
            )
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = _HistogramChild(self.edges)
        index = len(self.edges)
        for position, edge in enumerate(self.edges):
            if value <= edge:
                index = position
                break
        child.counts[index] += 1
        child.sum += value
        child.count += 1

    def child(self, **labels: Any) -> Optional[_HistogramChild]:
        key = _check_labels(self.labelnames, labels) if labels else ()
        return self._children.get(key)


class MetricsRegistry:
    """A named family set with get-or-create registration.

    Re-registering a family with the same name returns the existing
    instrument (so module-level registration composes across reloads and
    layers), but a *type* clash raises — two layers disagreeing about
    what ``rpc_requests_total`` is would corrupt the exposition.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Instrument] = {}

    def _register(self, cls, name: str, *args: Any, **kwargs: Any):
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise MetricError(
                        "metric %r is already a %s"
                        % (name, type(existing).kind)
                    )
                return existing
            instrument = cls(name, *args, **kwargs)
            self._families[name] = instrument
            return instrument

    def counter(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        sampler: Optional[Callable[[], Any]] = None,
    ) -> Counter:
        return self._register(Counter, name, help, labelnames, sampler)

    def gauge(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        sampler: Optional[Callable[[], Any]] = None,
    ) -> Gauge:
        return self._register(Gauge, name, help, labelnames, sampler)

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help, labelnames, buckets=buckets)

    def get(self, name: str) -> Optional[_Instrument]:
        with self._lock:
            return self._families.get(name)

    def read(self, name: str, labels: Optional[Dict[str, Any]] = None) -> Any:
        """One family's current value (scalar families / one labelset).

        The read goes through the same sample path the scrape uses —
        callback instruments are invoked — which is what lets
        ``node_status`` report from the registry instead of private
        plumbing.  Returns ``None`` for an absent family or labelset.
        """
        instrument = self.get(name)
        if instrument is None:
            return None
        wanted = (
            _check_labels(instrument.labelnames, labels) if labels else ()
        )
        for key, value in instrument._sampled():
            if key == wanted:
                return value
        return None

    def families(self) -> List[_Instrument]:
        with self._lock:
            return sorted(self._families.values(), key=lambda f: f.name)

    def collect(self) -> List[Dict[str, Any]]:
        """Plain-data snapshot of every family (the ``node_metrics`` body)."""
        snapshot: List[Dict[str, Any]] = []
        for family in self.families():
            entry: Dict[str, Any] = {
                "name": family.name,
                "type": family.kind,
                "help": family.help,
            }
            if isinstance(family, Histogram):
                series = []
                for labels, child in family.samples():
                    cumulative = 0
                    buckets = []
                    for edge, count in zip(family.edges, child.counts):
                        cumulative += count
                        buckets.append({"le": edge, "count": cumulative})
                    buckets.append(
                        {"le": "+Inf", "count": cumulative + child.counts[-1]}
                    )
                    series.append(
                        {
                            "labels": labels,
                            "buckets": buckets,
                            "sum": _plain_number(child.sum),
                            "count": child.count,
                        }
                    )
                entry["samples"] = series
            else:
                entry["samples"] = [
                    {"labels": labels, "value": _plain_number(value)}
                    for labels, value in family.samples()
                ]
            snapshot.append(entry)
        return snapshot


def _labels_text(labels: Dict[str, str], extra: str = "") -> str:
    parts = [
        '%s="%s"' % (name, _escape_label(str(value)))
        for name, value in labels.items()
    ]
    if extra:
        parts.append(extra)
    return "{%s}" % ",".join(parts) if parts else ""


def render_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """The registry in Prometheus text exposition format (v0.0.4)."""
    registry = registry if registry is not None else REGISTRY
    lines: List[str] = []
    for family in registry.families():
        lines.append("# HELP %s %s" % (family.name, family.help))
        lines.append("# TYPE %s %s" % (family.name, family.kind))
        if isinstance(family, Histogram):
            for labels, child in family.samples():
                cumulative = 0
                for edge, count in zip(family.edges, child.counts):
                    cumulative += count
                    lines.append(
                        "%s_bucket%s %d"
                        % (
                            family.name,
                            _labels_text(labels, 'le="%s"' % _format_value(edge)),
                            cumulative,
                        )
                    )
                lines.append(
                    "%s_bucket%s %d"
                    % (
                        family.name,
                        _labels_text(labels, 'le="+Inf"'),
                        cumulative + child.counts[-1],
                    )
                )
                lines.append(
                    "%s_sum%s %s"
                    % (family.name, _labels_text(labels), _format_value(child.sum))
                )
                lines.append(
                    "%s_count%s %d"
                    % (family.name, _labels_text(labels), child.count)
                )
        else:
            for labels, value in family.samples():
                lines.append(
                    "%s%s %s"
                    % (family.name, _labels_text(labels), _format_value(value))
                )
    return "\n".join(lines) + "\n"


#: The process-global default registry every layer instruments into.
REGISTRY = MetricsRegistry()


def _sampler_errors() -> Counter:
    """The sampler-failure counter, registered lazily.

    Lazy because :data:`REGISTRY` is created below the classes that
    need it; get-or-create registration makes the repeated lookup
    cheap and idempotent.
    """
    return REGISTRY.counter(
        "obs_sampler_errors_total",
        "Scrape-time sampler callbacks that raised (family dropped "
        "from that scrape)",
        labelnames=("family",),
    )
