"""The structured logger behind the CLI (and any long-running node).

Built on stdlib :mod:`logging` with two output shapes:

* **human** (the default) — the message alone, byte-identical to the
  ``print()`` output it replaced, so seeded CLI invocations keep
  printing the same bytes and the pinned CLI tests hold;
* **json** (``--log-json``) — one JSON object per line
  (``{"level": ..., "logger": ..., "event": ..., "fields": {...}}``),
  the shape a log shipper ingests.  JSON records carry a wall-clock
  ``ts``; like trace files, logs are observations about a run, never
  inputs to it, so they sit outside the determinism contract.

Routing matches the CLI's historical behaviour: records below WARNING
go to stdout, WARNING and above to stderr.  Handlers resolve
``sys.stdout``/``sys.stderr`` *at emit time*, so pytest's ``capsys``
(and any other stream swap) keeps working.

Use :func:`get_logger` for a :class:`StructuredLogger`, whose methods
accept keyword fields::

    log = get_logger("cli")
    log.info("node state saved", state_dir=path, height=chain.height)

In human mode the fields are dropped (the message is the rendering); in
JSON mode they ride the ``fields`` member with JSON-safe coercion.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, Dict, Optional

__all__ = [
    "configure_logging",
    "get_logger",
    "StructuredLogger",
    "add_logging_flags",
]

_ROOT_NAME = "repro"


class _DynamicStreamHandler(logging.StreamHandler):
    """A StreamHandler bound to a *name* (stdout/stderr), not an object."""

    def __init__(self, use_stderr: bool) -> None:
        super().__init__()
        self._use_stderr = use_stderr

    @property
    def stream(self):  # type: ignore[override]
        return sys.stderr if self._use_stderr else sys.stdout

    @stream.setter
    def stream(self, value):  # logging.StreamHandler.__init__ assigns it
        pass


class _MaxLevelFilter(logging.Filter):
    def __init__(self, below: int) -> None:
        super().__init__()
        self._below = below

    def filter(self, record: logging.LogRecord) -> bool:
        return record.levelno < self._below


class _HumanFormatter(logging.Formatter):
    """The message, nothing else — what ``print()`` produced."""

    def format(self, record: logging.LogRecord) -> str:
        message = record.getMessage()
        if record.levelno >= logging.ERROR and not message.startswith("error"):
            return "error: %s" % message
        return message


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return str(value)


class _JsonFormatter(logging.Formatter):
    """One JSON object per record, keys sorted, fields coerced."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": round(time.time(), 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if fields:
            payload["fields"] = _json_safe(fields)
        return json.dumps(payload, sort_keys=True)


def configure_logging(
    level: str = "info", json_mode: bool = False
) -> logging.Logger:
    """(Re)configure the ``repro`` logger tree; idempotent per process.

    ``level`` is a stdlib level name (``debug``/``info``/``warning``/
    ``error``); ``json_mode`` switches the one-object-per-line shape on.
    """
    numeric = getattr(logging, level.upper(), None)
    if not isinstance(numeric, int):
        raise ValueError("unknown log level %r" % level)
    root = logging.getLogger(_ROOT_NAME)
    root.setLevel(numeric)
    root.propagate = False
    for handler in list(root.handlers):
        root.removeHandler(handler)
    formatter: logging.Formatter = (
        _JsonFormatter() if json_mode else _HumanFormatter()
    )
    out_handler = _DynamicStreamHandler(use_stderr=False)
    out_handler.addFilter(_MaxLevelFilter(logging.WARNING))
    out_handler.setFormatter(formatter)
    err_handler = _DynamicStreamHandler(use_stderr=True)
    err_handler.setLevel(logging.WARNING)
    err_handler.setFormatter(formatter)
    root.addHandler(out_handler)
    root.addHandler(err_handler)
    return root


def _ensure_configured() -> None:
    if not logging.getLogger(_ROOT_NAME).handlers:
        configure_logging()


class StructuredLogger:
    """A thin facade: level methods with keyword fields.

    Fields are structured context (``height=4``, ``state_dir=path``):
    rendered in JSON mode, dropped in human mode where the message
    already is the rendering.
    """

    __slots__ = ("_logger",)

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    def _log(self, level: int, message: str, fields: Dict[str, Any]) -> None:
        _ensure_configured()
        if self._logger.isEnabledFor(level):
            self._logger.log(level, message, extra={"fields": fields})

    def debug(self, message: str, **fields: Any) -> None:
        self._log(logging.DEBUG, message, fields)

    def info(self, message: str, **fields: Any) -> None:
        self._log(logging.INFO, message, fields)

    def warning(self, message: str, **fields: Any) -> None:
        self._log(logging.WARNING, message, fields)

    def error(self, message: str, **fields: Any) -> None:
        self._log(logging.ERROR, message, fields)


def get_logger(name: str) -> StructuredLogger:
    """The structured logger for ``repro.<name>``."""
    return StructuredLogger(logging.getLogger("%s.%s" % (_ROOT_NAME, name)))


def add_logging_flags(parser) -> None:
    """Attach the shared observability flags to one (sub)parser."""
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit one JSON object per log line instead of human text",
    )
    parser.add_argument(
        "--log-level", default="info", metavar="LEVEL",
        help="log threshold: debug, info, warning, error (default info)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write a JSONL span trace of the run to FILE "
        "(block mining, session phases, proof jobs, RPC dispatch)",
    )
