"""The span tracer: explicit-clock, deterministic-safe, JSONL on disk.

A :class:`Tracer` writes one JSON object per finished span to a sink
file — the trace of where the time went: block mining, session phase
transitions, proof jobs (submit → dispatch → complete across the pool
process boundary), and RPC dispatch.  ``--trace FILE`` on the CLI's
``serve`` / ``simulate`` / ``node rpc-serve`` installs one for the run.

Determinism contract
--------------------

Wall-clock time **never** feeds the DRBG, the codec, or ``state_root``:
the tracer reads :func:`span_clock` (``time.perf_counter``) and writes
only to its own file.  Span ids come from a plain counter, not from
entropy.  A seeded scenario traced to a file is therefore byte-identical
— receipts, gas, report JSON, ``state_root`` — to the same scenario
untraced; only the trace file (whose timestamps are honest wall clock)
differs between runs.

Trace-file schema (one object per line)::

    {"v": 1, "span": 7, "parent": 3, "name": "chain.mine_block",
     "start": 1.0231, "end": 1.0288, "attrs": {"block": 4, "txs": 2}}

``start``/``end`` are :func:`span_clock` seconds in the *emitting
process's* clock domain.  Spans shipped back from pool worker processes
carry ``"clock": "worker"`` and a ``"pid"`` attr: their timestamps are
the worker's own monotonic clock (not comparable to the parent's), but
their parent/child linkage is exact — the submit-side span is their
``parent``.

The tracer keeps an implicit per-thread span stack, so nested
instrumentation points (an engine step containing a block mine
containing an MSM) link up without threading ids through every call
signature.  When no tracer is installed (the default), every
instrumentation point costs one attribute load and a no-op context
manager — cheap enough for the crypto hot path.
"""

from __future__ import annotations

import atexit
import contextlib
import json
import threading
import time
from typing import Any, Dict, IO, Iterator, Optional

__all__ = [
    "SPAN_SCHEMA_VERSION",
    "span_clock",
    "Tracer",
    "NullTracer",
    "get_tracer",
    "set_tracer",
    "trace_to",
    "trace_span",
]

#: Version stamp on every trace record.
SPAN_SCHEMA_VERSION = 1


def span_clock() -> float:
    """The one clock every span, stopwatch, and bench timer reads.

    Monotonic ``time.perf_counter`` — benchmark tables and trace files
    agree on methodology because they literally share this function.
    """
    return time.perf_counter()


class _NullSpan:
    """The shared no-op span: absorbs the full Span surface for free."""

    __slots__ = ()
    id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass

    def set(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a cheap no-op."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def emit(
        self,
        name: str,
        start: float,
        end: float,
        parent: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
        **extra: Any,
    ) -> Optional[int]:
        return None

    def current_span_id(self) -> Optional[int]:
        return None

    def close(self) -> None:
        pass


class Span:
    """One live span: a context manager that emits itself on exit."""

    __slots__ = ("_tracer", "name", "attrs", "id", "parent", "start")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.id = tracer._next_id()
        self.parent: Optional[int] = None
        self.start = 0.0

    def set(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        self.parent = stack[-1] if stack else None
        stack.append(self.id)
        self.start = self._tracer.clock()
        return self

    def __exit__(self, exc_type: Any, *exc_info: object) -> None:
        end = self._tracer.clock()
        stack = self._tracer._stack()
        if stack and stack[-1] == self.id:
            stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._write(
            {
                "v": SPAN_SCHEMA_VERSION,
                "span": self.id,
                "parent": self.parent,
                "name": self.name,
                "start": self.start,
                "end": end,
                "attrs": self.attrs,
            }
        )


class Tracer:
    """A JSONL span emitter over one sink file.

    ``sink`` is any text-mode file-like object; writes are serialized
    under a lock (spans are emitted from RPC dispatch threads, the
    engine thread, and pool-collection paths alike).  Span ids are
    monotonically increasing ints — unique per tracer, assigned at span
    creation, never drawn from entropy.
    """

    enabled = True

    def __init__(self, sink: IO[str], clock=span_clock) -> None:
        self._sink = sink
        self.clock = clock
        self._lock = threading.Lock()
        self._ids = 0
        self._local = threading.local()
        self.spans_written = 0

    # -- internals --------------------------------------------------------

    def _next_id(self) -> int:
        with self._lock:
            self._ids += 1
            return self._ids

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _write(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            self._sink.write(line + "\n")
            self.spans_written += 1

    # -- the public surface ----------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        """An implicit-parent span; use as a context manager."""
        return Span(self, name, attrs)

    def emit(
        self,
        name: str,
        start: float,
        end: float,
        parent: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
        **extra: Any,
    ) -> int:
        """Emit a pre-measured span (e.g. shipped back from a worker)."""
        span_id = self._next_id()
        record: Dict[str, Any] = {
            "v": SPAN_SCHEMA_VERSION,
            "span": span_id,
            "parent": parent,
            "name": name,
            "start": start,
            "end": end,
            "attrs": dict(attrs or {}),
        }
        record.update(extra)
        self._write(record)
        return span_id

    def current_span_id(self) -> Optional[int]:
        stack = self._stack()
        return stack[-1] if stack else None

    def close(self) -> None:
        with self._lock:
            try:
                self._sink.flush()
            except ValueError:
                # The sink was already closed (atexit firing after a
                # normal trace_to unwind): nothing left to flush.
                pass


#: The process-global tracer; NullTracer unless a run installs one.
_TRACER: "Tracer | NullTracer" = NullTracer()


def get_tracer() -> "Tracer | NullTracer":
    return _TRACER


def set_tracer(tracer: Optional["Tracer | NullTracer"]) -> None:
    """Install ``tracer`` process-wide (``None`` restores the null tracer)."""
    global _TRACER
    _TRACER = tracer if tracer is not None else NullTracer()


@contextlib.contextmanager
def trace_to(path: str) -> Iterator[Tracer]:
    """Trace everything inside the block to a JSONL file at ``path``.

    File lifecycle: the sink is **line-buffered**, so every finished
    span reaches the OS as a complete line the moment it is emitted —
    a ``kill -9`` mid-run loses at most the line being written (a torn
    tail the analyzer tolerates), never a buffer of finished spans.
    For the catchable ends (SIGINT/SIGTERM unwound as
    :class:`KeyboardInterrupt` by the CLI, plain ``sys.exit``) the
    ``finally`` below flushes and closes; an ``atexit`` hook backstops
    interpreter exits that skip the context manager's unwind.
    """
    sink = open(path, "w", encoding="utf-8", buffering=1)
    tracer = Tracer(sink)
    previous = get_tracer()
    set_tracer(tracer)
    atexit.register(tracer.close)
    try:
        yield tracer
    finally:
        set_tracer(previous)
        tracer.close()
        atexit.unregister(tracer.close)
        sink.close()


def trace_span(name: str, **attrs: Any):
    """``with trace_span("chain.mine_block", block=n):`` — the one-liner
    instrumentation points use; a shared no-op when tracing is off."""
    return _TRACER.span(name, **attrs)
