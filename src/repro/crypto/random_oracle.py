"""A programmable global random oracle built on keccak-256.

The paper analyses Dragoon in the (global, programmable) random-oracle
model [45].  For the *real* protocol the oracle is just keccak-256; for the
*ideal-world simulator* and the zero-knowledge tests we additionally need
the ability to *program* the oracle: fix the output on a chosen input so
that a simulated Fiat–Shamir transcript verifies.

:class:`RandomOracle` supports both: un-programmed queries fall through to
keccak-256, while ``program(query, answer)`` installs an override.  A
consistency guard refuses to program a point that has already been queried
(that is exactly the event whose probability the ROM proof bounds).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.crypto.keccak import keccak256
from repro.errors import CryptoError


class OracleConsistencyError(CryptoError):
    """Raised when programming would contradict an answer already given."""


class RandomOracle:
    """A programmable random oracle with keccak-256 as the default table."""

    def __init__(self) -> None:
        self._programmed: Dict[bytes, bytes] = {}
        self._observed: Set[bytes] = set()

    def query(self, data: bytes) -> bytes:
        """Return the oracle's 32-byte answer on ``data``."""
        self._observed.add(data)
        override = self._programmed.get(data)
        if override is not None:
            return override
        return keccak256(data)

    def query_int(self, data: bytes, modulus: Optional[int] = None) -> int:
        """Return the oracle's answer as an integer, optionally mod ``modulus``."""
        value = int.from_bytes(self.query(data), "big")
        if modulus is not None:
            value %= modulus
        return value

    def program(self, data: bytes, answer: bytes) -> None:
        """Fix the oracle's answer on ``data`` (simulator capability).

        Raises :class:`OracleConsistencyError` if ``data`` was already
        queried with a different answer — a simulator that hits this event
        has lost, mirroring the negligible failure case of the ROM proof.
        """
        if len(answer) != 32:
            raise CryptoError("random-oracle answers must be 32 bytes")
        if data in self._observed and self.query(data) != answer:
            raise OracleConsistencyError(
                "cannot reprogram an already-observed oracle point"
            )
        existing = self._programmed.get(data)
        if existing is not None and existing != answer:
            raise OracleConsistencyError("conflicting programming of oracle point")
        self._programmed[data] = answer

    def is_programmed(self, data: bytes) -> bool:
        """Whether ``data`` has a programmed (non-keccak) answer."""
        return data in self._programmed

    @property
    def programmed_count(self) -> int:
        return len(self._programmed)

    def reset(self) -> None:
        """Forget all programming and observations (fresh oracle)."""
        self._programmed.clear()
        self._observed.clear()


_DEFAULT_ORACLE = RandomOracle()


def default_oracle() -> RandomOracle:
    """The process-wide default oracle (plain keccak-256 unless programmed)."""
    return _DEFAULT_ORACLE
