"""Linkable ring signatures (LSAG) over BN-128 G1.

The paper's footnote 6 defers worker anonymity to "anonymous-yet-
accountable authentication" (the authors' ZebraLancer line of work).
This module supplies that substrate: a Liu–Wei–Wong-style linkable ring
signature with *per-context linkability tags*:

* **Anonymity** — a signature proves the signer holds the secret key of
  *one* of the ring's public keys, without revealing which.
* **Linkability within a context** — the tag ``I = H_p(context)^x`` is
  deterministic per (signer, context): two signatures by the same worker
  on the same task carry the same tag, so Sybil double-participation in
  one task is detectable on-chain.
* **Unlinkability across contexts** — tags under different contexts are
  unlinkable DDH instances, so a worker's participation across tasks
  cannot be correlated (the "common-prefix-linkable" notion of
  ZebraLancer, with the task id as the prefix).

Construction: the classic back-linked challenge ring
``c_{i+1} = H(m, ring, I, g^{s_i} y_i^{c_i}, h^{s_i} I^{c_i})`` closed
into a cycle, Fiat–Shamir in the random-oracle model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.crypto.curve import CURVE_ORDER, G1Point, random_scalar
from repro.crypto.random_oracle import RandomOracle, default_oracle
from repro.errors import CryptoError, InvalidScalar

_G = G1Point.generator()


@dataclass(frozen=True)
class RingSignature:
    """An LSAG signature: seed challenge, per-member responses, tag."""

    challenge: int  # c_0
    responses: Tuple[int, ...]  # s_0 .. s_{n-1}
    tag: G1Point  # the linkability tag I

    def size_bytes(self) -> int:
        return 32 + 32 * len(self.responses) + 64


def tag_base(context: bytes) -> G1Point:
    """The per-context tag base ``H_p(context)``."""
    return G1Point.hash_to_group(b"lsag-tag" + context)


def linkability_tag(secret: int, context: bytes) -> G1Point:
    """The tag a signer with ``secret`` produces under ``context``."""
    return tag_base(context) * secret


def _chain_challenge(
    oracle: RandomOracle,
    message: bytes,
    ring: Sequence[G1Point],
    tag: G1Point,
    left: G1Point,
    right: G1Point,
) -> int:
    transcript = (
        b"lsag"
        + message
        + b"".join(point.to_bytes() for point in ring)
        + tag.to_bytes()
        + left.to_bytes()
        + right.to_bytes()
    )
    return oracle.query_int(transcript, CURVE_ORDER)


def ring_sign(
    message: bytes,
    ring: Sequence[G1Point],
    secret: int,
    signer_index: int,
    context: bytes,
    oracle: Optional[RandomOracle] = None,
) -> RingSignature:
    """Sign ``message`` as an anonymous member of ``ring``."""
    ro = oracle if oracle is not None else default_oracle()
    n = len(ring)
    if n < 2:
        raise CryptoError("a ring needs at least two members")
    if not 0 <= signer_index < n:
        raise CryptoError("signer index outside the ring")
    if not 0 < secret < CURVE_ORDER:
        raise InvalidScalar("ring-signature secret out of range")
    if ring[signer_index] != _G * secret:
        raise CryptoError("secret does not match the claimed ring slot")

    base = tag_base(context)
    tag = base * secret

    challenges: List[Optional[int]] = [None] * n
    responses: List[Optional[int]] = [None] * n

    # Start the chain just after the signer with a random nonce.
    nonce = random_scalar()
    challenges[(signer_index + 1) % n] = _chain_challenge(
        ro, message, ring, tag, _G * nonce, base * nonce
    )

    # Walk the ring with random responses for every other member.
    index = (signer_index + 1) % n
    while index != signer_index:
        responses[index] = random_scalar()
        current_challenge = challenges[index]
        assert current_challenge is not None
        left = _G * responses[index] + ring[index] * current_challenge
        right = base * responses[index] + tag * current_challenge
        challenges[(index + 1) % n] = _chain_challenge(
            ro, message, ring, tag, left, right
        )
        index = (index + 1) % n

    # Close the cycle at the signer.
    signer_challenge = challenges[signer_index]
    assert signer_challenge is not None
    responses[signer_index] = (nonce - secret * signer_challenge) % CURVE_ORDER

    first_challenge = challenges[0]
    assert first_challenge is not None
    return RingSignature(
        challenge=first_challenge,
        responses=tuple(int(s) for s in responses),  # type: ignore[arg-type]
        tag=tag,
    )


def ring_verify(
    message: bytes,
    ring: Sequence[G1Point],
    signature: RingSignature,
    context: bytes,
    oracle: Optional[RandomOracle] = None,
) -> bool:
    """Verify an LSAG signature against ``ring`` under ``context``."""
    ro = oracle if oracle is not None else default_oracle()
    n = len(ring)
    if n < 2 or len(signature.responses) != n:
        return False
    if signature.tag.is_infinity:
        return False

    base = tag_base(context)
    challenge = signature.challenge
    for index in range(n):
        response = signature.responses[index]
        if not 0 <= response < CURVE_ORDER:
            return False
        left = _G * response + ring[index] * challenge
        right = base * response + signature.tag * challenge
        challenge = _chain_challenge(
            ro, message, ring, signature.tag, left, right
        )
    return challenge == signature.challenge


def tags_link(a: RingSignature, b: RingSignature) -> bool:
    """Whether two signatures were produced by the same signer (same
    context) — the double-participation detector."""
    return a.tag == b.tag


def keygen_ring(size: int) -> Tuple[List[G1Point], List[int]]:
    """Generate a ring of ``size`` key pairs (for tests and examples)."""
    secrets_list = [random_scalar() for _ in range(size)]
    publics = [_G * secret for secret in secrets_list]
    return publics, secrets_list
