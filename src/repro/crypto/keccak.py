"""Keccak-256 implemented from scratch (the Ethereum hash function).

This is original Keccak with multi-rate padding (``0x01 .. 0x80``), *not*
NIST SHA3-256 (which pads with ``0x06``).  Ethereum commits to keccak-256
everywhere (transaction hashes, event topics, the ``keccak256`` opcode), and
Dragoon instantiates its random oracle and commitments with it, so we
implement the real thing and test it against the well-known vectors.

The implementation is a straightforward sponge over keccak-f[1600]:
25 lanes of 64 bits, 24 rounds of theta / rho / pi / chi / iota, rate
1088 bits (136 bytes) and capacity 512 bits for the 256-bit output.
"""

from __future__ import annotations

from typing import List

_LANE_MASK = (1 << 64) - 1
_RATE_BYTES = 136  # 1088-bit rate for Keccak-256
_OUTPUT_BYTES = 32

_ROUND_CONSTANTS = (
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808A,
    0x8000000080008000,
    0x000000000000808B,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008A,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000A,
    0x000000008000808B,
    0x800000000000008B,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800A,
    0x800000008000000A,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
)

# Rotation offsets r[x][y] for the rho step, indexed [x][y].
_ROTATIONS = (
    (0, 36, 3, 41, 18),
    (1, 44, 10, 45, 2),
    (62, 6, 43, 15, 61),
    (28, 55, 25, 21, 56),
    (27, 20, 39, 8, 14),
)


def _rotl(value: int, shift: int) -> int:
    """Rotate a 64-bit lane left by ``shift`` bits."""
    shift %= 64
    return ((value << shift) | (value >> (64 - shift))) & _LANE_MASK


# Flattened rho/pi mapping: b[_PI_DEST[i]] = rotl(state[i], _RHO_SHIFT[i]),
# precomputed once so the permutation's inner loops stay allocation-light.
_PI_DEST = tuple(
    (i // 5) + 5 * ((2 * (i % 5) + 3 * (i // 5)) % 5) for i in range(25)
)
_RHO_SHIFT = tuple(_ROTATIONS[i % 5][i // 5] for i in range(25))


def _keccak_f1600(state: List[int]) -> None:
    """Apply the keccak-f[1600] permutation to a 25-lane state in place.

    The state is indexed as ``state[x + 5 * y]``.  Loops are flattened
    against precomputed index tables; this permutation is the single
    hottest function in the repository (every commitment, oracle query,
    and on-chain hash lands here).
    """
    mask = _LANE_MASK
    b = [0] * 25
    for round_constant in _ROUND_CONSTANTS:
        # theta
        c0 = state[0] ^ state[5] ^ state[10] ^ state[15] ^ state[20]
        c1 = state[1] ^ state[6] ^ state[11] ^ state[16] ^ state[21]
        c2 = state[2] ^ state[7] ^ state[12] ^ state[17] ^ state[22]
        c3 = state[3] ^ state[8] ^ state[13] ^ state[18] ^ state[23]
        c4 = state[4] ^ state[9] ^ state[14] ^ state[19] ^ state[24]
        d0 = c4 ^ (((c1 << 1) | (c1 >> 63)) & mask)
        d1 = c0 ^ (((c2 << 1) | (c2 >> 63)) & mask)
        d2 = c1 ^ (((c3 << 1) | (c3 >> 63)) & mask)
        d3 = c2 ^ (((c4 << 1) | (c4 >> 63)) & mask)
        d4 = c3 ^ (((c0 << 1) | (c0 >> 63)) & mask)
        for y in (0, 5, 10, 15, 20):
            state[y] ^= d0
            state[y + 1] ^= d1
            state[y + 2] ^= d2
            state[y + 3] ^= d3
            state[y + 4] ^= d4

        # rho + pi (flattened)
        for index in range(25):
            lane = state[index]
            shift = _RHO_SHIFT[index]
            b[_PI_DEST[index]] = (
                ((lane << shift) | (lane >> (64 - shift))) & mask
                if shift
                else lane
            )

        # chi
        for y in (0, 5, 10, 15, 20):
            b0, b1, b2, b3, b4 = b[y], b[y + 1], b[y + 2], b[y + 3], b[y + 4]
            state[y] = b0 ^ (~b1 & b2)
            state[y + 1] = b1 ^ (~b2 & b3)
            state[y + 2] = b2 ^ (~b3 & b4)
            state[y + 3] = b3 ^ (~b4 & b0)
            state[y + 4] = b4 ^ (~b0 & b1)

        # iota
        state[0] = (state[0] & mask) ^ round_constant


def keccak256(data: bytes) -> bytes:
    """Compute the 32-byte keccak-256 digest of ``data``."""
    state = [0] * 25

    # Multi-rate padding: append 0x01, zero-fill, set high bit of last byte.
    padded = bytearray(data)
    pad_len = _RATE_BYTES - (len(padded) % _RATE_BYTES)
    padded += b"\x01" + b"\x00" * (pad_len - 1)
    padded[-1] ^= 0x80

    # Absorb.
    for offset in range(0, len(padded), _RATE_BYTES):
        block = padded[offset : offset + _RATE_BYTES]
        for lane in range(_RATE_BYTES // 8):
            state[lane] ^= int.from_bytes(block[lane * 8 : lane * 8 + 8], "little")
        _keccak_f1600(state)

    # Squeeze (a single block suffices for 32 bytes of output).
    output = bytearray()
    for lane in range(_OUTPUT_BYTES // 8):
        output += state[lane].to_bytes(8, "little")
    return bytes(output)


def keccak256_hex(data: bytes) -> str:
    """Hex-encoded keccak-256 digest (convenience)."""
    return keccak256(data).hex()


def keccak_to_int(data: bytes) -> int:
    """Interpret the keccak-256 digest of ``data`` as a big-endian integer."""
    return int.from_bytes(keccak256(data), "big")
