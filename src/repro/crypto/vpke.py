"""VPKE — verifiable decryption of exponential ElGamal (paper §V-C).

This is the workhorse primitive of Dragoon: the requester decrypts a
ciphertext ``(c1, c2)`` and proves the decryption correct with a Schnorr
variant for Diffie–Hellman tuples, Fiat–Shamir compiled.  Following the
paper exactly:

``ProvePKE_k((c1, c2))``
    Decrypt to ``m`` (or to the bare group element ``g^m`` when the
    plaintext is out of range).  Sample ``x``; compute ``A = c1^x``,
    ``B = g^x``, ``C = H(A‖B‖g‖h‖c1‖c2‖g^m)``, ``Z = x + k·C``.
    The proof is ``(A, B, Z)``.

``VerifyPKE_h(M, (c1, c2), (A, B, Z))``
    Recompute ``C'`` and check ``g^{M·C'} · c1^Z == A · c2^{C'}`` and
    ``g^Z == B · h^{C'}`` (with ``g^{M·C'}`` replaced by ``M^{C'}`` when
    ``M`` is a group element).

The second equation proves ``(g, h, B, ·)`` knowledge of ``k``; the first
transfers it onto the tuple ``(c1, c2/g^m)``, i.e. correct decryption.

Zero-knowledge: :func:`simulate_proof` forges accepting proofs for true
statements *without* ``k`` by programming the random oracle — this is the
simulator ``S_VPKE`` invoked by the paper's Lemma 1 and Theorem 1.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple, Union

from repro.crypto.curve import CURVE_ORDER, G1Point, msm, random_scalar
from repro.crypto.elgamal import (
    Ciphertext,
    ElGamalPublicKey,
    ElGamalSecretKey,
    keygen,
)
from repro.crypto.random_oracle import RandomOracle, default_oracle
from repro.errors import ProofError

_G = G1Point.generator()

#: A claimed plaintext: an in-range integer or a bare group element.
Claim = Union[int, G1Point]


@dataclass(frozen=True)
class DecryptionProof:
    """The paper's VPKE proof ``pi = (A, B, Z)``."""

    commitment_a: G1Point
    commitment_b: G1Point
    response: int

    def to_bytes(self) -> bytes:
        return (
            self.commitment_a.to_bytes()
            + self.commitment_b.to_bytes()
            + self.response.to_bytes(32, "big")
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "DecryptionProof":
        if len(data) != 160:
            raise ValueError("VPKE proofs encode to 160 bytes")
        return cls(
            G1Point.from_bytes(data[:64]),
            G1Point.from_bytes(data[64:128]),
            int.from_bytes(data[128:], "big"),
        )


def _claim_point(claim: Claim) -> G1Point:
    """The group element the proof's hash input commits to (``g^m`` or M)."""
    if isinstance(claim, int):
        return _G.mul_fixed(claim)
    return claim


def _transcript(
    claim: Claim,
    ciphertext: Ciphertext,
    public_key: ElGamalPublicKey,
    commitment_a: G1Point,
    commitment_b: G1Point,
) -> bytes:
    return (
        b"vpke"
        + commitment_a.to_bytes()
        + commitment_b.to_bytes()
        + _G.to_bytes()
        + public_key.to_bytes()
        + ciphertext.c1.to_bytes()
        + ciphertext.c2.to_bytes()
        + _claim_point(claim).to_bytes()
    )


def prove_decryption(
    secret_key: ElGamalSecretKey,
    ciphertext: Ciphertext,
    message_range: Iterable[int],
    oracle: Optional[RandomOracle] = None,
) -> Tuple[Claim, DecryptionProof]:
    """Decrypt and prove: returns ``(m, pi)`` or ``(g^m, pi)`` if out of range."""
    ro = oracle if oracle is not None else default_oracle()
    claim = secret_key.decrypt(ciphertext, message_range)
    public_key = secret_key.public_key

    x = random_scalar()
    commitment_a = ciphertext.c1 * x
    commitment_b = _G.mul_fixed(x)
    challenge = ro.query_int(
        _transcript(claim, ciphertext, public_key, commitment_a, commitment_b),
        CURVE_ORDER,
    )
    response = (x + secret_key.k * challenge) % CURVE_ORDER
    return claim, DecryptionProof(commitment_a, commitment_b, response)


def verify_decryption(
    public_key: ElGamalPublicKey,
    claim: Claim,
    ciphertext: Ciphertext,
    proof: DecryptionProof,
    oracle: Optional[RandomOracle] = None,
) -> bool:
    """Verify a VPKE proof that ``claim`` is the decryption of ``ciphertext``."""
    ro = oracle if oracle is not None else default_oracle()
    challenge = ro.query_int(
        _transcript(
            claim, ciphertext, public_key, proof.commitment_a, proof.commitment_b
        ),
        CURVE_ORDER,
    )
    claim_point = _claim_point(claim)

    # g^{m C'} · c1^Z == A · c2^{C'}   (correct decryption)
    lhs_dec = claim_point * challenge + ciphertext.c1 * proof.response
    rhs_dec = proof.commitment_a + ciphertext.c2 * challenge
    if lhs_dec != rhs_dec:
        return False

    # g^Z == B · h^{C'}   (knowledge of the secret key)
    lhs_key = _G.mul_fixed(proof.response)
    rhs_key = proof.commitment_b + public_key.h.mul_fixed(challenge)
    return lhs_key == rhs_key


def simulate_proof(
    public_key: ElGamalPublicKey,
    claim: Claim,
    ciphertext: Ciphertext,
    oracle: Optional[RandomOracle] = None,
) -> DecryptionProof:
    """Forge an accepting proof for a *true* statement without the key.

    This is the zero-knowledge simulator ``S_VPKE``: sample the challenge
    and response first, solve for the commitments, then program the random
    oracle so the Fiat–Shamir challenge comes out right.  Only sound to
    call on true statements; the forged proof is indistinguishable from an
    honest one.
    """
    from repro.crypto.rng import entropy

    ro = oracle if oracle is not None else default_oracle()
    challenge = entropy.randbelow(CURVE_ORDER)
    response = random_scalar()
    claim_point = _claim_point(claim)

    commitment_a = (
        claim_point * challenge
        + ciphertext.c1 * response
        - ciphertext.c2 * challenge
    )
    commitment_b = _G.mul_fixed(response) - public_key.h.mul_fixed(challenge)

    transcript = _transcript(
        claim, ciphertext, public_key, commitment_a, commitment_b
    )
    ro.program(transcript, challenge.to_bytes(32, "big"))
    return DecryptionProof(commitment_a, commitment_b, response)


def verify_decryption_batch(
    public_key: ElGamalPublicKey,
    statements: "list[tuple[Claim, Ciphertext, DecryptionProof]]",
    oracle: Optional[RandomOracle] = None,
) -> bool:
    """Small-exponent batch verification of many VPKE proofs.

    An extension beyond the paper: a PoQoEA proof carries one VPKE proof
    per mismatch, and the verifier's two group equations per proof can
    be folded into one random linear combination with independent
    128-bit weights ``u_i`` (decryption equation) and ``v_i`` (key
    equation):

        sum_i [ u_i·(C_i·M_i + Z_i·c1_i − A_i − C_i·c2_i)
              + v_i·(Z_i·G − B_i − C_i·h) ]  ==  O

    The whole sum is evaluated as a *single* multi-scalar
    multiplication (:func:`repro.crypto.curve.msm`): the ``G`` and ``h``
    terms collapse to one point each, and the remaining ``5n`` terms go
    through the Pippenger bucket method instead of ``6n`` independent
    double-and-add multiplications.  Soundness error is ``2^-128`` per
    run by the standard small-exponent argument.
    """
    ro = oracle if oracle is not None else default_oracle()
    checks = []
    for claim, ciphertext, proof in statements:
        challenge = ro.query_int(
            _transcript(
                claim, ciphertext, public_key,
                proof.commitment_a, proof.commitment_b,
            ),
            CURVE_ORDER,
        )
        checks.append(
            (claim, ciphertext, proof.commitment_a, proof.commitment_b,
             challenge, proof.response)
        )
    return fold_dh_checks(public_key, checks)


def fold_dh_checks(
    public_key: ElGamalPublicKey,
    checks: "list[tuple[Claim, Ciphertext, G1Point, G1Point, int, int]]",
) -> bool:
    """One MSM over many DH-tuple verification equations.

    Each check ``(claim, ciphertext, A, B, challenge, response)`` stands
    for the VPKE verifier's two equations; where the challenge came from
    (Fiat–Shamir or an interactive verifier) is the caller's business.
    This is the single sign-sensitive implementation of the fold both
    :func:`verify_decryption_batch` and
    :func:`repro.crypto.sigma.verify_transcripts_batch` ride on.
    """
    if not checks:
        return True
    points: "list[G1Point]" = []
    scalars: "list[int]" = []
    generator_scalar = 0
    pubkey_scalar = 0
    from repro.crypto.rng import entropy

    for claim, ciphertext, commitment_a, commitment_b, challenge, response in checks:
        dec_weight = entropy.getrandbits(128) | 1
        key_weight = entropy.getrandbits(128) | 1
        points.extend(
            (
                _claim_point(claim),
                ciphertext.c1,
                ciphertext.c2,
                commitment_a,
                commitment_b,
            )
        )
        scalars.extend(
            (
                dec_weight * challenge,
                dec_weight * response,
                -dec_weight * challenge,
                -dec_weight,
                -key_weight,
            )
        )
        generator_scalar += key_weight * response
        pubkey_scalar -= key_weight * challenge
    points.extend((_G, public_key.h))
    scalars.extend((generator_scalar, pubkey_scalar))
    return msm(points, scalars).is_infinity


def self_test() -> None:
    """Quick prove/verify round trip (used by examples as a sanity check)."""
    pk, sk = keygen()
    ciphertext = pk.encrypt(1)
    claim, proof = prove_decryption(sk, ciphertext, range(2))
    if claim != 1 or not verify_decryption(pk, claim, ciphertext, proof):
        raise ProofError("VPKE self-test failed")
