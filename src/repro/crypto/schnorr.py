"""Schnorr-family sigma protocols, Fiat–Shamir compiled.

Two classical building blocks used across the library and its tests:

* :class:`SchnorrProof` — proof of knowledge of a discrete log (``h = g^k``),
  used by clients to register public keys so a corrupted requester cannot
  claim someone else's key.
* :class:`ChaumPedersenProof` — proof that two group elements share a
  discrete log w.r.t. two bases (a DDH-tuple proof); the paper's VPKE
  construction (see :mod:`repro.crypto.vpke`) is a variant of this.

Both are made non-interactive with the Fiat–Shamir transform over the
programmable random oracle, so the ideal-world simulator can forge them by
programming the oracle — exactly the ROM zero-knowledge argument.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.crypto.curve import CURVE_ORDER, G1Point, msm, random_scalar
from repro.crypto.random_oracle import RandomOracle, default_oracle

_G = G1Point.generator()


def _challenge(oracle: RandomOracle, transcript: bytes) -> int:
    return oracle.query_int(transcript, CURVE_ORDER)


# ---------------------------------------------------------------------------
# Proof of knowledge of discrete log
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SchnorrProof:
    """NIZK PoK of ``k`` with ``public = g^k``: ``(commitment B, response Z)``."""

    commitment: G1Point
    response: int

    def to_bytes(self) -> bytes:
        return self.commitment.to_bytes() + self.response.to_bytes(32, "big")


def schnorr_prove(
    secret: int,
    context: bytes = b"",
    oracle: Optional[RandomOracle] = None,
) -> SchnorrProof:
    """Prove knowledge of ``secret`` for the statement ``g^secret``."""
    ro = oracle if oracle is not None else default_oracle()
    public = _G * secret
    x = random_scalar()
    commitment = _G * x
    transcript = b"schnorr" + context + public.to_bytes() + commitment.to_bytes()
    challenge = _challenge(ro, transcript)
    response = (x + secret * challenge) % CURVE_ORDER
    return SchnorrProof(commitment, response)


def schnorr_verify(
    public: G1Point,
    proof: SchnorrProof,
    context: bytes = b"",
    oracle: Optional[RandomOracle] = None,
) -> bool:
    """Verify a Schnorr PoK: ``g^Z == B * public^C``."""
    ro = oracle if oracle is not None else default_oracle()
    transcript = b"schnorr" + context + public.to_bytes() + proof.commitment.to_bytes()
    challenge = _challenge(ro, transcript)
    return _G * proof.response == proof.commitment + public * challenge


def schnorr_verify_batch(
    statements: Sequence[Tuple[G1Point, SchnorrProof]],
    context: bytes = b"",
    oracle: Optional[RandomOracle] = None,
) -> bool:
    """Batch-verify many Schnorr PoKs with one multi-scalar multiplication.

    Registration bursts (many clients proving key knowledge at once) all
    check the same equation shape ``Z_i·G == B_i + C_i·pub_i``; random
    128-bit weights ``w_i`` fold them into

        (sum_i w_i·Z_i)·G − sum_i w_i·B_i − sum_i (w_i·C_i)·pub_i == O

    evaluated as a single MSM over ``2n + 1`` points.  Soundness error
    is ``2^-128`` per run (standard small-exponent argument); agreement
    with ``all(schnorr_verify(...))`` is exercised by the batch
    equivalence property tests.
    """
    ro = oracle if oracle is not None else default_oracle()
    if not statements:
        return True
    points: "list[G1Point]" = []
    scalars: "list[int]" = []
    generator_scalar = 0
    for public, proof in statements:
        transcript = (
            b"schnorr" + context + public.to_bytes() + proof.commitment.to_bytes()
        )
        challenge = _challenge(ro, transcript)
        weight = secrets.randbits(128) | 1
        points.extend((proof.commitment, public))
        scalars.extend((-weight, -weight * challenge))
        generator_scalar += weight * proof.response
    points.append(_G)
    scalars.append(generator_scalar)
    return msm(points, scalars).is_infinity


def schnorr_simulate(
    public: G1Point,
    context: bytes = b"",
    oracle: Optional[RandomOracle] = None,
) -> SchnorrProof:
    """Forge a Schnorr proof without the secret by programming the oracle."""
    ro = oracle if oracle is not None else default_oracle()
    response = random_scalar()
    challenge = secrets.randbelow(CURVE_ORDER)
    commitment = _G * response - public * challenge
    transcript = b"schnorr" + context + public.to_bytes() + commitment.to_bytes()
    ro.program(transcript, (challenge % 2**256).to_bytes(32, "big"))
    return SchnorrProof(commitment, response)


# ---------------------------------------------------------------------------
# Chaum–Pedersen DDH-tuple proof (equality of discrete logs)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChaumPedersenProof:
    """NIZK that ``log_g(u) == log_v(w)``: commitments (A, B) and response Z."""

    commitment_a: G1Point
    commitment_b: G1Point
    response: int

    def to_bytes(self) -> bytes:
        return (
            self.commitment_a.to_bytes()
            + self.commitment_b.to_bytes()
            + self.response.to_bytes(32, "big")
        )


def chaum_pedersen_prove(
    secret: int,
    base_v: G1Point,
    context: bytes = b"",
    oracle: Optional[RandomOracle] = None,
) -> ChaumPedersenProof:
    """Prove ``(g, u=g^s, v, w=v^s)`` is a DDH tuple, knowing ``s``."""
    ro = oracle if oracle is not None else default_oracle()
    u = _G * secret
    w = base_v * secret
    x = random_scalar()
    commitment_a = _G * x
    commitment_b = base_v * x
    transcript = (
        b"chaum-pedersen"
        + context
        + u.to_bytes()
        + base_v.to_bytes()
        + w.to_bytes()
        + commitment_a.to_bytes()
        + commitment_b.to_bytes()
    )
    challenge = _challenge(ro, transcript)
    response = (x + secret * challenge) % CURVE_ORDER
    return ChaumPedersenProof(commitment_a, commitment_b, response)


def chaum_pedersen_verify(
    u: G1Point,
    base_v: G1Point,
    w: G1Point,
    proof: ChaumPedersenProof,
    context: bytes = b"",
    oracle: Optional[RandomOracle] = None,
) -> bool:
    """Verify a Chaum–Pedersen proof for the tuple ``(g, u, v, w)``."""
    ro = oracle if oracle is not None else default_oracle()
    transcript = (
        b"chaum-pedersen"
        + context
        + u.to_bytes()
        + base_v.to_bytes()
        + w.to_bytes()
        + proof.commitment_a.to_bytes()
        + proof.commitment_b.to_bytes()
    )
    challenge = _challenge(ro, transcript)
    lhs_g = _G * proof.response
    rhs_g = proof.commitment_a + u * challenge
    lhs_v = base_v * proof.response
    rhs_v = proof.commitment_b + w * challenge
    return lhs_g == rhs_g and lhs_v == rhs_v


def chaum_pedersen_verify_batch(
    statements: Sequence[Tuple[G1Point, G1Point, G1Point, ChaumPedersenProof]],
    context: bytes = b"",
    oracle: Optional[RandomOracle] = None,
) -> bool:
    """Batch-verify Chaum–Pedersen proofs ``(u, v, w, proof)`` via one MSM.

    Both per-proof equations get independent random 128-bit weights, so
    one accumulated check replaces ``2n`` equation checks.
    """
    ro = oracle if oracle is not None else default_oracle()
    if not statements:
        return True
    points: "list[G1Point]" = []
    scalars: "list[int]" = []
    generator_scalar = 0
    for u, base_v, w, proof in statements:
        transcript = (
            b"chaum-pedersen"
            + context
            + u.to_bytes()
            + base_v.to_bytes()
            + w.to_bytes()
            + proof.commitment_a.to_bytes()
            + proof.commitment_b.to_bytes()
        )
        challenge = _challenge(ro, transcript)
        g_weight = secrets.randbits(128) | 1
        v_weight = secrets.randbits(128) | 1
        points.extend((proof.commitment_a, u, base_v, proof.commitment_b, w))
        scalars.extend(
            (
                -g_weight,
                -g_weight * challenge,
                v_weight * proof.response,
                -v_weight,
                -v_weight * challenge,
            )
        )
        generator_scalar += g_weight * proof.response
    points.append(_G)
    scalars.append(generator_scalar)
    return msm(points, scalars).is_infinity
