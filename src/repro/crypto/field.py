"""Prime-field arithmetic.

Two layers live here:

* :func:`make_prime_field` builds a lightweight field-element class for a
  given modulus (used by the pairing tower and the SNARK baseline, where
  readability matters more than raw speed).
* Plain-integer helpers (:func:`inv_mod`, :func:`sqrt_mod`) used by the hot
  paths in :mod:`repro.crypto.curve`, which work on raw ints for speed.

BN-128's two moduli are exported as :data:`FIELD_MODULUS` (the base field
of the curve) and :data:`CURVE_ORDER` (the prime order of G1/G2, which is
the scalar field of the SNARK baseline).
"""

from __future__ import annotations

from typing import Dict, Type

from repro.errors import CryptoError, NonResidueError

# BN-128 ("alt_bn128" in Ethereum): base-field modulus and group order.
FIELD_MODULUS = 21888242871839275222246405745257275088696311157297823662689037894645226208583
CURVE_ORDER = 21888242871839275222246405745257275088548364400416034343698204186575808495617


def inv_mod(value: int, modulus: int) -> int:
    """Modular inverse of ``value`` mod ``modulus`` (prime modulus)."""
    if value % modulus == 0:
        raise ZeroDivisionError("inverse of zero in prime field")
    return pow(value, -1, modulus)


def sqrt_mod(value: int, modulus: int) -> int:
    """A square root of ``value`` mod a prime ``modulus`` with p % 4 == 3.

    BN-128's base field satisfies p % 4 == 3, so the Tonelli shortcut
    ``value ** ((p + 1) / 4)`` applies.  Raises if no root exists.
    """
    if modulus % 4 != 3:
        raise CryptoError("sqrt_mod shortcut requires p % 4 == 3")
    value %= modulus
    root = pow(value, (modulus + 1) // 4, modulus)
    if root * root % modulus != value:
        raise NonResidueError("value is not a quadratic residue")
    return root


class FieldElement:
    """An element of a prime field; subclasses pin the modulus.

    Supports mixed arithmetic with plain ints.  Instances are immutable
    value objects: hashable and comparable by value.
    """

    modulus: int = 0
    __slots__ = ("n",)

    def __init__(self, value: "int | FieldElement") -> None:
        if isinstance(value, FieldElement):
            value = value.n
        self.n = value % self.modulus

    # -- helpers ----------------------------------------------------------

    @classmethod
    def _coerce(cls, other: "int | FieldElement") -> int:
        if isinstance(other, FieldElement):
            if other.modulus != cls.modulus:
                raise CryptoError("mixing elements of different fields")
            return other.n
        if isinstance(other, int):
            return other
        return NotImplemented  # type: ignore[return-value]

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: "int | FieldElement") -> "FieldElement":
        value = self._coerce(other)
        if value is NotImplemented:
            return NotImplemented
        return type(self)(self.n + value)

    __radd__ = __add__

    def __sub__(self, other: "int | FieldElement") -> "FieldElement":
        value = self._coerce(other)
        if value is NotImplemented:
            return NotImplemented
        return type(self)(self.n - value)

    def __rsub__(self, other: "int | FieldElement") -> "FieldElement":
        value = self._coerce(other)
        if value is NotImplemented:
            return NotImplemented
        return type(self)(value - self.n)

    def __mul__(self, other: "int | FieldElement") -> "FieldElement":
        value = self._coerce(other)
        if value is NotImplemented:
            return NotImplemented
        return type(self)(self.n * value)

    __rmul__ = __mul__

    def __truediv__(self, other: "int | FieldElement") -> "FieldElement":
        value = self._coerce(other)
        if value is NotImplemented:
            return NotImplemented
        return type(self)(self.n * inv_mod(value, self.modulus))

    def __rtruediv__(self, other: "int | FieldElement") -> "FieldElement":
        value = self._coerce(other)
        if value is NotImplemented:
            return NotImplemented
        return type(self)(value * inv_mod(self.n, self.modulus))

    def __pow__(self, exponent: int) -> "FieldElement":
        if exponent < 0:
            return type(self)(pow(inv_mod(self.n, self.modulus), -exponent, self.modulus))
        return type(self)(pow(self.n, exponent, self.modulus))

    def __neg__(self) -> "FieldElement":
        return type(self)(-self.n)

    def inverse(self) -> "FieldElement":
        return type(self)(inv_mod(self.n, self.modulus))

    # -- comparisons / protocol -------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FieldElement):
            return self.modulus == other.modulus and self.n == other.n
        if isinstance(other, int):
            return self.n == other % self.modulus
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash((self.modulus, self.n))

    def __int__(self) -> int:
        return self.n

    def __bool__(self) -> bool:
        return self.n != 0

    def __repr__(self) -> str:
        return "%s(%d)" % (type(self).__name__, self.n)

    # -- class-level constants ---------------------------------------------

    @classmethod
    def zero(cls) -> "FieldElement":
        return cls(0)

    @classmethod
    def one(cls) -> "FieldElement":
        return cls(1)


_FIELD_CACHE: Dict[int, Type[FieldElement]] = {}


def make_prime_field(modulus: int, name: str = "") -> Type[FieldElement]:
    """Create (and cache) a :class:`FieldElement` subclass for ``modulus``."""
    cached = _FIELD_CACHE.get(modulus)
    if cached is not None:
        return cached
    cls_name = name or "F%d" % (modulus % 100003)
    cls = type(cls_name, (FieldElement,), {"modulus": modulus, "__slots__": ()})
    _FIELD_CACHE[modulus] = cls
    return cls


# The two fields every other module uses.
Fq = make_prime_field(FIELD_MODULUS, "Fq")  # base field of BN-128
Fr = make_prime_field(CURVE_ORDER, "Fr")  # scalar field / SNARK field
