"""The interactive sigma protocol underlying VPKE (3-move form).

:mod:`repro.crypto.vpke` ships the Fiat–Shamir-compiled proof the
contract verifies.  This module exposes the *interactive* protocol it
compiles from, because the paper's zero-knowledge argument is clearest
there:

* **move 1** (prover → verifier): commitments ``A = c1^x``, ``B = g^x``;
* **move 2** (verifier → prover): a random challenge ``C``;
* **move 3** (prover → verifier): the response ``Z = x + k·C``.

Three properties, each checkable in code:

* *completeness* — honest transcripts verify;
* *special soundness* — two accepting transcripts with the same first
  move and different challenges yield the secret key
  (:func:`extract_secret`), which is exactly why a cheating prover
  cannot answer more than one challenge;
* *honest-verifier zero-knowledge* — transcripts can be simulated in
  reverse (challenge first) with a distribution identical to real ones
  (:func:`simulate_transcript`), **without** programming any oracle —
  the interactive setting needs no such power.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.crypto.curve import CURVE_ORDER, G1Point, random_scalar
from repro.crypto.elgamal import Ciphertext, ElGamalPublicKey, ElGamalSecretKey
from repro.crypto.vpke import Claim, _claim_point, fold_dh_checks
from repro.errors import ProofError

_G = G1Point.generator()


@dataclass(frozen=True)
class SigmaTranscript:
    """A complete 3-move transcript ``(A, B, C, Z)``."""

    commitment_a: G1Point
    commitment_b: G1Point
    challenge: int
    response: int


class SigmaProver:
    """The prover's side of one interactive session."""

    def __init__(
        self, secret_key: ElGamalSecretKey, ciphertext: Ciphertext
    ) -> None:
        self._secret_key = secret_key
        self._ciphertext = ciphertext
        self._nonce: int = 0

    def move1(self) -> Tuple[G1Point, G1Point]:
        """First move: fresh commitments."""
        self._nonce = random_scalar()
        return (
            self._ciphertext.c1 * self._nonce,
            _G.mul_fixed(self._nonce),
        )

    def move3(self, challenge: int) -> int:
        """Third move: the response to the verifier's challenge."""
        if not self._nonce:
            raise ProofError("move1 must precede move3")
        return (self._nonce + self._secret_key.k * challenge) % CURVE_ORDER


def fresh_challenge() -> int:
    """The honest verifier's move 2: a uniform challenge."""
    return secrets.randbelow(CURVE_ORDER)


def verify_transcript(
    public_key: ElGamalPublicKey,
    claim: Claim,
    ciphertext: Ciphertext,
    transcript: SigmaTranscript,
) -> bool:
    """The verifier's final check (same two equations as VPKE)."""
    claim_point = _claim_point(claim)
    challenge = transcript.challenge
    lhs_dec = claim_point * challenge + ciphertext.c1 * transcript.response
    rhs_dec = transcript.commitment_a + ciphertext.c2 * challenge
    if lhs_dec != rhs_dec:
        return False
    lhs_key = _G.mul_fixed(transcript.response)
    rhs_key = transcript.commitment_b + public_key.h.mul_fixed(challenge)
    return lhs_key == rhs_key


def verify_transcripts_batch(
    public_key: ElGamalPublicKey,
    statements: Sequence[Tuple[Claim, Ciphertext, SigmaTranscript]],
) -> bool:
    """Batch-verify many completed sigma transcripts with one MSM.

    Same random-linear-combination fold as the non-interactive
    :func:`repro.crypto.vpke.verify_decryption_batch` (shared via
    :func:`repro.crypto.vpke.fold_dh_checks`), but the challenge comes
    from the transcript (the verifier chose it) instead of the random
    oracle.  Equivalent to ``all(verify_transcript(...))`` up to
    ``2^-128`` soundness error.
    """
    return fold_dh_checks(
        public_key,
        [
            (claim, ciphertext, transcript.commitment_a,
             transcript.commitment_b, transcript.challenge,
             transcript.response)
            for claim, ciphertext, transcript in statements
        ],
    )


def run_interactive(
    secret_key: ElGamalSecretKey,
    ciphertext: Ciphertext,
    claim: Claim,
    challenge: int = None,
) -> SigmaTranscript:
    """Run one honest session and return the transcript."""
    prover = SigmaProver(secret_key, ciphertext)
    commitment_a, commitment_b = prover.move1()
    if challenge is None:
        challenge = fresh_challenge()
    response = prover.move3(challenge)
    return SigmaTranscript(commitment_a, commitment_b, challenge, response)


def extract_secret(
    first: SigmaTranscript, second: SigmaTranscript
) -> int:
    """Special soundness: two accepting transcripts sharing move 1 but
    with distinct challenges reveal the secret key.

    ``k = (Z1 - Z2) / (C1 - C2)`` — the knowledge extractor of the
    soundness proof.
    """
    if (
        first.commitment_a != second.commitment_a
        or first.commitment_b != second.commitment_b
    ):
        raise ProofError("transcripts must share the first move")
    if first.challenge == second.challenge:
        raise ProofError("challenges must differ for extraction")
    numerator = (first.response - second.response) % CURVE_ORDER
    denominator = (first.challenge - second.challenge) % CURVE_ORDER
    return numerator * pow(denominator, -1, CURVE_ORDER) % CURVE_ORDER


def simulate_transcript(
    public_key: ElGamalPublicKey,
    claim: Claim,
    ciphertext: Ciphertext,
    challenge: int = None,
) -> SigmaTranscript:
    """Honest-verifier ZK simulator: sample (C, Z) first, solve for
    (A, B).  The output distribution equals the real one on true
    statements — no random-oracle programming required interactively.
    """
    if challenge is None:
        challenge = fresh_challenge()
    response = random_scalar()
    claim_point = _claim_point(claim)
    commitment_a = (
        claim_point * challenge
        + ciphertext.c1 * response
        - ciphertext.c2 * challenge
    )
    commitment_b = _G.mul_fixed(response) - public_key.h.mul_fixed(challenge)
    return SigmaTranscript(commitment_a, commitment_b, challenge, response)
