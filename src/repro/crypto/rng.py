"""The crypto layer's entropy source — swappable for deterministic runs.

Every random draw the protocol makes (ElGamal encryption randomness,
commitment blinding keys, simulated sigma-protocol transcripts, batch
verification weights, fresh secret keys) flows through the module-level
:data:`entropy` object.  By default it draws from the operating system
via :mod:`secrets`, exactly as before.

The workload simulator (:mod:`repro.sim`) needs more: a seeded
:class:`~repro.sim.scenario.Scenario` run must be byte-for-byte
reproducible, *including gas* — and gas depends on the zero-byte count
of ciphertext calldata (EIP-2028 pricing), i.e. on the encryption
randomness itself.  :func:`deterministic_entropy` therefore swaps a
seeded PRNG in for the duration of a run::

    with deterministic_entropy(seed=7):
        report = run_scenario(scenario)   # same seed -> same bytes

This is a simulation device, not a cryptographic mode: never run with
deterministic entropy when the secrets matter.
"""

from __future__ import annotations

import random
import secrets
from contextlib import contextmanager
from typing import Iterator, Optional


class EntropySource:
    """OS entropy by default; a seeded PRNG in deterministic mode."""

    def __init__(self) -> None:
        self._rng: Optional[random.Random] = None

    @property
    def deterministic(self) -> bool:
        return self._rng is not None

    def randbelow(self, bound: int) -> int:
        """A uniform integer in [0, bound)."""
        if self._rng is not None:
            return self._rng.randrange(bound)
        return secrets.randbelow(bound)

    def getrandbits(self, bits: int) -> int:
        if self._rng is not None:
            return self._rng.getrandbits(bits)
        return secrets.randbits(bits)

    def token_bytes(self, length: int) -> bytes:
        if self._rng is not None:
            return self._rng.randbytes(length)
        return secrets.token_bytes(length)


#: The process-wide entropy source every crypto module draws from.
entropy = EntropySource()


@contextmanager
def deterministic_entropy(seed: int) -> Iterator[None]:
    """Route all crypto randomness through a PRNG seeded with ``seed``.

    Nests safely: the previous source (OS entropy or an outer seeded
    PRNG) is restored on exit, even on error.
    """
    previous = entropy._rng
    entropy._rng = random.Random(seed)
    try:
        yield
    finally:
        entropy._rng = previous
