"""The crypto layer's entropy source — swappable for deterministic runs.

Every random draw the protocol makes (ElGamal encryption randomness,
commitment blinding keys, simulated sigma-protocol transcripts, batch
verification weights, fresh secret keys) flows through the module-level
:data:`entropy` object.  By default it draws from the operating system
via :mod:`secrets`, exactly as before.

The workload simulator (:mod:`repro.sim`) needs more: a seeded
:class:`~repro.sim.scenario.Scenario` run must be byte-for-byte
reproducible, *including gas* — and gas depends on the zero-byte count
of ciphertext calldata (EIP-2028 pricing), i.e. on the encryption
randomness itself.  :func:`deterministic_entropy` therefore swaps a
seeded stream in for the duration of a run::

    with deterministic_entropy(seed=7):
        report = run_scenario(scenario)   # same seed -> same bytes

Persistence (checkpoint/resume) needs more still: a resumed run must
*continue* the entropy stream where the checkpoint left off, not restart
it — otherwise every post-resume ciphertext (and therefore every gas
number) diverges from the uninterrupted run.  The deterministic mode is
therefore a counter-mode DRBG (:class:`DeterministicStream`) whose whole
position is three numbers — the seed digest, a block counter, and a
byte offset — exposed through :meth:`EntropySource.save_state` /
:meth:`EntropySource.restore_state` and persisted by
:mod:`repro.store`.

This is a simulation device, not a cryptographic mode: never run with
deterministic entropy when the secrets matter.
"""

from __future__ import annotations

import hashlib
import secrets
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

_BLOCK_BYTES = 32
_DOMAIN = b"dragoon-entropy:"
_JOB_SEED_DOMAIN = b"dragoon-job-seed:"


class DeterministicStream:
    """A seeded counter-mode byte stream (SHA-256 over ``digest || ctr``).

    The stream's exact position is ``(seed_digest, counter, offset)``:
    ``counter`` blocks of 32 bytes have been generated and ``offset``
    bytes of the current block consumed.  :meth:`state` captures the
    position, :meth:`from_state` reopens the stream mid-byte — which is
    what lets a resumed simulation continue drawing the same bytes an
    uninterrupted run would have drawn.
    """

    def __init__(self, seed: int) -> None:
        self.seed_digest = hashlib.sha256(
            _DOMAIN + str(seed).encode("utf-8")
        ).digest()
        self._counter = 0  # blocks generated so far
        self._block = b""
        self._offset = 0  # bytes consumed of the current block

    # -- position ------------------------------------------------------------

    def state(self) -> Dict[str, object]:
        """The stream position as plain data (JSON/codec friendly)."""
        return {
            "seed_digest": self.seed_digest.hex(),
            "counter": self._counter,
            "offset": self._offset,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "DeterministicStream":
        """Reopen a stream exactly where :meth:`state` captured it."""
        stream = cls.__new__(cls)
        stream.seed_digest = bytes.fromhex(state["seed_digest"])
        stream._counter = int(state["counter"])
        stream._offset = int(state["offset"])
        if stream._counter > 0:
            stream._block = stream._generate(stream._counter - 1)
        else:
            stream._block = b""
        return stream

    # -- generation ----------------------------------------------------------

    def _generate(self, index: int) -> bytes:
        return hashlib.sha256(
            self.seed_digest + index.to_bytes(8, "big")
        ).digest()

    def take(self, length: int) -> bytes:
        """The next ``length`` bytes of the stream."""
        parts = []
        remaining = length
        while remaining > 0:
            if self._offset >= len(self._block):
                self._block = self._generate(self._counter)
                self._counter += 1
                self._offset = 0
            chunk = self._block[self._offset : self._offset + remaining]
            self._offset += len(chunk)
            remaining -= len(chunk)
            parts.append(chunk)
        return b"".join(parts)

    # -- the draw API the crypto layer uses -----------------------------------

    def getrandbits(self, bits: int) -> int:
        if bits <= 0:
            return 0
        nbytes = (bits + 7) // 8
        value = int.from_bytes(self.take(nbytes), "big")
        return value >> (8 * nbytes - bits)

    def randbelow(self, bound: int) -> int:
        if bound <= 0:
            raise ValueError("bound must be positive")
        bits = bound.bit_length()
        while True:  # rejection sampling: uniform and unbiased
            value = self.getrandbits(bits)
            if value < bound:
                return value


class EntropySource:
    """OS entropy by default; a seeded deterministic stream otherwise."""

    def __init__(self) -> None:
        self._stream: Optional[DeterministicStream] = None

    @property
    def deterministic(self) -> bool:
        return self._stream is not None

    def randbelow(self, bound: int) -> int:
        """A uniform integer in [0, bound)."""
        if self._stream is not None:
            return self._stream.randbelow(bound)
        return secrets.randbelow(bound)

    def getrandbits(self, bits: int) -> int:
        if self._stream is not None:
            return self._stream.getrandbits(bits)
        return secrets.randbits(bits)

    def token_bytes(self, length: int) -> bytes:
        if self._stream is not None:
            return self._stream.take(length)
        return secrets.token_bytes(length)

    def derive_job_seed(self, label: bytes = b"") -> int:
        """A seed for a child-process DRBG, derived from this source.

        A pool job cannot share the parent's stream (two processes
        drawing from one position is a race), so each job gets its own
        :class:`DeterministicStream` seeded here.  The derivation draws a
        *fixed* 32 bytes from the parent — never the variable-length
        rejection sampling of :meth:`randbelow` — so the parent's stream
        position after dispatching N jobs is a pure function of N and the
        labels.  That is what keeps pooled runs byte-reproducible and
        lets ``resume_scenario`` round-trips continue the stream exactly:
        the checkpoint stores the parent position, and every job seed is
        re-derived identically after resume.  In OS-entropy mode the 32
        bytes come from :mod:`secrets`, so job seeds stay unpredictable.
        """
        material = self.token_bytes(32)
        digest = hashlib.sha256(
            _JOB_SEED_DOMAIN + label + b"|" + material
        ).digest()
        return int.from_bytes(digest, "big")

    # -- persistence hooks ----------------------------------------------------

    def save_state(self) -> Optional[Dict[str, object]]:
        """The deterministic stream position, or ``None`` in OS mode.

        Checkpoints store this next to the chain state so a resumed run
        continues the entropy stream instead of restarting it.
        """
        if self._stream is None:
            return None
        return self._stream.state()

    def restore_state(self, state: Optional[Dict[str, object]]) -> None:
        """Reposition the source: a saved stream state, or ``None`` for
        OS entropy."""
        self._stream = (
            None if state is None else DeterministicStream.from_state(state)
        )


#: The process-wide entropy source every crypto module draws from.
entropy = EntropySource()


def derive_job_seed(label: bytes = b"") -> int:
    """Derive a child-process DRBG seed from the process-wide source."""
    return entropy.derive_job_seed(label)


@contextmanager
def deterministic_entropy(
    seed: int, state: Optional[Dict[str, object]] = None
) -> Iterator[None]:
    """Route all crypto randomness through a stream seeded with ``seed``.

    Pass ``state`` (from :meth:`EntropySource.save_state`) to *continue*
    a previously checkpointed stream instead of restarting it — the
    resume path of :mod:`repro.sim.runner`.  Nests safely: the previous
    source (OS entropy or an outer seeded stream) is restored on exit,
    even on error.
    """
    previous = entropy._stream
    entropy._stream = (
        DeterministicStream(seed)
        if state is None
        else DeterministicStream.from_state(state)
    )
    try:
        yield
    finally:
        entropy._stream = previous
