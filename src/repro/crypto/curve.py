"""BN-128 G1: the elliptic-curve group underlying all of Dragoon's crypto.

The curve is ``y^2 = x^3 + 3`` over the prime field of
:data:`~repro.crypto.field.FIELD_MODULUS`, with prime group order
:data:`~repro.crypto.field.CURVE_ORDER` — the "alt_bn128" G1 exposed by
Ethereum's EIP-196/EIP-1108 precompiles, which is exactly why the paper
instantiates every public-key primitive over it.

Internally the hot path (scalar multiplication) uses Jacobian projective
coordinates on raw ints.  The public API is :class:`G1Point`, an immutable
affine point with operator overloading, plus module-level helpers mirroring
the precompile interface (``ec_add``, ``ec_mul``).
"""

from __future__ import annotations

import secrets
from typing import Optional, Sequence, Tuple

from repro.crypto.field import CURVE_ORDER, FIELD_MODULUS, inv_mod, sqrt_mod
from repro.crypto.keccak import keccak256
from repro.errors import InvalidPoint, InvalidScalar, NonResidueError
from repro.obs import registry as _obs
from repro.utils.serialization import decode_point, encode_point

# Hot-path counters + scrape-time cache gauges.  Instruments only count;
# they never feed the DRBG or any codec input, so seeded runs are
# byte-identical with or without a scrape.
_MSM_CALLS = _obs.REGISTRY.counter(
    "msm_calls_total", "Multi-scalar multiplications performed"
)
_MSM_TERMS = _obs.REGISTRY.counter(
    "msm_terms_total", "Scalar/point terms summed across all MSM calls"
)
_obs.REGISTRY.gauge(
    "fixed_base_cache_population",
    "Fixed-base window tables currently cached",
    sampler=lambda: len(_FIXED_BASE_CACHE),
)
_obs.REGISTRY.gauge(
    "fixed_base_cache_limit",
    "Configured fixed-base table cache capacity",
    sampler=lambda: _FIXED_BASE_CACHE_LIMIT,
)
_obs.REGISTRY.counter(
    "fixed_base_cache_hits_total",
    "mul_fixed lookups served from a cached table",
    sampler=lambda: _FIXED_BASE_CACHE_HITS,
)
_obs.REGISTRY.counter(
    "fixed_base_cache_misses_total",
    "mul_fixed lookups that had to build a table",
    sampler=lambda: _FIXED_BASE_CACHE_MISSES,
)

_P = FIELD_MODULUS
_B = 3

Affine = Optional[Tuple[int, int]]
_Jacobian = Tuple[int, int, int]

_INFINITY_J: _Jacobian = (1, 1, 0)


def is_on_curve(point: Affine) -> bool:
    """Whether an affine point satisfies y^2 = x^3 + 3 (infinity counts)."""
    if point is None:
        return True
    x, y = point
    if not (0 <= x < _P and 0 <= y < _P):
        return False
    return (y * y - (x * x * x + _B)) % _P == 0


# ---------------------------------------------------------------------------
# Jacobian arithmetic on raw integers (internal, performance-sensitive)
# ---------------------------------------------------------------------------


def _to_jacobian(point: Affine) -> _Jacobian:
    if point is None:
        return _INFINITY_J
    return (point[0], point[1], 1)


def _from_jacobian(point: _Jacobian) -> Affine:
    x, y, z = point
    if z == 0:
        return None
    z_inv = inv_mod(z, _P)
    z_inv_sq = z_inv * z_inv % _P
    return (x * z_inv_sq % _P, y * z_inv_sq * z_inv % _P)


def _jacobian_double(point: _Jacobian) -> _Jacobian:
    x, y, z = point
    if z == 0 or y == 0:
        return _INFINITY_J
    ysq = y * y % _P
    s = 4 * x * ysq % _P
    m = 3 * x * x % _P  # a = 0 for BN-128, so no a*z^4 term
    nx = (m * m - 2 * s) % _P
    ny = (m * (s - nx) - 8 * ysq * ysq) % _P
    nz = 2 * y * z % _P
    return (nx, ny, nz)


def _jacobian_add(p: _Jacobian, q: _Jacobian) -> _Jacobian:
    x1, y1, z1 = p
    x2, y2, z2 = q
    if z1 == 0:
        return q
    if z2 == 0:
        return p
    z1sq = z1 * z1 % _P
    z2sq = z2 * z2 % _P
    u1 = x1 * z2sq % _P
    u2 = x2 * z1sq % _P
    s1 = y1 * z2sq * z2 % _P
    s2 = y2 * z1sq * z1 % _P
    if u1 == u2:
        if s1 != s2:
            return _INFINITY_J
        return _jacobian_double(p)
    h = (u2 - u1) % _P
    r = (s2 - s1) % _P
    hsq = h * h % _P
    hcu = hsq * h % _P
    v = u1 * hsq % _P
    nx = (r * r - hcu - 2 * v) % _P
    ny = (r * (v - nx) - s1 * hcu) % _P
    nz = h * z1 * z2 % _P
    return (nx, ny, nz)


def _jacobian_mul(point: _Jacobian, scalar: int) -> _Jacobian:
    scalar %= CURVE_ORDER
    if scalar == 0 or point[2] == 0:
        return _INFINITY_J
    result = _INFINITY_J
    addend = point
    while scalar:
        if scalar & 1:
            result = _jacobian_add(result, addend)
        addend = _jacobian_double(addend)
        scalar >>= 1
    return result


# ---------------------------------------------------------------------------
# Affine helpers mirroring the Ethereum precompile interface
# ---------------------------------------------------------------------------


def ec_add(p: Affine, q: Affine) -> Affine:
    """Affine point addition (the EIP-196 ecAdd operation)."""
    return _from_jacobian(_jacobian_add(_to_jacobian(p), _to_jacobian(q)))


def ec_mul(p: Affine, scalar: int) -> Affine:
    """Affine scalar multiplication (the EIP-196 ecMul operation)."""
    return _from_jacobian(_jacobian_mul(_to_jacobian(p), scalar))


def ec_neg(p: Affine) -> Affine:
    """Affine point negation."""
    if p is None:
        return None
    x, y = p
    return (x, (-y) % _P)


# ---------------------------------------------------------------------------
# Public point class
# ---------------------------------------------------------------------------


class G1Point:
    """An immutable point of BN-128 G1 with group-operation overloads.

    ``G1Point.generator()`` is the fixed base point (1, 2).  Construction
    validates curve membership; use arithmetic operators for group ops::

        g = G1Point.generator()
        h = g * 42
        assert h - g == g * 41
    """

    __slots__ = ("_affine",)

    def __init__(self, affine: Affine) -> None:
        if not is_on_curve(affine):
            raise InvalidPoint("point is not on BN-128: %r" % (affine,))
        self._affine = affine

    # -- constructors -------------------------------------------------------

    @classmethod
    def generator(cls) -> "G1Point":
        return cls((1, 2))

    @classmethod
    def infinity(cls) -> "G1Point":
        return cls(None)

    @classmethod
    def from_bytes(cls, data: bytes) -> "G1Point":
        return cls(decode_point(data))

    @classmethod
    def from_x(cls, x: int, y_parity: int = 0) -> "G1Point":
        """Lift an x-coordinate onto the curve, choosing y by parity."""
        y = sqrt_mod(x * x * x + _B, _P)
        if y % 2 != y_parity % 2:
            y = _P - y
        return cls((x, y))

    @classmethod
    def hash_to_group(cls, data: bytes) -> "G1Point":
        """Deterministically map bytes to a curve point (try-and-increment).

        Only a candidate x whose ``x^3 + b`` is a non-residue (~half of
        them) sends the loop around again; any other exception out of the
        lifting path is a real bug and propagates instead of presenting
        as an infinite loop.
        """
        counter = 0
        while True:
            candidate = int.from_bytes(
                keccak256(data + counter.to_bytes(4, "big")), "big"
            ) % _P
            try:
                return cls.from_x(candidate, y_parity=0)
            except NonResidueError:
                counter += 1

    # -- accessors -----------------------------------------------------------

    @property
    def affine(self) -> Affine:
        return self._affine

    @property
    def is_infinity(self) -> bool:
        return self._affine is None

    @property
    def x(self) -> int:
        if self._affine is None:
            raise InvalidPoint("the point at infinity has no coordinates")
        return self._affine[0]

    @property
    def y(self) -> int:
        if self._affine is None:
            raise InvalidPoint("the point at infinity has no coordinates")
        return self._affine[1]

    def to_bytes(self) -> bytes:
        return encode_point(self._affine)

    # -- group operations -----------------------------------------------------

    def __add__(self, other: "G1Point") -> "G1Point":
        if not isinstance(other, G1Point):
            return NotImplemented
        return G1Point(ec_add(self._affine, other._affine))

    def __sub__(self, other: "G1Point") -> "G1Point":
        if not isinstance(other, G1Point):
            return NotImplemented
        return G1Point(ec_add(self._affine, ec_neg(other._affine)))

    def __mul__(self, scalar: int) -> "G1Point":
        if not isinstance(scalar, int):
            return NotImplemented
        return G1Point(ec_mul(self._affine, scalar))

    def mul_fixed(self, scalar: int) -> "G1Point":
        """Scalar multiplication via a cached fixed-base window table.

        Equivalent to ``self * scalar`` but amortizes precomputation
        across calls — use for bases that recur (the generator, public
        keys).
        """
        return G1Point(mul_fixed(self._affine, scalar))

    __rmul__ = __mul__

    def __neg__(self) -> "G1Point":
        return G1Point(ec_neg(self._affine))

    def double(self) -> "G1Point":
        return G1Point(_from_jacobian(_jacobian_double(_to_jacobian(self._affine))))

    # -- value semantics --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, G1Point):
            return NotImplemented
        return self._affine == other._affine

    def __hash__(self) -> int:
        return hash(self._affine)

    def __repr__(self) -> str:
        if self._affine is None:
            return "G1Point(infinity)"
        return "G1Point(x=%d..., y=%d...)" % (self.x % 10**6, self.y % 10**6)


class FixedBaseTable:
    """Precomputed 4-bit-window multiples of a fixed base point.

    Scalar multiplication against a fixed base (the generator, a public
    key) dominates the protocol's CPU profile.  With windows
    ``table[w][d] = (16^w · d) · P`` a multiplication is ~63 point
    additions instead of ~380 double-and-add steps.  Building a table
    costs ~1000 additions, so it pays off after a handful of uses;
    :func:`mul_fixed` caches tables per base point.
    """

    WINDOW_BITS = 4
    NUM_WINDOWS = (256 + WINDOW_BITS - 1) // WINDOW_BITS

    def __init__(self, base: Affine) -> None:
        self.base = base
        mask_step = _to_jacobian(base)
        self._rows: list = []
        for _ in range(self.NUM_WINDOWS):
            row = [_INFINITY_J]
            current = _INFINITY_J
            for _ in range((1 << self.WINDOW_BITS) - 1):
                current = _jacobian_add(current, mask_step)
                row.append(current)
            self._rows.append(row)
            for _ in range(self.WINDOW_BITS):
                mask_step = _jacobian_double(mask_step)

    def multiply(self, scalar: int) -> Affine:
        scalar %= CURVE_ORDER
        accumulator = _INFINITY_J
        window = 0
        while scalar:
            digit = scalar & 0xF
            if digit:
                accumulator = _jacobian_add(accumulator, self._rows[window][digit])
            scalar >>= 4
            window += 1
        return _from_jacobian(accumulator)


_FIXED_BASE_CACHE: dict = {}
_FIXED_BASE_CACHE_LIMIT = 16
_FIXED_BASE_CACHE_HITS = 0
_FIXED_BASE_CACHE_MISSES = 0


def configure_fixed_base_cache(limit: int) -> None:
    """Set how many per-base window tables :func:`mul_fixed` retains.

    A deployment verifying proofs under many distinct public keys can
    raise the limit so every key keeps its table; a memory-constrained
    one can lower it.  Shrinking below the current population evicts
    everything (the cache is an amortization aid, not state).
    """
    global _FIXED_BASE_CACHE_LIMIT
    if limit < 1:
        raise ValueError("fixed-base cache limit must be positive")
    _FIXED_BASE_CACHE_LIMIT = limit
    if len(_FIXED_BASE_CACHE) > limit:
        _FIXED_BASE_CACHE.clear()


def fixed_base_cache_info() -> Tuple[int, int]:
    """``(population, limit)`` of the fixed-base table cache."""
    return len(_FIXED_BASE_CACHE), _FIXED_BASE_CACHE_LIMIT


def fixed_base_cache_stats() -> dict:
    """Cache effectiveness counters for this process.

    ``hits``/``misses`` count :func:`mul_fixed` lookups since process
    start (or :func:`reset_fixed_base_cache_stats`).  Pool workers report
    these through ``node_status`` so an operator can see whether the
    initializer warm-up actually covers the hot bases.
    """
    return {
        "population": len(_FIXED_BASE_CACHE),
        "limit": _FIXED_BASE_CACHE_LIMIT,
        "hits": _FIXED_BASE_CACHE_HITS,
        "misses": _FIXED_BASE_CACHE_MISSES,
    }


def reset_fixed_base_cache_stats() -> None:
    """Zero the hit/miss counters (the cache itself is untouched)."""
    global _FIXED_BASE_CACHE_HITS, _FIXED_BASE_CACHE_MISSES
    _FIXED_BASE_CACHE_HITS = 0
    _FIXED_BASE_CACHE_MISSES = 0


def mul_fixed(base: Affine, scalar: int) -> Affine:
    """Scalar multiplication with per-base precomputation (cached)."""
    global _FIXED_BASE_CACHE_HITS, _FIXED_BASE_CACHE_MISSES
    if base is None:
        return None
    table = _FIXED_BASE_CACHE.get(base)
    if table is None:
        _FIXED_BASE_CACHE_MISSES += 1
        if len(_FIXED_BASE_CACHE) >= _FIXED_BASE_CACHE_LIMIT:
            _FIXED_BASE_CACHE.clear()
        table = FixedBaseTable(base)
        _FIXED_BASE_CACHE[base] = table
    else:
        _FIXED_BASE_CACHE_HITS += 1
    return table.multiply(scalar)


def precompute_base(base: "G1Point | Affine") -> None:
    """Warm the fixed-base table for ``base`` ahead of the hot path."""
    affine = base.affine if isinstance(base, G1Point) else base
    if affine is not None:
        mul_fixed(affine, 1)


# ---------------------------------------------------------------------------
# Multi-scalar multiplication (Pippenger bucket method)
# ---------------------------------------------------------------------------


def _msm_window_bits(count: int, max_bits: int) -> int:
    """The window width minimizing ``windows * (count + 2^c)`` additions."""
    best_c, best_cost = 1, None
    for c in range(1, 17):
        windows = (max_bits + c - 1) // c
        cost = windows * (count + (1 << c))
        if best_cost is None or cost < best_cost:
            best_c, best_cost = c, cost
    return best_c


def _msm_jacobian(points: Sequence[_Jacobian], scalars: Sequence[int]) -> _Jacobian:
    entries = [
        (point, scalar)
        for point, scalar in zip(points, scalars)
        if scalar and point[2]
    ]
    if not entries:
        return _INFINITY_J
    max_bits = max(scalar.bit_length() for _, scalar in entries)
    window_bits = _msm_window_bits(len(entries), max_bits)
    num_windows = (max_bits + window_bits - 1) // window_bits
    mask = (1 << window_bits) - 1

    result = _INFINITY_J
    for window in range(num_windows - 1, -1, -1):
        if result[2]:
            for _ in range(window_bits):
                result = _jacobian_double(result)
        shift = window * window_bits
        buckets: list = [None] * (mask + 1)
        for point, scalar in entries:
            digit = (scalar >> shift) & mask
            if digit:
                held = buckets[digit]
                buckets[digit] = (
                    point if held is None else _jacobian_add(held, point)
                )
        # Sum d * bucket[d] via the running-sum trick.
        running = _INFINITY_J
        accumulator = _INFINITY_J
        for digit in range(mask, 0, -1):
            held = buckets[digit]
            if held is not None:
                running = _jacobian_add(running, held)
            accumulator = _jacobian_add(accumulator, running)
        result = _jacobian_add(result, accumulator)
    return result


#: Optional parallel MSM backend (installed by
#: :class:`repro.parallel.VerifierPool`).  Receives ``(points, reduced)``
#: and returns a :class:`G1Point`, or ``None`` to fall through to the
#: serial Pippenger pass (e.g. below its term threshold).
_MSM_BACKEND = None


def set_msm_backend(backend) -> None:
    """Install (or with ``None`` remove) the parallel MSM backend.

    The backend must compute exactly ``sum_i scalars[i] * points[i]`` —
    :func:`msm` callers cannot observe which path ran.  Pool *worker*
    processes never install one: jobs call :func:`_msm_jacobian`
    directly, so a backend can never recurse into itself.
    """
    global _MSM_BACKEND
    _MSM_BACKEND = backend


def msm(points: Sequence["G1Point"], scalars: Sequence[int]) -> "G1Point":
    """Multi-scalar multiplication ``sum_i scalars[i] * points[i]``.

    The workhorse of batch verification: one Pippenger pass over ``n``
    terms costs far fewer point additions than ``n`` double-and-add
    multiplications, and the advantage grows with the batch.  Scalars are
    reduced modulo the curve order (pass ``order - x`` to subtract).
    """
    if len(points) != len(scalars):
        raise InvalidScalar("msm needs one scalar per point")
    _MSM_CALLS.inc()
    _MSM_TERMS.inc(len(points))
    reduced = [scalar % CURVE_ORDER for scalar in scalars]
    backend = _MSM_BACKEND
    if backend is not None:
        result = backend(points, reduced)
        if result is not None:
            return result
    jacobians = [_to_jacobian(point.affine) for point in points]
    return G1Point(_from_jacobian(_msm_jacobian(jacobians, reduced)))


def random_scalar() -> int:
    """A uniformly random non-zero scalar in [1, CURVE_ORDER).

    Drawn from :data:`repro.crypto.rng.entropy`, so a simulation running
    under :func:`repro.crypto.rng.deterministic_entropy` gets the same
    scalars every run.
    """
    from repro.crypto.rng import entropy

    while True:
        value = entropy.randbelow(CURVE_ORDER)
        if value != 0:
            return value


def validate_scalar(scalar: int) -> int:
    """Check a scalar is in [0, CURVE_ORDER) and return it."""
    if not isinstance(scalar, int) or not 0 <= scalar < CURVE_ORDER:
        raise InvalidScalar("scalar out of range: %r" % (scalar,))
    return scalar


GENERATOR = G1Point.generator()
