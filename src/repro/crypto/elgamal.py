"""Exponential ElGamal over BN-128 G1 — Dragoon's answer encryption.

The paper (§V-C) encrypts each multiple-choice answer ``m`` as

    Enc_h(m; r) = (g^r,  g^m · h^r)

so decryption recovers ``g^m`` and then brute-forces the *short* answer
range to find ``m``.  Short plaintexts are exactly what makes verifiable
decryption cheap: the Schnorr-style proof in :mod:`repro.crypto.vpke`
attests the relation on ``g^m`` directly.

Decoding uses a baby-step/giant-step table when the range is large enough
to warrant it, and a plain scan otherwise.  If the plaintext is outside
the declared range, :meth:`ElGamalSecretKey.decrypt` returns the raw group
element ``g^m`` — precisely the behaviour the paper's ``outrange``
dispute path needs.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.crypto.curve import CURVE_ORDER, G1Point, random_scalar
from repro.errors import DecryptionError, InvalidScalar

Plaintext = int
#: A decryption result: either an in-range integer or a bare group element.
DecryptResult = Union[int, G1Point]


@dataclass(frozen=True)
class Ciphertext:
    """An ElGamal ciphertext ``(c1, c2) = (g^r, g^m h^r)``."""

    c1: G1Point
    c2: G1Point

    def to_bytes(self) -> bytes:
        return self.c1.to_bytes() + self.c2.to_bytes()

    @classmethod
    def from_bytes(cls, data: bytes) -> "Ciphertext":
        if len(data) != 128:
            raise ValueError("ciphertext encoding must be 128 bytes")
        return cls(G1Point.from_bytes(data[:64]), G1Point.from_bytes(data[64:]))

    def __add__(self, other: "Ciphertext") -> "Ciphertext":
        """Homomorphic addition of plaintexts."""
        if not isinstance(other, Ciphertext):
            return NotImplemented
        return Ciphertext(self.c1 + other.c1, self.c2 + other.c2)

    def scale(self, factor: int) -> "Ciphertext":
        """Homomorphic multiplication of the plaintext by ``factor``."""
        return Ciphertext(self.c1 * factor, self.c2 * factor)


class ElGamalPublicKey:
    """The public half ``h = g^k``; encrypts and re-randomizes."""

    def __init__(self, h: G1Point) -> None:
        self.h = h
        self._g = G1Point.generator()

    def encrypt(self, message: int, randomness: Optional[int] = None) -> Ciphertext:
        """Encrypt a (small) integer message."""
        if not isinstance(message, int) or message < 0:
            raise InvalidScalar("ElGamal messages must be non-negative ints")
        r = randomness if randomness is not None else random_scalar()
        return Ciphertext(
            self._g.mul_fixed(r),
            self._g.mul_fixed(message) + self.h.mul_fixed(r),
        )

    def encrypt_vector(self, messages: Sequence[int]) -> List[Ciphertext]:
        """Encrypt a sequence of messages with independent randomness."""
        return [self.encrypt(m) for m in messages]

    def rerandomize(
        self, ciphertext: Ciphertext, randomness: Optional[int] = None
    ) -> Ciphertext:
        """Refresh a ciphertext's randomness without changing the plaintext."""
        r = randomness if randomness is not None else random_scalar()
        return Ciphertext(
            ciphertext.c1 + self._g.mul_fixed(r),
            ciphertext.c2 + self.h.mul_fixed(r),
        )

    def to_bytes(self) -> bytes:
        return self.h.to_bytes()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ElGamalPublicKey):
            return NotImplemented
        return self.h == other.h

    def __hash__(self) -> int:
        return hash(("elgamal-pk", self.h))


class ElGamalSecretKey:
    """The secret exponent ``k``; decrypts short-range plaintexts."""

    def __init__(self, k: int) -> None:
        if not 0 < k < CURVE_ORDER:
            raise InvalidScalar("secret key out of range")
        self.k = k
        self._g = G1Point.generator()
        self._bsgs_cache: Dict[int, Dict[G1Point, int]] = {}

    @property
    def public_key(self) -> ElGamalPublicKey:
        return ElGamalPublicKey(self._g * self.k)

    def shared_point(self, ciphertext: Ciphertext) -> G1Point:
        """The masked plaintext ``g^m = c2 / c1^k``."""
        return ciphertext.c2 - ciphertext.c1 * self.k

    def decrypt(
        self, ciphertext: Ciphertext, message_range: Iterable[int]
    ) -> DecryptResult:
        """Decrypt, searching ``message_range`` for the plaintext.

        Returns the integer plaintext when it lies in the range, or the
        bare group element ``g^m`` otherwise (the paper's out-of-range
        dispute evidence).
        """
        masked = self.shared_point(ciphertext)
        for candidate in message_range:
            if self._g.mul_fixed(candidate) == masked:
                return candidate
        return masked

    def decrypt_bsgs(self, ciphertext: Ciphertext, max_message: int) -> int:
        """Decrypt via baby-step/giant-step over ``[0, max_message]``.

        Useful for aggregate plaintexts (e.g. homomorphic sums) that can
        exceed the per-answer range.  Raises if the plaintext is larger.
        """
        masked = self.shared_point(ciphertext)
        if masked.is_infinity:
            return 0
        baby_count = max(1, int(max_message**0.5) + 1)
        table = self._bsgs_cache.get(baby_count)
        if table is None:
            table = {}
            step = G1Point.infinity()
            for j in range(baby_count):
                table[step] = j
                step = step + self._g
            self._bsgs_cache[baby_count] = table
        giant_stride = self._g * baby_count
        current = masked
        for i in range(baby_count + 1):
            j = table.get(current)
            if j is not None:
                message = i * baby_count + j
                if message <= max_message:
                    return message
            current = current - giant_stride
        raise DecryptionError(
            "plaintext not found in [0, %d]" % max_message
        )

    def decrypt_vector(
        self, ciphertexts: Sequence[Ciphertext], message_range: Iterable[int]
    ) -> List[DecryptResult]:
        """Decrypt a vector of ciphertexts against a common range."""
        range_list = list(message_range)
        return [self.decrypt(c, range_list) for c in ciphertexts]


def keygen(secret: Optional[int] = None) -> Tuple[ElGamalPublicKey, ElGamalSecretKey]:
    """Generate an ElGamal key pair (deterministic when ``secret`` given)."""
    k = secret if secret is not None else random_scalar()
    sk = ElGamalSecretKey(k)
    return sk.public_key, sk


def random_ciphertext() -> Ciphertext:
    """A ciphertext of a random message under a random key (for tests)."""
    from repro.crypto.rng import entropy

    pk, _ = keygen()
    return pk.encrypt(entropy.randbelow(2**16))
