"""BN-128 G2 (the twist curve over Fp2) and field-generic curve ops.

G2 is the order-``r`` subgroup of ``y^2 = x^3 + 3/(9 + i)`` over Fp2.
The SNARK baseline places verification-key elements here.  The point
arithmetic is written generically over any field with ``+ - * /`` so the
same functions serve points over Fp2 and (after the twist) over Fp12.

Points are affine tuples ``(x, y)`` of field elements, with ``None`` for
the point at infinity.
"""

from __future__ import annotations

from typing import Optional, Tuple, TypeVar

from repro.crypto.field import CURVE_ORDER
from repro.crypto.tower import FQ2, FQ12, fq2
from repro.errors import InvalidPoint

F = TypeVar("F")
Point = Optional[Tuple[F, F]]

# Twist coefficient: b2 = 3 / (9 + i).
B2 = fq2(3, 0) / fq2(9, 1)
B12 = FQ12.from_int(3)

# The standard G2 generator (as in EIP-197 / py_ecc / libff).
G2_GENERATOR: Point = (
    fq2(
        10857046999023057135944570762232829481370756359578518086990519993285655852781,
        11559732032986387107991004021392285783925812861821192530917403151452391805634,
    ),
    fq2(
        8495653923123431417604973247489272438418190587263600148770280649306958101930,
        4082367875863433681332203403145435568316851327593401208105741076214120093531,
    ),
)


# ---------------------------------------------------------------------------
# Field-generic affine curve arithmetic
# ---------------------------------------------------------------------------


def point_double(point: Point) -> Point:
    """Double an affine point (generic over the coefficient field)."""
    if point is None:
        return None
    x, y = point
    if not y:
        return None
    slope = (3 * x * x) / (2 * y)
    nx = slope * slope - 2 * x
    ny = slope * (x - nx) - y
    return (nx, ny)


def point_add(p: Point, q: Point) -> Point:
    """Add two affine points (generic over the coefficient field)."""
    if p is None:
        return q
    if q is None:
        return p
    x1, y1 = p
    x2, y2 = q
    if x1 == x2:
        if y1 == y2:
            return point_double(p)
        return None
    slope = (y2 - y1) / (x2 - x1)
    nx = slope * slope - x1 - x2
    ny = slope * (x1 - nx) - y1
    return (nx, ny)


def point_mul(point: Point, scalar: int) -> Point:
    """Scalar multiplication by double-and-add."""
    scalar %= CURVE_ORDER if scalar >= 0 else 1
    if scalar == 0 or point is None:
        return None
    result: Point = None
    addend = point
    while scalar:
        if scalar & 1:
            result = point_add(result, addend)
        addend = point_double(addend)
        scalar >>= 1
    return result


def point_neg(point: Point) -> Point:
    """Negate an affine point."""
    if point is None:
        return None
    x, y = point
    return (x, -y)


def is_on_g2(point: Point) -> bool:
    """Whether a point over Fp2 satisfies the twist equation."""
    if point is None:
        return True
    x, y = point
    if not isinstance(x, FQ2) or not isinstance(y, FQ2):
        return False
    return y * y - x * x * x == B2


def is_in_g2_subgroup(point: Point) -> bool:
    """Whether an Fp2 point lies in the order-``r`` subgroup."""
    return is_on_g2(point) and point_mul(point, CURVE_ORDER) is None


def validate_g2(point: Point) -> Point:
    """Raise unless ``point`` is a valid G2 element; returns it unchanged."""
    if not is_on_g2(point):
        raise InvalidPoint("point is not on the BN-128 twist curve")
    return point


def g2_mul(scalar: int) -> Point:
    """``scalar`` times the G2 generator."""
    return point_mul(G2_GENERATOR, scalar)
