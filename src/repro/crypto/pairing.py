"""The BN-128 optimal-ate pairing, implemented from scratch.

This is what the SNARK baseline's verifier actually computes, and what the
Ethereum pairing precompile charges ~34k gas per pairing for (EIP-1108).
Implemented in the classic py_ecc / libff style:

1. *Twist* G2 points (over Fp2) into Fp12, and *cast* G1 points into Fp12.
2. Run the Miller loop for the ate loop count of the BN parameter.
3. Apply the two Frobenius-twisted correction steps.
4. Final exponentiation by ``(p^12 - 1) / r``.

A pure-Python pairing is slow (order of seconds); the benchmark layer
accounts for this explicitly — what matters for the reproduction is the
*ratio* between pairing-based generic verification and Dragoon's concrete
verification, which this preserves.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.crypto.curve import G1Point
from repro.crypto.field import CURVE_ORDER, FIELD_MODULUS
from repro.crypto.g2 import Point, point_add, point_double
from repro.crypto.tower import FQ2, FQ12
from repro.errors import InvalidPoint
from repro.obs import registry as _obs

_PAIRING_CALLS = _obs.REGISTRY.counter(
    "pairing_calls_total", "multi_pairing evaluations (one final exp each)"
)
_PAIRING_PAIRS = _obs.REGISTRY.counter(
    "pairing_pairs_total", "(G1, G2) pairs folded into Miller products"
)

_P = FIELD_MODULUS

ATE_LOOP_COUNT = 29793968203157093288
LOG_ATE_LOOP_COUNT = 63

_FINAL_EXPONENT = (_P**12 - 1) // CURVE_ORDER

_W = FQ12([0, 1] + [0] * 10)  # the Fp12 generator w
_W2 = _W * _W
_W3 = _W2 * _W

Fq12Point = Optional[Tuple[FQ12, FQ12]]


def twist(point: Point) -> Fq12Point:
    """Map a G2 point over Fp2 into the curve over Fp12 (untwist map)."""
    if point is None:
        return None
    x, y = point
    # Unpack Fp2 coefficients: a + b*i with i^2 = -1, re-expressed in the
    # basis where w^6 = 9 + i, i.e. i = w^6 - 9.
    xc = (x.coeffs[0] - 9 * x.coeffs[1], x.coeffs[1])
    yc = (y.coeffs[0] - 9 * y.coeffs[1], y.coeffs[1])
    nx = FQ12([xc[0]] + [0] * 5 + [xc[1]] + [0] * 5)
    ny = FQ12([yc[0]] + [0] * 5 + [yc[1]] + [0] * 5)
    return (nx * _W2, ny * _W3)


def cast_g1_to_fq12(point: G1Point) -> Fq12Point:
    """Embed a G1 point into the Fp12 curve."""
    if point.is_infinity:
        return None
    return (FQ12.from_int(point.x), FQ12.from_int(point.y))


def _linefunc(p1: Fq12Point, p2: Fq12Point, target: Fq12Point) -> FQ12:
    """Evaluate the line through p1 and p2 at ``target``."""
    if p1 is None or p2 is None or target is None:
        raise InvalidPoint("line function is undefined at infinity")
    x1, y1 = p1
    x2, y2 = p2
    xt, yt = target
    if x1 != x2:
        slope = (y2 - y1) / (x2 - x1)
        return slope * (xt - x1) - (yt - y1)
    if y1 == y2:
        slope = (3 * x1 * x1) / (2 * y1)
        return slope * (xt - x1) - (yt - y1)
    return xt - x1


def miller_loop_raw(q: Fq12Point, p: Fq12Point) -> FQ12:
    """The ate Miller loop *without* the final exponentiation.

    Raw Miller values multiply: the product over many pairs can be
    carried to a single shared final exponentiation, which is how the
    precompile-style :func:`multi_pairing` check amortizes its cost.
    """
    if q is None or p is None:
        return FQ12.one()
    r = q
    f = FQ12.one()
    for i in range(LOG_ATE_LOOP_COUNT, -1, -1):
        f = f * f * _linefunc(r, r, p)
        r = point_double(r)
        if ATE_LOOP_COUNT & (2**i):
            f = f * _linefunc(r, q, p)
            r = point_add(r, q)
    # Frobenius-twisted correction steps.
    q1 = (q[0] ** _P, q[1] ** _P)
    nq2 = (q1[0] ** _P, -(q1[1] ** _P))
    f = f * _linefunc(r, q1, p)
    r = point_add(r, q1)
    f = f * _linefunc(r, nq2, p)
    return f


def miller_loop(q: Fq12Point, p: Fq12Point) -> FQ12:
    """The ate Miller loop followed by the final exponentiation."""
    return miller_loop_raw(q, p) ** _FINAL_EXPONENT


def pairing(q: Point, p: G1Point) -> FQ12:
    """The optimal-ate pairing e(P, Q) with P in G1 and Q in G2.

    Returns an element of the order-``r`` subgroup of Fp12*.  Bilinearity:
    ``pairing(Q, a*P) == pairing(Q, P) ** a``.
    """
    if q is not None:
        x, y = q
        if not isinstance(x, FQ2) or not isinstance(y, FQ2):
            raise InvalidPoint("G2 argument must be over Fp2")
    return miller_loop(twist(q), cast_g1_to_fq12(p))


#: Optional parallel Miller-product backend (installed by
#: :class:`repro.parallel.VerifierPool`).  Receives the validated pair
#: list and returns the *raw* Miller product (pre final exponentiation),
#: or ``None`` to fall through to the serial loop.
_MILLER_BACKEND = None


def set_miller_backend(backend) -> None:
    """Install (or with ``None`` remove) the parallel Miller backend.

    The backend computes ``prod_i miller_loop_raw(twist(Qi), Pi)``; the
    final exponentiation always stays in the caller, so a chunked
    evaluation costs the same single hard exponentiation the serial
    product does.  Pool worker processes never install one — jobs call
    :func:`miller_loop_raw` directly, so the backend cannot recurse.
    """
    global _MILLER_BACKEND
    _MILLER_BACKEND = backend


def multi_pairing(pairs: "list[tuple[G1Point, Point]]") -> FQ12:
    """The product ``prod_i e(Pi, Qi)`` as one Miller-loop product.

    Each pair contributes only its (raw) Miller loop; the expensive
    final exponentiation is applied *once* to the accumulated product.
    This is exactly how the Ethereum pairing precompile evaluates a
    check over many pairs, and it is the combined path batched Groth16
    verification rides on: ``k`` pairings cost ``k`` Miller loops plus a
    single final exponentiation instead of ``k``.
    """
    _PAIRING_CALLS.inc()
    _PAIRING_PAIRS.inc(len(pairs))
    backend = _MILLER_BACKEND
    if backend is not None:
        raw = backend(pairs)
        if raw is not None:
            return raw ** _FINAL_EXPONENT
    accumulator = FQ12.one()
    for g1_point, g2_point in pairs:
        if g2_point is not None:
            x, y = g2_point
            if not isinstance(x, FQ2) or not isinstance(y, FQ2):
                raise InvalidPoint("G2 argument must be over Fp2")
        accumulator = accumulator * miller_loop_raw(
            twist(g2_point), cast_g1_to_fq12(g1_point)
        )
    return accumulator ** _FINAL_EXPONENT


def pairing_check(pairs: "list[tuple[G1Point, Point]]") -> bool:
    """Whether the product of pairings over ``pairs`` equals one.

    This mirrors the Ethereum pairing precompile's interface: it receives
    a list of (G1, G2) pairs and accepts iff ``prod e(Pi, Qi) == 1``,
    evaluated via :func:`multi_pairing` (one shared final exponentiation).
    """
    return multi_pairing(pairs) == FQ12.one()
