"""PoQoEA — proof of quality of encrypted answers (paper §V-A, Fig. 3).

The paper's central reduction: instead of a generic zero-knowledge proof
that "the answer encrypted in ``c_j`` has quality ``χ``", the requester
proves an *upper bound* on the quality by verifiably decrypting exactly
the gold-standard positions where the worker is *wrong*:

* For each gold index ``i`` where the decrypted answer ``a_i`` differs
  from the ground truth ``s_i``, the proof contains ``(i, a_i, pi_i)``
  with ``pi_i`` a VPKE proof that ``a_i = Dec_k(c_i)``.
* The verifier rejects any entry where ``a_i == s_i`` (that would inflate
  the bound), rejects invalid VPKE proofs, counts the distinct valid
  mismatches, and accepts iff ``χ + #mismatches >= |G|``.

Soundness ("upper-bound" soundness): every proven mismatch is a genuine
mismatch (VPKE soundness), so the true quality is at most
``|G| - #mismatches <= χ``.  A corrupted requester can therefore never
understate a worker's quality below the claimed bound — she always pays at
least what the worker deserves.

Zero-knowledge ("special" ZK): only gold-position sub-answers are ever
revealed, and with |G| and |range| small constants those are simulatable
from public knowledge — :func:`simulate_quality_proof` does exactly that
by forging each VPKE proof through the programmable random oracle.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.elgamal import Ciphertext, ElGamalPublicKey, ElGamalSecretKey
from repro.crypto.random_oracle import RandomOracle
from repro.crypto.vpke import (
    Claim,
    DecryptionProof,
    prove_decryption,
    simulate_proof,
    verify_decryption,
    verify_decryption_batch,
)
from repro.errors import ProofError


@dataclass(frozen=True)
class MismatchEntry:
    """One revealed gold-position mismatch: ``(index, answer, VPKE proof)``."""

    index: int
    answer: Claim
    proof: DecryptionProof


@dataclass(frozen=True)
class QualityProof:
    """A PoQoEA proof: the set of proven gold-standard mismatches."""

    entries: Tuple[MismatchEntry, ...]

    def __len__(self) -> int:
        return len(self.entries)

    def to_bytes(self) -> bytes:
        parts = []
        for entry in self.entries:
            parts.append(entry.index.to_bytes(4, "big"))
            if isinstance(entry.answer, int):
                parts.append(b"\x00" + entry.answer.to_bytes(32, "big"))
            else:
                parts.append(b"\x01" + entry.answer.to_bytes())
            parts.append(entry.proof.to_bytes())
        return b"".join(parts)


def compute_quality(
    answers: Sequence[int], gold_indexes: Sequence[int], gold_answers: Sequence[int]
) -> int:
    """The paper's quality function: matches on the gold-standard positions."""
    if len(gold_indexes) != len(gold_answers):
        raise ValueError("gold indexes and answers must align")
    return sum(
        1
        for index, truth in zip(gold_indexes, gold_answers)
        if 0 <= index < len(answers) and answers[index] == truth
    )


def prove_quality(
    secret_key: ElGamalSecretKey,
    ciphertexts: Sequence[Ciphertext],
    gold_indexes: Sequence[int],
    gold_answers: Sequence[int],
    answer_range: Sequence[int],
    oracle: Optional[RandomOracle] = None,
) -> Tuple[int, QualityProof]:
    """Prove the quality of an encrypted answer vector.

    Returns ``(χ, proof)`` where ``χ`` is the true quality and ``proof``
    contains one verifiable decryption per gold-standard mismatch,
    exactly as Fig. 3 of the paper prescribes.
    """
    if len(gold_indexes) != len(gold_answers):
        raise ValueError("gold indexes and answers must align")
    entries: List[MismatchEntry] = []
    quality = 0
    for index, truth in zip(gold_indexes, gold_answers):
        if not 0 <= index < len(ciphertexts):
            raise ProofError("gold index %d outside the answer vector" % index)
        claim, proof = prove_decryption(
            secret_key, ciphertexts[index], answer_range, oracle=oracle
        )
        if claim == truth:
            quality += 1
        else:
            entries.append(MismatchEntry(index, claim, proof))
    return quality, QualityProof(tuple(entries))


def verify_quality(
    public_key: ElGamalPublicKey,
    ciphertexts: Sequence[Ciphertext],
    claimed_quality: int,
    proof: QualityProof,
    gold_indexes: Sequence[int],
    gold_answers: Sequence[int],
    oracle: Optional[RandomOracle] = None,
) -> bool:
    """Verify a PoQoEA proof (Fig. 3 verifier).

    Accepts iff every entry is a *distinct* gold position whose revealed
    answer differs from the ground truth and carries a valid VPKE proof,
    and ``claimed_quality + #entries >= |G|``.
    """
    truth_by_index: Dict[int, int] = dict(zip(gold_indexes, gold_answers))
    if len(truth_by_index) != len(gold_indexes):
        return False  # malformed gold set (duplicate indexes)

    seen: set = set()
    count = claimed_quality
    for entry in proof.entries:
        if entry.index in seen:
            return False  # replayed mismatch would inflate the bound
        seen.add(entry.index)
        truth = truth_by_index.get(entry.index)
        if truth is None:
            return False  # not a gold position
        if not 0 <= entry.index < len(ciphertexts):
            return False
        if entry.answer == truth:
            return False  # a "mismatch" that actually matches
        if not verify_decryption(
            public_key, entry.answer, ciphertexts[entry.index], entry.proof,
            oracle=oracle,
        ):
            return False
        count += 1
    return count >= len(gold_indexes)


#: One worker's quality statement: ``(ciphertexts, claimed_quality, proof)``.
QualityStatement = Tuple[Sequence[Ciphertext], int, QualityProof]


def _screen_quality_statement(
    statement: QualityStatement,
    truth_by_index: Dict[int, int],
    num_golds: int,
) -> Optional[List[Tuple[Claim, Ciphertext, DecryptionProof]]]:
    """The structural (non-VPKE) half of the Fig. 3 verifier.

    Returns the VPKE statements still to be checked, or ``None`` when the
    proof already fails structurally (replayed index, non-gold position,
    a "mismatch" that matches, or an insufficient mismatch count).
    """
    ciphertexts, claimed_quality, proof = statement
    seen: set = set()
    vpke_statements: List[Tuple[Claim, Ciphertext, DecryptionProof]] = []
    for entry in proof.entries:
        if entry.index in seen:
            return None
        seen.add(entry.index)
        truth = truth_by_index.get(entry.index)
        if truth is None:
            return None
        if not 0 <= entry.index < len(ciphertexts):
            return None
        if entry.answer == truth:
            return None
        vpke_statements.append(
            (entry.answer, ciphertexts[entry.index], entry.proof)
        )
    if claimed_quality + len(vpke_statements) < num_golds:
        return None
    return vpke_statements


def verify_quality_proofs_batch(
    public_key: ElGamalPublicKey,
    statements: Sequence[QualityStatement],
    gold_indexes: Sequence[int],
    gold_answers: Sequence[int],
    oracle: Optional[RandomOracle] = None,
) -> List[bool]:
    """Verify many workers' PoQoEA proofs in one batched pass.

    ``statements`` holds one ``(ciphertexts, claimed_quality, proof)``
    triple per worker, all under the same gold standard and requester
    key (the situation of one task's evaluate phase).  Element-wise
    equivalent to calling :func:`verify_quality` per worker, but all
    VPKE decryption proofs across *all* workers are checked in a single
    random-linear-combination batch
    (:func:`repro.crypto.vpke.verify_decryption_batch`).

    The batch path is optimistic: if the combined check fails, the
    offending workers are localized with one per-worker batch check
    each, so an adversary hiding a single tampered proof in a large
    batch costs extra work but cannot flip any verdict.
    """
    truth_by_index: Dict[int, int] = dict(zip(gold_indexes, gold_answers))
    malformed_golds = len(truth_by_index) != len(gold_indexes)

    results: List[bool] = [False] * len(statements)
    pending: List[Tuple[int, List[Tuple[Claim, Ciphertext, DecryptionProof]]]] = []
    if not malformed_golds:
        for position, statement in enumerate(statements):
            vpke_statements = _screen_quality_statement(
                statement, truth_by_index, len(gold_indexes)
            )
            if vpke_statements is not None:
                pending.append((position, vpke_statements))

    combined = [stmt for _, stmts in pending for stmt in stmts]
    if verify_decryption_batch(public_key, combined, oracle=oracle):
        for position, _ in pending:
            results[position] = True
    else:
        for position, stmts in pending:
            results[position] = verify_decryption_batch(
                public_key, stmts, oracle=oracle
            )
    return results


def simulate_quality_proof(
    public_key: ElGamalPublicKey,
    ciphertexts: Sequence[Ciphertext],
    true_answers: Sequence[int],
    gold_indexes: Sequence[int],
    gold_answers: Sequence[int],
    oracle: RandomOracle,
) -> Tuple[int, QualityProof]:
    """The "special zero-knowledge" simulator for PoQoEA.

    Given only public knowledge plus the gold-position sub-answers (which
    the paper argues are already leaked — they are simulatable because
    |G| and |range| are small constants), forge a proof indistinguishable
    from an honest one by programming the random oracle.  Requires a
    programmable (non-default) oracle.
    """
    entries: List[MismatchEntry] = []
    quality = 0
    for index, truth in zip(gold_indexes, gold_answers):
        answer = true_answers[index]
        if answer == truth:
            quality += 1
            continue
        forged = simulate_proof(public_key, answer, ciphertexts[index], oracle=oracle)
        entries.append(MismatchEntry(index, answer, forged))
    return quality, QualityProof(tuple(entries))


def sample_gold_standard(
    num_questions: int,
    num_golds: int,
    answer_range: Sequence[int],
    rng: Optional["secrets.SystemRandom"] = None,
) -> Tuple[List[int], List[int]]:
    """Sample a random gold-standard set ``(G, Gs)`` for a task."""
    if num_golds > num_questions:
        raise ValueError("more golds than questions")
    randomizer = rng if rng is not None else secrets.SystemRandom()
    indexes = sorted(randomizer.sample(range(num_questions), num_golds))
    answers = [randomizer.choice(list(answer_range)) for _ in indexes]
    return indexes, answers
