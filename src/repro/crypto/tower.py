"""Extension-field tower for BN-128: Fp2 and Fp12.

The SNARK baseline (Groth16) needs the full BN-128 pairing, which lives in
Fp12.  We implement polynomial extension fields in the style of py_ecc:
an element of Fp[x]/(m(x)) is a coefficient vector over Fp, with

* Fp2  = Fp[i]/(i^2 + 1)
* Fp12 = Fp[w]/(w^12 - 18 w^6 + 82)

Coefficients are stored as plain ints mod the base-field modulus; all
arithmetic reduces eagerly.  The classes are immutable value objects.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Type, Union

from repro.crypto.field import FIELD_MODULUS

_P = FIELD_MODULUS

IntLike = Union[int, "FQP"]


def _poly_degree(coeffs: Sequence[int]) -> int:
    """Index of the highest non-zero coefficient (-1 for the zero poly)."""
    for index in range(len(coeffs) - 1, -1, -1):
        if coeffs[index] % _P:
            return index
    return -1


def _poly_rounded_div(numerator: Sequence[int], denominator: Sequence[int]) -> List[int]:
    """Leading-term polynomial division over Fp (helper for inversion)."""
    deg_num = _poly_degree(numerator)
    deg_den = _poly_degree(denominator)
    temp = [c % _P for c in numerator]
    inv_lead = pow(denominator[deg_den], -1, _P)
    output = [0] * (deg_num - deg_den + 1)
    for shift in range(deg_num - deg_den, -1, -1):
        factor = temp[deg_den + shift] * inv_lead % _P
        output[shift] = (output[shift] + factor) % _P
        for i in range(deg_den + 1):
            temp[shift + i] = (temp[shift + i] - factor * denominator[i]) % _P
    return output


class FQP:
    """An element of Fp[x]/(m(x)); subclasses fix degree and modulus."""

    degree: int = 0
    modulus_coeffs: Tuple[int, ...] = ()
    __slots__ = ("coeffs",)

    def __init__(self, coeffs: Sequence[int]) -> None:
        if len(coeffs) != self.degree:
            raise ValueError(
                "expected %d coefficients, got %d" % (self.degree, len(coeffs))
            )
        self.coeffs = tuple(c % _P for c in coeffs)

    # -- constructors -------------------------------------------------------

    @classmethod
    def zero(cls) -> "FQP":
        return cls([0] * cls.degree)

    @classmethod
    def one(cls) -> "FQP":
        return cls([1] + [0] * (cls.degree - 1))

    @classmethod
    def from_int(cls, value: int) -> "FQP":
        return cls([value] + [0] * (cls.degree - 1))

    # -- arithmetic --------------------------------------------------------

    def _coerce(self, other: IntLike) -> "FQP":
        if isinstance(other, int):
            return type(self).from_int(other)
        if isinstance(other, FQP) and type(other) is type(self):
            return other
        raise TypeError("cannot mix %r with %r" % (type(self), type(other)))

    def __add__(self, other: IntLike) -> "FQP":
        rhs = self._coerce(other)
        return type(self)([a + b for a, b in zip(self.coeffs, rhs.coeffs)])

    __radd__ = __add__

    def __sub__(self, other: IntLike) -> "FQP":
        rhs = self._coerce(other)
        return type(self)([a - b for a, b in zip(self.coeffs, rhs.coeffs)])

    def __rsub__(self, other: IntLike) -> "FQP":
        rhs = self._coerce(other)
        return type(self)([b - a for a, b in zip(self.coeffs, rhs.coeffs)])

    def __neg__(self) -> "FQP":
        return type(self)([-a for a in self.coeffs])

    def __mul__(self, other: IntLike) -> "FQP":
        if isinstance(other, int):
            return type(self)([c * other for c in self.coeffs])
        rhs = self._coerce(other)
        deg = self.degree
        product = [0] * (2 * deg - 1)
        for i, a in enumerate(self.coeffs):
            if a == 0:
                continue
            for j, b in enumerate(rhs.coeffs):
                product[i + j] += a * b
        # Reduce modulo m(x): replace x^(deg + e) by -sum m_i x^(i + e).
        for exp in range(2 * deg - 2, deg - 1, -1):
            top = product[exp] % _P
            if top == 0:
                continue
            product[exp] = 0
            shift = exp - deg
            for i, m in enumerate(self.modulus_coeffs):
                if m:
                    product[shift + i] -= top * m
        return type(self)([c % _P for c in product[:deg]])

    __rmul__ = __mul__

    def __truediv__(self, other: IntLike) -> "FQP":
        if isinstance(other, int):
            return self * pow(other, -1, _P)
        rhs = self._coerce(other)
        return self * rhs.inverse()

    def __pow__(self, exponent: int) -> "FQP":
        if exponent < 0:
            return self.inverse() ** (-exponent)
        result = type(self).one()
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base * base
            exponent >>= 1
        return result

    def inverse(self) -> "FQP":
        """Extended-Euclidean inversion in Fp[x]/(m(x))."""
        deg = self.degree
        lm, hm = [1] + [0] * deg, [0] * (deg + 1)
        low = list(self.coeffs) + [0]
        high = list(self.modulus_coeffs) + [1]
        while _poly_degree(low) > 0:
            quotient = _poly_rounded_div(high, low)
            quotient += [0] * (deg + 1 - len(quotient))
            nm, new = list(hm), list(high)
            for i in range(deg + 1):
                for j in range(deg + 1 - i):
                    nm[i + j] -= lm[i] * quotient[j]
                    new[i + j] -= low[i] * quotient[j]
            nm = [c % _P for c in nm]
            new = [c % _P for c in new]
            lm, low, hm, high = nm, new, lm, low
        if _poly_degree(low) < 0:
            raise ZeroDivisionError("inverse of zero in extension field")
        inv_const = pow(low[0], -1, _P)
        return type(self)([c * inv_const for c in lm[:deg]])

    # -- value semantics ------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            return self == type(self).from_int(other)
        if isinstance(other, FQP) and type(other) is type(self):
            return self.coeffs == other.coeffs
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.coeffs))

    def __bool__(self) -> bool:
        return any(self.coeffs)

    def __repr__(self) -> str:
        return "%s(%s)" % (type(self).__name__, list(self.coeffs))


class FQ2(FQP):
    """Fp2 = Fp[i]/(i^2 + 1)."""

    degree = 2
    modulus_coeffs = (1, 0)
    __slots__ = ()


class FQ12(FQP):
    """Fp12 = Fp[w]/(w^12 - 18 w^6 + 82)."""

    degree = 12
    modulus_coeffs = (82, 0, 0, 0, 0, 0, -18, 0, 0, 0, 0, 0)
    __slots__ = ()


def fq2(a: int, b: int) -> FQ2:
    """Convenience constructor ``a + b*i``."""
    return FQ2([a, b])
