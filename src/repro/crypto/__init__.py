"""Cryptographic substrate: everything Dragoon's protocol layer builds on.

All primitives are implemented from scratch in pure Python:

* :mod:`repro.crypto.keccak` — keccak-256 (Ethereum's hash).
* :mod:`repro.crypto.random_oracle` — programmable global random oracle.
* :mod:`repro.crypto.field` / :mod:`repro.crypto.curve` — BN-128 G1.
* :mod:`repro.crypto.tower` / :mod:`repro.crypto.g2` /
  :mod:`repro.crypto.pairing` — the full pairing (for the SNARK baseline).
* :mod:`repro.crypto.elgamal` — exponential ElGamal for short plaintexts.
* :mod:`repro.crypto.schnorr` — Schnorr & Chaum–Pedersen sigma protocols.
* :mod:`repro.crypto.vpke` — verifiable decryption (paper §V-C).
* :mod:`repro.crypto.poqoea` — proof of quality of encrypted answers
  (paper §V-A, the core contribution).
* :mod:`repro.crypto.commitment` — ROM hash commitments.
"""

from repro.crypto.keccak import keccak256, keccak256_hex, keccak_to_int
from repro.crypto.random_oracle import RandomOracle, default_oracle
from repro.crypto.field import FIELD_MODULUS, CURVE_ORDER, Fq, Fr, make_prime_field
from repro.crypto.curve import (
    G1Point,
    GENERATOR,
    configure_fixed_base_cache,
    fixed_base_cache_info,
    msm,
    precompute_base,
    random_scalar,
)
from repro.crypto.elgamal import (
    Ciphertext,
    ElGamalPublicKey,
    ElGamalSecretKey,
    keygen,
)
from repro.crypto.commitment import Commitment, commit, open_commitment, generate_key
from repro.crypto.schnorr import (
    SchnorrProof,
    schnorr_prove,
    schnorr_verify,
    schnorr_verify_batch,
    ChaumPedersenProof,
    chaum_pedersen_prove,
    chaum_pedersen_verify,
    chaum_pedersen_verify_batch,
)
from repro.crypto.vpke import (
    DecryptionProof,
    prove_decryption,
    verify_decryption,
    verify_decryption_batch,
    simulate_proof,
)
from repro.crypto.poqoea import (
    QualityProof,
    MismatchEntry,
    QualityStatement,
    compute_quality,
    prove_quality,
    verify_quality,
    verify_quality_proofs_batch,
    simulate_quality_proof,
    sample_gold_standard,
)

__all__ = [
    "keccak256",
    "keccak256_hex",
    "keccak_to_int",
    "RandomOracle",
    "default_oracle",
    "FIELD_MODULUS",
    "CURVE_ORDER",
    "Fq",
    "Fr",
    "make_prime_field",
    "G1Point",
    "GENERATOR",
    "configure_fixed_base_cache",
    "fixed_base_cache_info",
    "msm",
    "precompute_base",
    "random_scalar",
    "Ciphertext",
    "ElGamalPublicKey",
    "ElGamalSecretKey",
    "keygen",
    "Commitment",
    "commit",
    "open_commitment",
    "generate_key",
    "SchnorrProof",
    "schnorr_prove",
    "schnorr_verify",
    "schnorr_verify_batch",
    "ChaumPedersenProof",
    "chaum_pedersen_prove",
    "chaum_pedersen_verify",
    "chaum_pedersen_verify_batch",
    "DecryptionProof",
    "prove_decryption",
    "verify_decryption",
    "verify_decryption_batch",
    "simulate_proof",
    "QualityProof",
    "MismatchEntry",
    "QualityStatement",
    "compute_quality",
    "prove_quality",
    "verify_quality",
    "verify_quality_proofs_batch",
    "simulate_quality_proof",
    "sample_gold_standard",
]
