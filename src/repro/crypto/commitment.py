"""Hash commitments in the random-oracle model (paper §V-C).

``Commit(msg, key) = H(msg || key)`` with a 32-byte blinding key, opened by
revealing ``(msg, key)``.  Computationally hiding and binding in the ROM;
the blinding key prevents low-entropy messages (answer ciphertext vectors
are deterministic once formed) from being brute-forced before the reveal
phase — which is what blocks the copy-and-paste free-rider.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto.random_oracle import RandomOracle, default_oracle

KEY_BYTES = 32


@dataclass(frozen=True)
class Commitment:
    """An opaque 32-byte commitment digest."""

    digest: bytes

    def __post_init__(self) -> None:
        if len(self.digest) != 32:
            raise ValueError("commitment digests are 32 bytes")

    def hex(self) -> str:
        return self.digest.hex()


def generate_key() -> bytes:
    """A fresh 32-byte blinding key."""
    from repro.crypto.rng import entropy

    return entropy.token_bytes(KEY_BYTES)


def commit(
    message: bytes,
    key: Optional[bytes] = None,
    oracle: Optional[RandomOracle] = None,
) -> Tuple[Commitment, bytes]:
    """Commit to ``message``; returns (commitment, blinding key)."""
    if key is None:
        key = generate_key()
    if len(key) != KEY_BYTES:
        raise ValueError("blinding keys are %d bytes" % KEY_BYTES)
    ro = oracle if oracle is not None else default_oracle()
    return Commitment(ro.query(message + key)), key


def open_commitment(
    commitment: Commitment,
    message: bytes,
    key: bytes,
    oracle: Optional[RandomOracle] = None,
) -> bool:
    """Check an opening: ``H(message || key) == commitment``."""
    if len(key) != KEY_BYTES:
        return False
    ro = oracle if oracle is not None else default_oracle()
    return ro.query(message + key) == commitment.digest
