"""The trace analyzer: PR-8 JSONL span files → latency structure.

A trace file is one JSON object per line (see
:mod:`repro.obs.tracing`); a killed run may leave a torn final line.
The reader here follows the WAL recipe (:mod:`repro.store.blockstore`):
stream records until the first undecodable line, treat everything
before it as intact, and report the tear instead of failing — a trace
cut mid-span is the *expected* artifact of ``kill -9``, not an error.
An intact record carrying an unknown schema version is different: that
is data we would silently misread, so it raises :class:`ReportError`
loudly.

:func:`analyze` folds the spans into a :class:`TraceAnalysis`:

* per-name and per-session-phase latency distributions (count, total,
  min/max, nearest-rank percentiles);
* the span forest (parent/child linkage) and the **critical path** —
  from the longest root span, repeatedly descend into the longest
  child — the chain of spans that bounded the run's wall clock;
* **pool-utilization timelines**: a sweep line over ``pool.job`` spans
  giving peak and average in-flight jobs while the pool was busy;
* **cross-process attribution**: spans shipped home from pool workers
  carry ``"clock": "worker"`` and a ``pid`` attr — their timestamps
  live in the *worker's* clock domain, so they are aggregated per pid
  (and never mixed into parent-clock timelines).  A worker span whose
  parent id is missing from the file (the tear ate the submit-side
  span) is kept and counted as an orphan rather than dropped.

Determinism: analyzing the same file twice is trivially identical, and
the :meth:`TraceAnalysis.structure` projection — span counts, tree
shape, phase counts, orphan/worker tallies — is byte-identical across
two identically seeded runs even though every timestamp differs.  Only
that projection feeds the byte-diffed report artifacts; timings are for
the human-facing ``report trace`` rendering.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import ReportError
from repro.obs.tracing import SPAN_SCHEMA_VERSION

__all__ = [
    "TraceFile",
    "SpanStats",
    "TraceAnalysis",
    "read_trace",
    "iter_spans",
    "analyze",
    "analyze_file",
    "percentile",
]

#: Schema versions this analyzer knows how to read.
KNOWN_SCHEMA_VERSIONS = (SPAN_SCHEMA_VERSION,)

#: The fields every intact span record must carry.
_REQUIRED = ("v", "span", "name", "start", "end")

#: Percentile points every latency distribution reports.
PERCENTILES = (50, 90, 99)


def percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile over an ascending list (deterministic)."""
    if not sorted_values:
        raise ReportError("percentile of an empty distribution")
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


def _parse_line(line: str) -> Optional[Dict[str, Any]]:
    """One record, ``None`` for a torn/undecodable line.

    An intact record with an unknown ``v`` raises: that is not a torn
    write but a file from a future tracer, and binning its spans with
    today's semantics would corrupt the analysis silently.
    """
    try:
        record = json.loads(line)
    except ValueError:
        return None
    if not isinstance(record, dict) or any(k not in record for k in _REQUIRED):
        return None
    version = record["v"]
    if version not in KNOWN_SCHEMA_VERSIONS:
        raise ReportError(
            "trace record has unknown schema version %r (can read: %s)"
            % (version, ", ".join(map(str, KNOWN_SCHEMA_VERSIONS)))
        )
    return record


@dataclass
class TraceFile:
    """The intact prefix of one JSONL trace file."""

    path: str
    spans: List[Dict[str, Any]]
    truncated: bool = False  # a torn tail (or mid-file tear) was cut

    def __len__(self) -> int:
        return len(self.spans)


def iter_spans(lines: Iterator[str]) -> Iterator[Dict[str, Any]]:
    """Stream intact span records; stop cleanly at the first tear."""
    for line in lines:
        if not line.strip():
            continue
        record = _parse_line(line)
        if record is None:
            return
        yield record


def read_trace(path: str) -> TraceFile:
    """Read ``path`` torn-tail-tolerantly (see the module docstring)."""
    spans: List[Dict[str, Any]] = []
    truncated = False
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if not line.strip():
                continue
            record = _parse_line(line)
            if record is None:
                truncated = True
                break
            spans.append(record)
    return TraceFile(path=path, spans=spans, truncated=truncated)


@dataclass
class SpanStats:
    """One latency distribution (durations in span-clock seconds)."""

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = 0.0
    _durations: List[float] = field(default_factory=list)

    def add(self, duration: float) -> None:
        self.count += 1
        self.total += duration
        self.minimum = min(self.minimum, duration)
        self.maximum = max(self.maximum, duration)
        self._durations.append(duration)

    def percentiles(self) -> Dict[str, float]:
        ordered = sorted(self._durations)
        return {
            "p%d" % q: percentile(ordered, q) for q in PERCENTILES
        }

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum,
        }
        if self.count:
            out["mean"] = self.total / self.count
            out.update(self.percentiles())
        return out


def _duration(span: Dict[str, Any]) -> float:
    return float(span["end"]) - float(span["start"])


class TraceAnalysis:
    """The folded view of one trace file (build with :func:`analyze`)."""

    def __init__(self, trace: TraceFile) -> None:
        self.path = trace.path
        self.truncated = trace.truncated
        self.spans = trace.spans
        self.by_id: Dict[int, Dict[str, Any]] = {}
        self.children: Dict[int, List[int]] = {}
        self.roots: List[int] = []
        #: Spans naming a parent id absent from the (possibly torn) file.
        self.orphans: List[int] = []
        self.by_name: Dict[str, SpanStats] = {}
        self.by_phase: Dict[str, SpanStats] = {}
        #: Worker-clock spans per pid: their timestamps are not
        #: comparable to the parent's, so they only ever aggregate here.
        self.worker: Dict[int, SpanStats] = {}
        self.worker_spans = 0
        self._fold()

    # -- folding ----------------------------------------------------------

    def _fold(self) -> None:
        for span in self.spans:
            self.by_id[span["span"]] = span
        for span in self.spans:
            parent = span.get("parent")
            if parent is None:
                self.roots.append(span["span"])
            elif parent in self.by_id:
                self.children.setdefault(parent, []).append(span["span"])
            else:
                # The tear (or a pre-attach parent) ate the parent span:
                # keep the child, attributed at top level.
                self.orphans.append(span["span"])
            duration = _duration(span)
            if span.get("clock") == "worker":
                self.worker_spans += 1
                pid = int((span.get("attrs") or {}).get("pid", -1))
                self.worker.setdefault(pid, SpanStats()).add(duration)
                continue
            self.by_name.setdefault(span["name"], SpanStats()).add(duration)
            if span["name"] == "session.phase":
                phase = str((span.get("attrs") or {}).get("phase", "?"))
                self.by_phase.setdefault(phase, SpanStats()).add(duration)

    # -- structure --------------------------------------------------------

    def depth_of(self, span_id: int) -> int:
        depth, seen = 1, {span_id}
        parent = self.by_id[span_id].get("parent")
        while parent in self.by_id and parent not in seen:
            seen.add(parent)
            depth += 1
            parent = self.by_id[parent].get("parent")
        return depth

    def max_depth(self) -> int:
        return max((self.depth_of(s["span"]) for s in self.spans), default=0)

    def critical_path(self) -> List[Dict[str, Any]]:
        """The longest root span, then its longest child, recursively.

        Worker-clock children are excluded (their timestamps live in
        another process's clock domain), so every hop on the path is a
        real parent-clock containment.
        """
        candidates = [
            s for s in self.roots
            if self.by_id[s].get("clock") != "worker"
        ]
        if not candidates:
            return []
        current = max(
            candidates, key=lambda s: (_duration(self.by_id[s]), -s)
        )
        path = []
        while True:
            span = self.by_id[current]
            path.append(
                {
                    "span": current,
                    "name": span["name"],
                    "duration": _duration(span),
                }
            )
            nested = [
                child for child in self.children.get(current, ())
                if self.by_id[child].get("clock") != "worker"
            ]
            if not nested:
                return path
            current = max(
                nested, key=lambda s: (_duration(self.by_id[s]), -s)
            )

    def utilization(self, name: str = "pool.job") -> Dict[str, Any]:
        """Sweep-line concurrency over the parent-clock spans ``name``.

        Returns peak concurrent spans, total busy wall time (≥1 span in
        flight), and the time-weighted average concurrency while busy —
        the pool-utilization timeline folded to its summary.
        """
        events: List[Tuple[float, int]] = []
        for span in self.spans:
            if span["name"] != name or span.get("clock") == "worker":
                continue
            events.append((float(span["start"]), 1))
            events.append((float(span["end"]), -1))
        if not events:
            return {"spans": 0, "peak": 0, "busy_seconds": 0.0, "mean": 0.0}
        events.sort()
        active = peak = 0
        busy = weighted = 0.0
        previous = events[0][0]
        for at, delta in events:
            if active > 0:
                busy += at - previous
                weighted += active * (at - previous)
            previous = at
            active += delta
            peak = max(peak, active)
        return {
            "spans": sum(1 for _, delta in events if delta > 0),
            "peak": peak,
            "busy_seconds": busy,
            "mean": (weighted / busy) if busy else 0.0,
        }

    # -- projections ------------------------------------------------------

    def structure(self) -> Dict[str, Any]:
        """The deterministic projection: identical across two runs of the
        same seeded scenario (timestamps differ; this does not)."""
        return {
            "spans_by_name": {
                name: stats.count
                for name, stats in sorted(self.by_name.items())
            },
            "phases": {
                phase: stats.count
                for phase, stats in sorted(self.by_phase.items())
            },
            "roots": len(self.roots),
            "orphans": len(self.orphans),
            "worker_spans": self.worker_spans,
            "max_depth": self.max_depth(),
            "truncated": self.truncated,
        }

    def to_dict(self) -> Dict[str, Any]:
        """The full analysis (timings included) for one fixed file."""
        return {
            "path": self.path,
            "structure": self.structure(),
            "latency_by_name": {
                name: stats.to_dict()
                for name, stats in sorted(self.by_name.items())
            },
            "latency_by_phase": {
                phase: stats.to_dict()
                for phase, stats in sorted(self.by_phase.items())
            },
            "critical_path": self.critical_path(),
            "pool_utilization": self.utilization(),
            "worker_attribution": {
                str(pid): stats.to_dict()
                for pid, stats in sorted(self.worker.items())
            },
        }


def analyze(trace: TraceFile) -> TraceAnalysis:
    return TraceAnalysis(trace)


def analyze_file(path: str) -> TraceAnalysis:
    return TraceAnalysis(read_trace(path))
