"""Deterministic report artifacts: CSV/Markdown tables, SVG plots, manifest.

Everything this module writes is **byte-stable**: sorted keys, sorted
rows, canonical float formatting (shortest ``repr``), fixed two-decimal
SVG coordinates, no timestamps, no hostnames.  CI regenerates the
committed ``reports/`` directory from the committed sweep spec and
fails on any byte diff — so a perf claim in this repo is an artifact a
reviewer can rebuild, not a README sentence.

Artifacts under the output directory::

    sweep.json              the canonical spec (the grid hash preimage)
    cells/<cell>.json       one record per grid cell (written by sweep)
    tables/summary.csv/.md  marketplace outcomes per cell
    tables/metrics.csv      the deterministic metric projection per cell
    plots/<metric>.svg      one bar chart per headline metric
    tables/benchmarks.csv/.md   folded benchmark records (when present)
    manifest.json           grid hash + sha256 of every artifact above

The manifest is keyed by the sweep's grid hash and lists each
artifact's sha256, so a regenerator can verify integrity file by file;
:func:`verify_manifest` is that check.

Benchmark folding: every ``benchmarks/bench_*.py`` writes a JSON record
(``bench_helpers.record``) with span-clock timings; :func:`fold_benches`
turns a directory of them into the benchmark table — the same renderer,
so simulation sweeps and perf benches publish through one pipeline.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReportError

__all__ = [
    "render_reports",
    "fold_benches",
    "verify_manifest",
    "render_csv",
    "render_markdown_table",
    "render_bar_svg",
]

MANIFEST_SCHEMA_VERSION = 1

#: Headline per-cell metrics that get a plot each (name, record path).
PLOT_METRICS = (
    ("tasks_settled", ("report", "tasks_settled")),
    ("blocks_per_task", ("report", "blocks_per_task")),
    ("gas_per_settled_task", ("report", "gas_per_settled_task")),
    ("settled_per_block", ("report", "settled_per_block")),
)

#: Single-series mark color (validated palette slot 1) plus inks.
_BAR_FILL = "#2a78d6"
_INK = "#0b0b0b"
_INK_MUTED = "#52514e"
_GRID = "#d9d8d4"
_SURFACE = "#fcfcfb"


def format_number(value: Any) -> str:
    """Canonical cell text: ints plain, floats shortest-repr."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        if value.is_integer():
            return str(int(value))
        return repr(value)
    return str(value)


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------


def _csv_quote(text: str) -> str:
    if any(ch in text for ch in ',"\n'):
        return '"%s"' % text.replace('"', '""')
    return text


def render_csv(header: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    lines = [",".join(_csv_quote(str(h)) for h in header)]
    for row in rows:
        lines.append(
            ",".join(
                _csv_quote(
                    format_number(v) if isinstance(v, (int, float)) else str(v)
                )
                for v in row
            )
        )
    return "\n".join(lines) + "\n"


def render_markdown_table(
    header: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    out = []
    if title:
        out.append("## %s" % title)
        out.append("")
    out.append("| " + " | ".join(str(h) for h in header) + " |")
    out.append("|" + "|".join(" --- " for _ in header) + "|")
    for row in rows:
        out.append(
            "| "
            + " | ".join(
                format_number(v) if isinstance(v, (int, float)) else str(v)
                for v in row
            )
            + " |"
        )
    return "\n".join(out) + "\n"


def _dig(record: Dict[str, Any], path: Tuple[str, ...]) -> Any:
    value: Any = record
    for key in path:
        value = value[key]
    return value


_SUMMARY_COLUMNS = (
    ("tasks_published", ("report", "tasks_published")),
    ("tasks_settled", ("report", "tasks_settled")),
    ("tasks_cancelled", ("report", "tasks_cancelled")),
    ("blocks", ("report", "blocks")),
    ("blocks_per_task", ("report", "blocks_per_task")),
    ("settled_per_block", ("report", "settled_per_block")),
    ("total_gas", ("report", "total_gas")),
    ("gas_per_settled_task", ("report", "gas_per_settled_task")),
    ("enrollments", ("report", "enrollments")),
    ("declined", ("report", "declined_enrollments")),
    ("dropped_steps", ("report", "dropped_steps")),
    ("state_root", ("state_root",)),
)


def _axis_names(records: Dict[str, Dict[str, Any]]) -> List[str]:
    names: set = set()
    for record in records.values():
        names.update(record.get("params", {}))
    return sorted(names)


def summary_rows(
    records: Dict[str, Dict[str, Any]]
) -> Tuple[List[str], List[List[Any]]]:
    axes = _axis_names(records)
    header = ["cell"] + axes + [name for name, _ in _SUMMARY_COLUMNS]
    rows = []
    for cell in sorted(records):
        record = records[cell]
        row: List[Any] = [cell]
        row += [record["params"].get(axis, "") for axis in axes]
        for name, path in _SUMMARY_COLUMNS:
            value = _dig(record, path)
            if name == "state_root":
                value = str(value)[:16]
            row.append(value)
        rows.append(row)
    return header, rows


def metrics_rows(
    records: Dict[str, Dict[str, Any]]
) -> Tuple[List[str], List[List[Any]]]:
    families: set = set()
    for record in records.values():
        families.update(record.get("metrics", {}))
    header = ["cell"] + sorted(families)
    rows = []
    for cell in sorted(records):
        projected = records[cell].get("metrics", {})
        rows.append([cell] + [projected.get(f, 0) for f in sorted(families)])
    return header, rows


# ---------------------------------------------------------------------------
# Plots (deterministic standalone SVG)
# ---------------------------------------------------------------------------


def _nice_ceiling(value: float) -> float:
    """The smallest 1/2/5×10^k at or above ``value`` (axis headroom)."""
    if value <= 0:
        return 1.0
    magnitude = 1.0
    while magnitude < value:
        magnitude *= 10.0
    while magnitude / 10.0 >= value:
        magnitude /= 10.0
    for step in (magnitude / 10.0 * m for m in (2.0, 5.0, 10.0)):
        if step >= value:
            return step
    return magnitude


def _f(value: float) -> str:
    """Fixed two-decimal SVG coordinates — byte-stable across hosts."""
    return ("%.2f" % value).rstrip("0").rstrip(".")


def render_bar_svg(
    title: str, labels: Sequence[str], values: Sequence[float]
) -> str:
    """One single-series bar chart as a standalone SVG document.

    Thin marks with rounded data-ends anchored to the baseline, a
    recessive grid, direct value labels (one series — the title names
    it, so there is no legend box), text in ink tokens rather than the
    series color.
    """
    if len(labels) != len(values):
        raise ReportError("labels and values disagree in length")
    width, height = 720, 360
    left, right, top, bottom = 70, 20, 48, 110
    plot_w = width - left - right
    plot_h = height - top - bottom
    peak = _nice_ceiling(max([float(v) for v in values] + [0.0]))
    parts = [
        '<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" '
        'viewBox="0 0 %d %d" font-family="system-ui, sans-serif">'
        % (width, height, width, height),
        '<rect width="%d" height="%d" fill="%s"/>' % (width, height, _SURFACE),
        '<text x="%d" y="24" font-size="15" fill="%s">%s</text>'
        % (left, _INK, _escape(title)),
    ]
    # Recessive horizontal grid at quarters, y-axis tick labels.
    for quarter in range(5):
        y = top + plot_h - plot_h * quarter / 4.0
        parts.append(
            '<line x1="%d" y1="%s" x2="%d" y2="%s" stroke="%s" '
            'stroke-width="1"/>'
            % (left, _f(y), left + plot_w, _f(y), _GRID)
        )
        parts.append(
            '<text x="%d" y="%s" font-size="11" fill="%s" '
            'text-anchor="end">%s</text>'
            % (left - 8, _f(y + 4), _INK_MUTED,
               format_number(peak * quarter / 4.0))
        )
    count = max(len(values), 1)
    slot = plot_w / count
    bar_w = min(48.0, slot * 0.6)
    for index, (label, value) in enumerate(zip(labels, values)):
        x = left + slot * index + (slot - bar_w) / 2.0
        bar_h = plot_h * (float(value) / peak) if peak else 0.0
        y = top + plot_h - bar_h
        # Rounded data-end anchored to the baseline: round the top only
        # by letting the rect overflow its clip at the bottom.
        parts.append(
            '<path d="M%s %s v%s q0 -4 4 -4 h%s q4 0 4 4 v%s z" '
            'fill="%s"/>'
            % (
                _f(x), _f(top + plot_h), _f(-(bar_h - 4.0)),
                _f(bar_w - 8.0), _f(bar_h - 4.0), _BAR_FILL,
            )
            if bar_h >= 4.0
            else '<rect x="%s" y="%s" width="%s" height="%s" fill="%s"/>'
            % (_f(x), _f(y), _f(bar_w), _f(bar_h), _BAR_FILL)
        )
        parts.append(
            '<text x="%s" y="%s" font-size="11" fill="%s" '
            'text-anchor="middle">%s</text>'
            % (_f(x + bar_w / 2.0), _f(y - 6), _INK, format_number(value))
        )
        parts.append(
            '<text x="%s" y="%s" font-size="10" fill="%s" '
            'text-anchor="end" transform="rotate(-35 %s %s)">%s</text>'
            % (
                _f(left + slot * index + slot / 2.0),
                _f(top + plot_h + 16),
                _INK_MUTED,
                _f(left + slot * index + slot / 2.0),
                _f(top + plot_h + 16),
                _escape(label),
            )
        )
    parts.append(
        '<line x1="%d" y1="%s" x2="%d" y2="%s" stroke="%s" '
        'stroke-width="1"/>'
        % (left, _f(top + plot_h), left + plot_w, _f(top + plot_h),
           _INK_MUTED)
    )
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def _escape(text: str) -> str:
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


# ---------------------------------------------------------------------------
# Benchmark folding
# ---------------------------------------------------------------------------


def fold_benches(
    bench_dir: str,
) -> Tuple[List[str], List[List[Any]]]:
    """Fold ``<bench_dir>/*.json`` records into one table.

    One row per (bench, metric): the machine-readable perf trajectory
    every ``bench_*.py`` writes via ``bench_helpers.record`` —
    span-clock ``timings`` (unit ``s``) plus any unitless ``values``
    (gas figures, throughput counts).
    """
    header = ["bench", "metric", "value", "unit", "params", "cpu_count",
              "smoke"]
    rows: List[List[Any]] = []
    if not os.path.isdir(bench_dir):
        return header, rows
    for name in sorted(os.listdir(bench_dir)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(bench_dir, name)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except ValueError as failure:
            raise ReportError(
                "unreadable bench record %s: %s" % (path, failure)
            ) from None
        if not isinstance(record, dict) or "bench" not in record:
            raise ReportError("%s is not a bench record" % path)
        params = json.dumps(record.get("params", {}), sort_keys=True)
        cpu_count = record.get("host", {}).get("cpu_count", "")
        smoke = bool(record.get("smoke", False))
        folded = [
            (label, seconds, "s")
            for label, seconds in sorted(record.get("timings", {}).items())
        ] + [
            (label, value, "")
            for label, value in sorted(record.get("values", {}).items())
        ]
        for label, value, unit in folded:
            rows.append(
                [record["bench"], label, value, unit, params, cpu_count,
                 smoke]
            )
    return header, rows


# ---------------------------------------------------------------------------
# The manifest and the top-level renderer
# ---------------------------------------------------------------------------


def _sha256(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(65536), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _write(out_dir: str, relpath: str, text: str) -> str:
    path = os.path.join(out_dir, relpath)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        handle.write(text)
    return relpath


def render_reports(
    out_dir: str,
    records: Dict[str, Dict[str, Any]],
    spec_json: str,
    grid: str,
    bench_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Write every artifact under ``out_dir``; return the manifest."""
    if not records:
        raise ReportError("no cell records to render")
    written: List[str] = [_write(out_dir, "sweep.json", spec_json)]

    header, rows = summary_rows(records)
    written.append(_write(out_dir, "tables/summary.csv",
                          render_csv(header, rows)))
    written.append(
        _write(
            out_dir,
            "tables/summary.md",
            render_markdown_table(
                header, rows, title="Sweep summary (grid %s)" % grid[:16]
            ),
        )
    )
    header, rows = metrics_rows(records)
    written.append(_write(out_dir, "tables/metrics.csv",
                          render_csv(header, rows)))

    cells = sorted(records)
    for metric, path in PLOT_METRICS:
        values = [float(_dig(records[cell], path)) for cell in cells]
        written.append(
            _write(
                out_dir,
                "plots/%s.svg" % metric,
                render_bar_svg("%s by cell" % metric, cells, values),
            )
        )

    if bench_dir is not None:
        header, rows = fold_benches(bench_dir)
        if rows:
            written.append(_write(out_dir, "tables/benchmarks.csv",
                                  render_csv(header, rows)))
            written.append(
                _write(
                    out_dir,
                    "tables/benchmarks.md",
                    render_markdown_table(
                        header, rows, title="Benchmark records"
                    ),
                )
            )

    # Cell records were written by the sweep; fold them into the
    # manifest so the byte-diff covers them too.
    cells_dir = os.path.join(out_dir, "cells")
    if os.path.isdir(cells_dir):
        for name in sorted(os.listdir(cells_dir)):
            if name.endswith(".json"):
                written.append("cells/" + name)

    manifest = {
        "schema": MANIFEST_SCHEMA_VERSION,
        "grid": grid,
        "cells": sorted(records),
        "artifacts": {
            relpath: _sha256(os.path.join(out_dir, relpath))
            for relpath in sorted(set(written))
        },
    }
    _write(
        out_dir,
        "manifest.json",
        json.dumps(manifest, sort_keys=True, indent=2) + "\n",
    )
    return manifest


def verify_manifest(out_dir: str) -> Dict[str, Any]:
    """Re-hash every artifact against ``manifest.json``; raise on drift."""
    manifest_path = os.path.join(out_dir, "manifest.json")
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except OSError as failure:
        raise ReportError("no manifest at %s: %s" % (manifest_path, failure))
    except ValueError as failure:
        raise ReportError("unreadable manifest: %s" % failure) from None
    stale = []
    for relpath, digest in sorted(manifest.get("artifacts", {}).items()):
        path = os.path.join(out_dir, relpath)
        if not os.path.exists(path):
            stale.append("%s: missing" % relpath)
        elif _sha256(path) != digest:
            stale.append("%s: sha256 drift" % relpath)
    if stale:
        raise ReportError(
            "report artifacts disagree with the manifest: %s"
            % "; ".join(stale)
        )
    return manifest
