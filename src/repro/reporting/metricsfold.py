"""Folding ``MetricsRegistry.collect()`` snapshots across runs.

A snapshot is the plain-data list the registry's ``collect()`` returns
(and the ``node_metrics`` RPC method serves): one entry per family with
``name``/``type``/``help`` and a ``samples`` list.  This module gives
snapshots a life beyond one scrape:

* **canonical IO** — :func:`snapshot_to_json` (sorted keys, exact float
  round-trip via Python's shortest-repr) and :func:`snapshot_to_bytes`
  (the :mod:`repro.store.codec` TLV encoding).  Both round-trip a
  snapshot *identically*: the portability contract
  ``tests/reporting/test_metricsfold.py`` pins, so folded reports are
  byte-stable across hosts;
* **diffing** — :func:`diff_snapshots` subtracts a "before" scrape from
  an "after" scrape: counter deltas, histogram bucket/count/sum deltas,
  gauges at their after-value.  This is how a sweep cell isolates its
  own run from a process-global registry that earlier cells already
  incremented;
* **merging** — :func:`merge_snapshots` adds counters and histograms
  across runs (mergeable because bucket edges are declared and fixed);
  gauges keep the last value, which is documented, not profound;
* **the deterministic projection** — :func:`deterministic_projection`
  keeps what two identically seeded runs must agree on: counter values
  and histogram *total counts*.  Gauges (scrape-time samplers reflect
  host shape) and histogram buckets/sums (they bin wall-clock seconds)
  are observations about *this* execution, so they stay out of the
  byte-diffed report artifacts.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReportError
from repro.store import codec

__all__ = [
    "snapshot_to_json",
    "snapshot_from_json",
    "snapshot_to_bytes",
    "snapshot_from_bytes",
    "write_snapshot",
    "read_snapshot",
    "diff_snapshots",
    "merge_snapshots",
    "deterministic_projection",
]

#: Version stamp on snapshot files written by :func:`write_snapshot`.
SNAPSHOT_SCHEMA_VERSION = 1


def _check(snapshot: Any) -> List[Dict[str, Any]]:
    if not isinstance(snapshot, list) or any(
        not isinstance(family, dict) or "name" not in family
        or "type" not in family or "samples" not in family
        for family in snapshot
    ):
        raise ReportError("not a MetricsRegistry.collect() snapshot")
    return snapshot


# ---------------------------------------------------------------------------
# Canonical IO
# ---------------------------------------------------------------------------


def snapshot_to_json(snapshot: List[Dict[str, Any]]) -> str:
    """Canonical JSON: sorted keys, newline-terminated, exact floats."""
    return json.dumps(
        {"schema": SNAPSHOT_SCHEMA_VERSION, "families": _check(snapshot)},
        sort_keys=True,
        indent=2,
    ) + "\n"


def snapshot_from_json(text: str) -> List[Dict[str, Any]]:
    try:
        payload = json.loads(text)
    except ValueError as failure:
        raise ReportError("unreadable snapshot JSON: %s" % failure) from None
    if not isinstance(payload, dict) or "families" not in payload:
        raise ReportError("snapshot JSON missing the families member")
    if payload.get("schema") != SNAPSHOT_SCHEMA_VERSION:
        raise ReportError(
            "unknown snapshot schema %r" % payload.get("schema")
        )
    return _check(payload["families"])


def snapshot_to_bytes(snapshot: List[Dict[str, Any]]) -> bytes:
    """The canonical-codec encoding (for WAL-adjacent storage)."""
    return codec.encode(_check(snapshot))


def snapshot_from_bytes(blob: bytes) -> List[Dict[str, Any]]:
    return _check(codec.decode(blob))


def write_snapshot(path: str, snapshot: List[Dict[str, Any]]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(snapshot_to_json(snapshot))


def read_snapshot(path: str) -> List[Dict[str, Any]]:
    with open(path, "r", encoding="utf-8") as handle:
        return snapshot_from_json(handle.read())


# ---------------------------------------------------------------------------
# Folding
# ---------------------------------------------------------------------------


def _label_key(labels: Dict[str, Any]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _index(
    family: Dict[str, Any]
) -> Dict[Tuple[Tuple[str, str], ...], Dict[str, Any]]:
    return {
        _label_key(sample.get("labels", {})): sample
        for sample in family["samples"]
    }


def _bucket_counts(sample: Dict[str, Any]) -> Dict[str, float]:
    return {
        str(bucket["le"]): bucket["count"] for bucket in sample["buckets"]
    }


def _combine(
    base: List[Dict[str, Any]],
    overlay: List[Dict[str, Any]],
    subtract: bool,
) -> List[Dict[str, Any]]:
    """Shared diff/merge walk; ``subtract`` flips histogram/counter math."""
    by_name = {family["name"]: family for family in _check(base)}
    out: List[Dict[str, Any]] = []
    for family in _check(overlay):
        before = by_name.get(family["name"])
        if before is not None and before["type"] != family["type"]:
            raise ReportError(
                "family %r changed type: %s vs %s"
                % (family["name"], before["type"], family["type"])
            )
        previous = _index(before) if before is not None else {}
        samples: List[Dict[str, Any]] = []
        for sample in family["samples"]:
            key = _label_key(sample.get("labels", {}))
            other = previous.get(key)
            folded = {"labels": dict(sample.get("labels", {}))}
            if family["type"] == "histogram":
                base_counts = _bucket_counts(other) if other else {}
                sign = -1 if subtract else 1
                folded["buckets"] = [
                    {
                        "le": bucket["le"],
                        "count": bucket["count"]
                        + sign * base_counts.get(str(bucket["le"]), 0),
                    }
                    for bucket in sample["buckets"]
                ]
                folded["sum"] = sample["sum"] + (
                    sign * other["sum"] if other else 0
                )
                folded["count"] = sample["count"] + (
                    sign * other["count"] if other else 0
                )
            elif family["type"] == "counter":
                delta = sample["value"] - (other["value"] if other else 0)
                folded["value"] = (
                    delta if subtract
                    else sample["value"] + (other["value"] if other else 0)
                )
            else:
                # Gauges: the after-value (diff) / the last value (merge).
                folded["value"] = sample["value"]
            samples.append(folded)
        out.append(
            {
                "name": family["name"],
                "type": family["type"],
                "help": family["help"],
                "samples": samples,
            }
        )
    out.sort(key=lambda family: family["name"])
    return out


def diff_snapshots(
    before: List[Dict[str, Any]], after: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """What happened *between* two scrapes of one registry."""
    return _combine(before, after, subtract=True)


def merge_snapshots(
    snapshots: List[List[Dict[str, Any]]],
) -> List[Dict[str, Any]]:
    """Aggregate scrapes from many runs/nodes into one snapshot."""
    if not snapshots:
        return []
    merged = _check(snapshots[0])
    for snapshot in snapshots[1:]:
        merged = _combine(merged, snapshot, subtract=False)
    return merged


def deterministic_projection(
    snapshot: List[Dict[str, Any]],
    prefixes: Optional[Tuple[str, ...]] = None,
) -> Dict[str, Any]:
    """The cross-run-stable view (see the module docstring).

    Returns ``{family-name[{label=value,...}]: number}`` with counters
    at their value and histograms at their total observation count.
    ``prefixes`` optionally restricts to matching family names.
    """
    projected: Dict[str, Any] = {}
    for family in _check(snapshot):
        name = family["name"]
        if prefixes and not any(name.startswith(p) for p in prefixes):
            continue
        if family["type"] not in ("counter", "histogram"):
            continue
        for sample in family["samples"]:
            labels = sample.get("labels", {})
            key = name
            if labels:
                key += "{%s}" % ",".join(
                    "%s=%s" % pair for pair in _label_key(labels)
                )
            value = (
                sample["count"]
                if family["type"] == "histogram"
                else sample["value"]
            )
            if isinstance(value, float) and value.is_integer():
                value = int(value)
            projected[key] = value
    return dict(sorted(projected.items()))
