"""The declarative sweep runner: a scenario grid → per-cell records.

A :class:`SweepSpec` is pure data: a base preset, a seed, an optional
task-count resize, and a grid of **axes** — each axis names one
scenario knob and lists the values to sweep.  The cells are the
cartesian product, run through :func:`repro.sim.runner.run_scenario`
with PR-8 telemetry capture switched on: a per-cell JSONL span trace
and a before/after ``MetricsRegistry.collect()`` diff.

Axes (the adversary-&-economics-lab knobs from the ROADMAP):

===================  ====================================================
``reward``           task budget in coins (alias: ``budget``)
``audit_threshold``  golds a submission must match (Θ)
``accuracy``         population accuracy, pinned to ``("point", value)``
``stragglers``       fraction of agents revealing one period late
``dropouts``         fraction of agents committing but never revealing
``seed``             per-cell reseed (the grid's replication axis)
===================  ====================================================

Reproducibility contract
------------------------

Each cell runs under the same deterministic-entropy / scoped-nonce
regime as any ``run_scenario`` call, so a cell record's ``report`` and
``state_root`` are byte-identical run over run, *and* identical to an
un-instrumented run of the same scenario — telemetry only observes.
The record's ``metrics`` member keeps only the deterministic projection
(:data:`CELL_METRIC_PREFIXES` counters + histogram counts) and its
``trace`` member only the structural projection, so whole cell records
are byte-stable across hosts and across ``--procs`` settings.  That is
what lets CI regenerate ``reports/`` and fail on a byte diff.

Cells checkpoint/resume through the PR-4 store: with
``checkpoint_every`` set, each cell journals to its own state dir under
the work dir, and a sweep re-entered after a kill resumes interrupted
cells with :func:`repro.sim.runner.resume_scenario` — the resumed
``report``/``state_root`` are byte-identical to an uninterrupted cell's
(the ``trace``/``metrics`` projections describe the processes that
actually executed, so an interrupted cell's record notes the resume).
Completed cells (their record already on disk, manifest hash matching)
are skipped entirely.

Fan-out follows the :mod:`repro.parallel` convention: ``procs=0`` runs
cells inline (the reference path), ``procs=N`` fans cells across a
process pool — cell *records* are identical either way.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import shutil
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ReportError
from repro.obs.registry import REGISTRY
from repro.obs.tracing import trace_to
from repro.reporting import metricsfold, traces
from repro.sim.runner import InterruptedRun, resume_scenario, run_scenario
from repro.sim.scenario import Scenario, preset
from repro.store import NodeStore
from repro.store.codec import state_root

__all__ = [
    "SweepSpec",
    "SWEEP_AXES",
    "CELL_METRIC_PREFIXES",
    "spec_to_json",
    "spec_from_json",
    "grid_hash",
    "cells",
    "build_scenario",
    "run_cell",
    "run_sweep",
]

#: Version stamp on sweep specs and cell records.
SWEEP_SCHEMA_VERSION = 1

#: Axis names the grid understands (see the module table).
SWEEP_AXES = (
    "reward", "budget", "audit_threshold", "accuracy",
    "stragglers", "dropouts", "seed",
)

#: Metric families whose counts are invariants of the *scenario* (not of
#: the executing process): safe for byte-diffed artifacts.  Crypto-cache
#: and pool families depend on process lifetime and host shape, so they
#: stay in the full (work-dir) fold, never in the record.
CELL_METRIC_PREFIXES = ("chain_", "engine_", "session_", "sim_")


@dataclass(frozen=True)
class SweepSpec:
    """One reproducible scenario grid, fully described by data."""

    name: str
    preset: str = "poisson"
    seed: int = 0
    tasks: Optional[int] = None
    #: ``((axis, (value, ...)), ...)`` — normalized sorted by axis name.
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    #: Per-cell checkpoint cadence through the PR-4 store (0 = off).
    checkpoint_every: int = 0

    def __post_init__(self) -> None:
        normalized = []
        for axis, values in self.axes:
            if axis not in SWEEP_AXES:
                raise ReportError(
                    "unknown sweep axis %r (have: %s)"
                    % (axis, ", ".join(SWEEP_AXES))
                )
            if not values:
                raise ReportError("sweep axis %r lists no values" % axis)
            for value in values:
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    raise ReportError(
                        "axis %r value %r is not a number" % (axis, value)
                    )
            normalized.append((axis, tuple(values)))
        normalized.sort()
        object.__setattr__(self, "axes", tuple(normalized))

    def to_data(self) -> Dict[str, Any]:
        return {
            "schema": SWEEP_SCHEMA_VERSION,
            "name": self.name,
            "preset": self.preset,
            "seed": self.seed,
            "tasks": self.tasks,
            "checkpoint_every": self.checkpoint_every,
            "axes": {axis: list(values) for axis, values in self.axes},
        }

    @classmethod
    def from_data(cls, data: Dict[str, Any]) -> "SweepSpec":
        if not isinstance(data, dict) or "name" not in data:
            raise ReportError("not a sweep spec")
        if data.get("schema", SWEEP_SCHEMA_VERSION) != SWEEP_SCHEMA_VERSION:
            raise ReportError(
                "unknown sweep spec schema %r" % data.get("schema")
            )
        return cls(
            name=str(data["name"]),
            preset=str(data.get("preset", "poisson")),
            seed=int(data.get("seed", 0)),
            tasks=data.get("tasks"),
            checkpoint_every=int(data.get("checkpoint_every", 0)),
            axes=tuple(
                (axis, tuple(values))
                for axis, values in sorted(
                    (data.get("axes") or {}).items()
                )
            ),
        )


def spec_to_json(spec: SweepSpec) -> str:
    """Canonical spec bytes — the input to :func:`grid_hash`."""
    return json.dumps(spec.to_data(), sort_keys=True, indent=2) + "\n"


def spec_from_json(text: str) -> SweepSpec:
    try:
        return SweepSpec.from_data(json.loads(text))
    except ValueError as failure:
        raise ReportError("unreadable sweep spec: %s" % failure) from None


def grid_hash(spec: SweepSpec) -> str:
    """The manifest key: sha256 over the canonical spec bytes."""
    return hashlib.sha256(spec_to_json(spec).encode("utf-8")).hexdigest()


def _format_value(value: Any) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def cell_id(params: Dict[str, Any]) -> str:
    """The deterministic cell slug, e.g. ``accuracy=0.7__budget=120``."""
    return "__".join(
        "%s=%s" % (axis, _format_value(value))
        for axis, value in sorted(params.items())
    )


def cells(spec: SweepSpec) -> List[Tuple[str, Dict[str, Any]]]:
    """The grid's cells: ``(cell_id, {axis: value})`` in sorted order."""
    if not spec.axes:
        return [("base", {})]
    names = [axis for axis, _ in spec.axes]
    grid = [values for _, values in spec.axes]
    out = []
    for combo in itertools.product(*grid):
        params = dict(zip(names, combo))
        out.append((cell_id(params), params))
    return out


def build_scenario(spec: SweepSpec, params: Dict[str, Any]) -> Scenario:
    """The preset with this cell's axis values applied."""
    scenario = preset(spec.preset, seed=spec.seed, tasks=spec.tasks)
    task = scenario.task
    population = scenario.population
    seed = scenario.seed
    for axis, value in sorted(params.items()):
        if axis in ("reward", "budget"):
            task = replace(task, budget=int(value))
        elif axis == "audit_threshold":
            task = replace(task, quality_threshold=int(value))
        elif axis == "accuracy":
            population = replace(population, accuracy=("point", float(value)))
        elif axis == "stragglers":
            population = replace(population, straggler_fraction=float(value))
        elif axis == "dropouts":
            population = replace(population, dropout_fraction=float(value))
        elif axis == "seed":
            seed = int(value)
        else:  # pragma: no cover - __post_init__ already screened
            raise ReportError("unknown sweep axis %r" % axis)
    return replace(scenario, task=task, population=population, seed=seed)


# ---------------------------------------------------------------------------
# Running one cell
# ---------------------------------------------------------------------------


def _work_paths(work_dir: str, cell: str) -> Tuple[str, str, str]:
    traces_dir = os.path.join(work_dir, "traces")
    state_dir = os.path.join(work_dir, "state", cell)
    os.makedirs(traces_dir, exist_ok=True)
    return os.path.join(traces_dir, cell + ".jsonl"), state_dir, work_dir


def run_cell(
    spec: SweepSpec,
    cell: str,
    params: Dict[str, Any],
    work_dir: str,
    interrupt_after: Optional[int] = None,
):
    """Run (or resume) one cell; return its record dict.

    ``interrupt_after`` is the deterministic stand-in for ``kill -9``
    mid-cell (see :func:`run_scenario`); it returns the
    :class:`InterruptedRun` marker instead of a record, and the next
    ``run_cell`` for the same cell resumes from the checkpoint.
    """
    trace_path, state_dir, _ = _work_paths(work_dir, cell)
    scenario = build_scenario(spec, params)
    before = REGISTRY.collect()
    resumed = False
    with trace_to(trace_path):
        if spec.checkpoint_every and NodeStore.exists(state_dir) and (
            NodeStore.open(state_dir).manifest().get("checkpoints")
        ):
            resumed = True
            run = resume_scenario(
                state_dir, keep_objects=True, interrupt_after=interrupt_after
            )
        else:
            store = None
            if spec.checkpoint_every:
                # A checkpoint-less leftover (e.g. from a completed cell
                # being re-run under --force) cannot be resumed; restart.
                if NodeStore.exists(state_dir):
                    shutil.rmtree(state_dir)
                store = NodeStore.init(state_dir)
            run = run_scenario(
                scenario,
                keep_objects=True,
                store=store,
                checkpoint_every=spec.checkpoint_every,
                interrupt_after=interrupt_after,
            )
    if isinstance(run, InterruptedRun):
        return run
    after = REGISTRY.collect()
    fold = metricsfold.diff_snapshots(before, after)
    analysis = traces.analyze_file(trace_path)
    record = {
        "schema": SWEEP_SCHEMA_VERSION,
        "cell": cell,
        "params": dict(sorted(params.items())),
        "grid": grid_hash(spec),
        "scenario": {
            "preset": spec.preset,
            "name": scenario.name,
            "seed": scenario.seed,
            "tasks": spec.tasks,
        },
        "report": run.report.to_dict(),
        "state_root": state_root(run.dragoon.chain).hex(),
        "metrics": metricsfold.deterministic_projection(
            fold, prefixes=CELL_METRIC_PREFIXES
        ),
        "trace": analysis.structure(),
        "resumed": resumed,
    }
    run.report.check_invariants()
    return record


def record_to_json(record: Dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, indent=2) + "\n"


def _cell_worker(args: Tuple) -> Tuple[str, Dict[str, Any]]:
    spec_data, cell, params, work_dir = args
    spec = SweepSpec.from_data(spec_data)
    return cell, run_cell(spec, cell, params, work_dir)


# ---------------------------------------------------------------------------
# Running the grid
# ---------------------------------------------------------------------------


def run_sweep(
    spec: SweepSpec,
    out_dir: str,
    work_dir: Optional[str] = None,
    procs: int = 0,
    force: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Dict[str, Any]]:
    """Run every cell of the grid; write ``cells/<id>.json`` under
    ``out_dir``; return ``{cell_id: record}``.

    Completed cells whose on-disk record carries the current grid hash
    are skipped (delete the record — or pass ``force`` — to re-run);
    interrupted checkpointed cells resume.  ``procs`` fans cells across
    a process pool (0 = inline, the reference path the determinism
    tests pin N against).
    """
    work_dir = work_dir or out_dir + ".work"
    cells_dir = os.path.join(out_dir, "cells")
    os.makedirs(cells_dir, exist_ok=True)
    os.makedirs(work_dir, exist_ok=True)
    expected_hash = grid_hash(spec)
    say = progress or (lambda message: None)

    records: Dict[str, Dict[str, Any]] = {}
    pending: List[Tuple[str, Dict[str, Any]]] = []
    for cell, params in cells(spec):
        record_path = os.path.join(cells_dir, cell + ".json")
        if not force and os.path.exists(record_path):
            with open(record_path, "r", encoding="utf-8") as handle:
                existing = json.load(handle)
            if existing.get("grid") == expected_hash:
                records[cell] = existing
                say("cell %s: reusing completed record" % cell)
                continue
        pending.append((cell, params))

    if procs and len(pending) > 1:
        jobs = [
            (spec.to_data(), cell, params, work_dir)
            for cell, params in pending
        ]
        with ProcessPoolExecutor(max_workers=procs) as pool:
            for cell, record in pool.map(_cell_worker, jobs):
                records[cell] = record
                say("cell %s: settled %d/%d tasks" % (
                    cell,
                    record["report"]["tasks_settled"],
                    record["report"]["tasks_published"],
                ))
    else:
        for cell, params in pending:
            record = run_cell(spec, cell, params, work_dir)
            if isinstance(record, InterruptedRun):
                raise ReportError(
                    "cell %s interrupted at step %d (re-run the sweep to "
                    "resume it)" % (cell, record.step)
                )
            records[cell] = record
            say("cell %s: settled %d/%d tasks" % (
                cell,
                record["report"]["tasks_settled"],
                record["report"]["tasks_published"],
            ))

    for cell, record in records.items():
        with open(
            os.path.join(cells_dir, cell + ".json"), "w", encoding="utf-8"
        ) as handle:
            handle.write(record_to_json(record))
    return dict(sorted(records.items()))
