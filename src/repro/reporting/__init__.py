"""Telemetry analytics & reporting: traces → folds → sweeps → artifacts.

The pipeline downstream of the PR-8 observability layer:

* :mod:`repro.reporting.traces` — stream JSONL span files into
  per-phase percentiles, critical paths, and pool utilization;
* :mod:`repro.reporting.metricsfold` — diff/merge/project
  ``MetricsRegistry.collect()`` snapshots;
* :mod:`repro.reporting.sweep` — the declarative scenario-grid runner
  with checkpoint/resume and process fan-out;
* :mod:`repro.reporting.render` — deterministic CSV/Markdown/SVG
  artifacts under ``reports/`` with a sha256 manifest.

Everything that lands in ``reports/`` is byte-reproducible; see the
reproducibility contract in :mod:`repro.reporting.sweep`.
"""

from repro.reporting.metricsfold import (
    deterministic_projection,
    diff_snapshots,
    merge_snapshots,
    read_snapshot,
    snapshot_from_bytes,
    snapshot_from_json,
    snapshot_to_bytes,
    snapshot_to_json,
    write_snapshot,
)
from repro.reporting.render import (
    fold_benches,
    render_bar_svg,
    render_csv,
    render_markdown_table,
    render_reports,
    verify_manifest,
)
from repro.reporting.sweep import (
    CELL_METRIC_PREFIXES,
    SWEEP_AXES,
    SweepSpec,
    build_scenario,
    cells,
    grid_hash,
    run_cell,
    run_sweep,
    spec_from_json,
    spec_to_json,
)
from repro.reporting.traces import (
    SpanStats,
    TraceAnalysis,
    TraceFile,
    analyze,
    analyze_file,
    iter_spans,
    percentile,
    read_trace,
)

__all__ = [
    # traces
    "TraceFile",
    "TraceAnalysis",
    "SpanStats",
    "read_trace",
    "iter_spans",
    "analyze",
    "analyze_file",
    "percentile",
    # metricsfold
    "snapshot_to_json",
    "snapshot_from_json",
    "snapshot_to_bytes",
    "snapshot_from_bytes",
    "write_snapshot",
    "read_snapshot",
    "diff_snapshots",
    "merge_snapshots",
    "deterministic_projection",
    # sweep
    "SweepSpec",
    "SWEEP_AXES",
    "CELL_METRIC_PREFIXES",
    "spec_to_json",
    "spec_from_json",
    "grid_hash",
    "cells",
    "build_scenario",
    "run_cell",
    "run_sweep",
    # render
    "render_reports",
    "fold_benches",
    "verify_manifest",
    "render_csv",
    "render_markdown_table",
    "render_bar_svg",
]
