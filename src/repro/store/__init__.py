"""repro.store — persistent node state: codec, WAL, snapshots, resume.

Everything the in-process node knows — blocks, transactions, receipts,
events, the ledger, deployed-contract storage, the event log with its
compaction base, and the deterministic entropy position — can be made
durable and brought back:

* :mod:`repro.store.codec` — the canonical, versioned byte encoding of
  the whole chain state and the 32-byte ``state_root`` over it;
* :mod:`repro.store.trie` — the incremental Merkle trie behind
  ``state_root`` since schema v2: namespaced keys over every durable
  domain, O(log n) dirty-path root updates, membership /
  non-membership proofs, and the hash-chained commitment headers
  light clients anchor to;
* :mod:`repro.store.blockstore` — the append-only block WAL (physical
  per-block effect records) and atomic snapshot files;
* :mod:`repro.store.nodestore` — :class:`~repro.store.nodestore.NodeStore`,
  the state-directory manager: journal via ``chain.attach_store``,
  ``save``/``load`` snapshots, and checkpoint/resume continuations for
  :func:`repro.sim.runner.run_scenario`.

Quick start::

    from repro.store import NodeStore

    store = NodeStore.init("./mainnet")      # once
    chain, meta = store.load()               # every later invocation
    chain.attach_store(store)                # journal new blocks
    ...
    store.save(chain)                        # snapshot + WAL reset
"""

from repro.store.blockstore import BlockStore, StoreError, load_snapshot, save_snapshot
from repro.store.codec import (
    CodecError,
    SCHEMA_VERSION,
    decode,
    decode_chain_state,
    encode,
    encode_chain_state,
    state_root,
)
from repro.store.nodestore import NodeStore
from repro.store.trie import (
    ChainStateTrie,
    Header,
    MerkleTrie,
    ProofError,
    chain_state_trie,
    verify_proof,
)

__all__ = [
    "BlockStore",
    "ChainStateTrie",
    "CodecError",
    "Header",
    "MerkleTrie",
    "NodeStore",
    "ProofError",
    "SCHEMA_VERSION",
    "StoreError",
    "chain_state_trie",
    "decode",
    "decode_chain_state",
    "encode",
    "encode_chain_state",
    "load_snapshot",
    "save_snapshot",
    "state_root",
    "verify_proof",
]
