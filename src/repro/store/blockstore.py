"""The block write-ahead log and snapshot files.

Durability follows the classic recipe: a periodic **snapshot** of the
full canonical state plus an append-only **WAL** of per-block effect
records between snapshots.  Recovery = load the last snapshot, replay
the WAL on top, stop at the first torn record (a crash mid-append);
the result must reach the same ``state_root`` as the lost process —
that is the contract :mod:`tests.test_persistence` pins.

WAL records are *physical* (effects, not causes): each sealed block is
journalled together with exactly what it changed — ledger balances and
escrow, contract storage upserts/deletes, newly deployed contracts, gas
tallies, the clock, the event-log compaction base, the process-wide
transaction-nonce position, and the deterministic-entropy position.
Replay applies effects; it never re-executes transactions, so recovery
cannot diverge from what the crashed node actually computed.

Framing: ``[4-byte length][4-byte checksum][payload]`` per record,
payload encoded by :mod:`repro.store.codec`.  A torn tail
(short read or checksum mismatch) ends replay cleanly — everything
before it is intact by construction.

Snapshots (and the manifest and checkpoints above them) are written
through :func:`atomic_write` — temp file, fsync, rename — and embed
both the Merkle-trie ``state_root`` (the cross-run identity anchor)
and an ``encoding_hash`` over the embedded canonical bytes;
:func:`load_snapshot` re-hashes the stored encoding and refuses a
corrupted file.

Durability bounds, precisely: against a **process kill** the loss is at
most the un-sealed tail of the current block (WAL appends are flushed
per block); against **OS crash / power loss** the guarantee anchors at
the last snapshot, because WAL appends are not fsynced per block — the
journalling cost would be dominated by the sync, and the simulator's
recovery story targets killed processes, not failing disks.
"""

from __future__ import annotations

import hashlib
import os
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.chain.blocks import Block
from repro.chain.chain import Chain
from repro.chain.contract import snapshot_storage
from repro.chain.transactions import nonce_position
from repro.crypto.keccak import keccak256
from repro.crypto.rng import entropy
from repro.errors import ReproError
from repro.store import codec

WAL_MAGIC = b"DRGWAL01"
SNAPSHOT_MAGIC = b"DRGSNAP1"


def _frame_checksum(payload: bytes) -> bytes:
    """Framing integrity only (torn-write detection), so the fast C
    hash is the right tool; keccak stays reserved for state roots."""
    return hashlib.sha256(payload).digest()[:4]


def atomic_write(path: str, blob: bytes) -> None:
    """Write ``blob`` atomically: temp file, fsync, rename.

    The one recipe every durable artifact (snapshot, manifest,
    checkpoint) goes through, so the fsync policy lives in one place."""
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class StoreError(ReproError):
    """Raised on unreadable snapshots or unusable state directories."""


# ---------------------------------------------------------------------------
# The write-ahead log
# ---------------------------------------------------------------------------


class BlockStore:
    """An append-only, checksummed record log (the node's WAL)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = None

    # -- writing ---------------------------------------------------------------

    def _open_for_append(self):
        if self._handle is None:
            fresh = not os.path.exists(self.path) or os.path.getsize(self.path) == 0
            if not fresh:
                # A previous process may have died mid-append, leaving a
                # torn record.  Appending after it would strand every
                # later record behind the tear (replay stops there), so
                # cut the log back to its last intact record first.
                end = self._intact_end()
                if end < os.path.getsize(self.path):
                    with open(self.path, "r+b") as handle:
                        handle.truncate(end)
            self._handle = open(self.path, "ab")
            if fresh:
                self._handle.write(WAL_MAGIC)
                self._handle.flush()
        return self._handle

    def _intact_end(self) -> int:
        """The byte offset just past the last intact record."""
        with open(self.path, "rb") as handle:
            data = handle.read()
        if not data.startswith(WAL_MAGIC):
            raise StoreError("%s is not a Dragoon WAL" % self.path)
        pos = len(WAL_MAGIC)
        while pos + 8 <= len(data):
            length = int.from_bytes(data[pos : pos + 4], "big")
            checksum = data[pos + 4 : pos + 8]
            end = pos + 8 + length
            if end > len(data) or _frame_checksum(data[pos + 8 : end]) != checksum:
                break
            pos = end
        return pos

    def append(self, record: Dict[str, Any]) -> None:
        """Journal one record, flushed before returning.

        Flushed, not fsynced: appends survive a process kill (the page
        cache outlives the process) but not a power loss — per-block
        fsync would dominate the journalling cost.  Full power-loss
        durability is anchored at snapshot boundaries, which do fsync
        (see :func:`atomic_write`); the loss bound is documented in the
        module docstring."""
        payload = codec.encode(record)
        handle = self._open_for_append()
        handle.write(len(payload).to_bytes(4, "big"))
        handle.write(_frame_checksum(payload))
        handle.write(payload)
        handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def reset(self) -> None:
        """Empty the log (called right after a successful snapshot)."""
        self.close()
        with open(self.path, "wb") as handle:
            handle.write(WAL_MAGIC)

    # -- reading ---------------------------------------------------------------

    def records(self) -> Iterator[Dict[str, Any]]:
        """Yield intact records in order; stop silently at a torn tail."""
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as handle:
            data = handle.read()
        if not data:
            return
        if not data.startswith(WAL_MAGIC):
            raise StoreError("%s is not a Dragoon WAL" % self.path)
        pos = len(WAL_MAGIC)
        while pos + 8 <= len(data):
            length = int.from_bytes(data[pos : pos + 4], "big")
            checksum = data[pos + 4 : pos + 8]
            start = pos + 8
            end = start + length
            if end > len(data):
                return  # torn tail: the crash interrupted this append
            payload = data[start:end]
            if _frame_checksum(payload) != checksum:
                return  # corrupted tail record
            yield codec.decode(payload)
            pos = end

    def __len__(self) -> int:
        return sum(1 for _ in self.records())


# ---------------------------------------------------------------------------
# Per-block effect records
# ---------------------------------------------------------------------------


class StateBaseline:
    """What the chain looked like after the previous sealed block.

    The differ compares the live chain against this to produce one
    block's physical effect record, then refreshes.  Captures are
    proportional to live state and taken once per block, which a
    simulation chain easily affords.  Contract storage is captured with
    :func:`~repro.chain.contract.snapshot_storage` (deep over mutable
    containers): a shallow ``dict(storage)`` would alias a stored list
    or dict mutated in place, making it compare equal to itself and
    vanish from the WAL delta.
    """

    def __init__(self, chain: Chain) -> None:
        self.capture(chain)

    def capture(self, chain: Chain) -> None:
        self.ledger_balances = dict(chain.ledger._balances)
        self.ledger_escrow = dict(chain.ledger._escrow)
        self.ledger_fees = chain.ledger._fees_collected
        self.ledger_entry_count = len(chain.ledger._entries)
        self.gas_by_sender = dict(chain.gas_by_sender)
        self.contract_names = list(chain._contracts)
        self.contract_storage = {
            name: snapshot_storage(contract.storage)
            for name, contract in chain._contracts.items()
        }
        self.registry_size = len(chain.registry)


def runtime_state() -> Dict[str, Any]:
    """The process-global counters a resumed run must continue from."""
    return {
        "nonce_position": nonce_position(),
        "rng": entropy.save_state(),
    }


def block_record(
    chain: Chain,
    block: Block,
    baseline: StateBaseline,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One WAL record: the block plus everything it changed.

    ``extra`` carries facade-level durable state (e.g.
    :meth:`repro.dragoon.Dragoon.node_state` — requester keys and the
    task-name serial) so a crash between snapshots loses none of it:
    recovery takes the last journalled value, not the snapshot's."""
    ledger = chain.ledger
    balance_sets = {
        address: balance
        for address, balance in ledger._balances.items()
        if baseline.ledger_balances.get(address) != balance
    }
    escrow_sets = {
        address: held
        for address, held in ledger._escrow.items()
        if baseline.ledger_escrow.get(address) != held
    }
    gas_sets = {
        address: gas
        for address, gas in chain.gas_by_sender.items()
        if baseline.gas_by_sender.get(address) != gas
    }
    new_contracts = [
        {"type": type(chain._contracts[name]).__name__, "name": name}
        for name in chain._contracts
        if name not in baseline.contract_storage
    ]
    storage_deltas: Dict[str, Dict[str, Any]] = {}
    for name, contract in chain._contracts.items():
        before = baseline.contract_storage.get(name, {})
        sets = {
            key: value
            for key, value in contract.storage.items()
            if key not in before or before[key] != value
        }
        dels = [key for key in before if key not in contract.storage]
        if sets or dels:
            storage_deltas[name] = {"set": sets, "del": dels}
    new_entries = [
        codec.ledger_entry_to_data(entry)
        for entry in chain.ledger._entries[baseline.ledger_entry_count :]
    ]
    new_registrations = list(chain.registry)[baseline.registry_size :]
    record: Dict[str, Any] = {
        "kind": "block",
        "schema": codec.SCHEMA_VERSION,
        "block": codec.block_to_data(block),
        "period": chain.clock.period,
        "event_base": chain.event_log.pruned,
        "ledger": {
            "balances": balance_sets,
            "escrow": escrow_sets,
            "fees": ledger._fees_collected,
            "entries": new_entries,
        },
        "contracts": {"new": new_contracts, "storage": storage_deltas},
        "gas": gas_sets,
        "registry": new_registrations,
        "runtime": runtime_state(),
    }
    if extra is not None:
        record["extra"] = extra
    return record


def prune_record(chain: Chain) -> Dict[str, Any]:
    """Journal an event-log compaction so it survives a crash."""
    return {
        "kind": "prune",
        "schema": codec.SCHEMA_VERSION,
        "event_base": chain.event_log.pruned,
    }


def apply_record(chain: Chain, record: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """Replay one WAL record onto ``chain``; returns its runtime state
    (for the last-record-wins restore of the global counters)."""
    if record.get("schema") != codec.SCHEMA_VERSION:
        raise StoreError(
            "WAL record schema %r (this build reads %d)"
            % (record.get("schema"), codec.SCHEMA_VERSION)
        )
    kind = record["kind"]
    if kind == "prune":
        chain.event_log.prune(through=record["event_base"])
        return None
    if kind != "block":
        raise StoreError("unknown WAL record kind %r" % (kind,))

    block = codec.block_from_data(record["block"])
    if block.number != chain.height:
        raise StoreError(
            "WAL block #%d cannot extend a chain at height %d"
            % (block.number, chain.height)
        )
    # Compaction that happened between the previous block and this one.
    if record["event_base"] > chain.event_log.pruned:
        chain.event_log.prune(through=record["event_base"])
    for address in record["registry"]:
        chain.registry._granted[address.value] = address
    for item in record["contracts"]["new"]:
        contract = codec.CONTRACT_TYPES[item["type"]](item["name"])
        chain._contracts[contract.name] = contract
    for name, delta in record["contracts"]["storage"].items():
        storage = chain._contracts[name].storage
        storage.update(delta["set"])
        for key in delta["del"]:
            storage.pop(key, None)
    ledger = chain.ledger
    ledger._balances.update(record["ledger"]["balances"])
    ledger._escrow.update(record["ledger"]["escrow"])
    ledger._fees_collected = record["ledger"]["fees"]
    for item in record["ledger"]["entries"]:
        ledger._entries.append(codec.ledger_entry_from_data(item))
    chain.gas_by_sender.update(record["gas"])
    chain.blocks.append(block)
    # Re-log the block's events exactly as execution did: successful
    # receipts only, in receipt order, attributed to this block.
    for receipt in block.receipts:
        if receipt.status:
            for event in receipt.events:
                chain.event_log.append(block.number, event)
    chain.clock._period = record["period"]
    return record["runtime"]


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------


def save_snapshot(
    path: str, chain: Chain, extra: Optional[Dict[str, Any]] = None
) -> bytes:
    """Atomically write the full canonical state; returns its root.

    The envelope carries two digests since schema v2: ``state_root`` is
    the Merkle trie root (what headers, checkpoints, and light clients
    compare against) and ``encoding_hash`` pins the exact bytes of the
    canonical encoding stored in this file (the on-disk integrity
    check ``load_snapshot`` verifies before decoding).
    """
    state = codec.chain_state_to_data(chain)
    encoded_state = codec.encode(state)
    root = codec.state_root(chain)
    blob = SNAPSHOT_MAGIC + codec.encode(
        {
            "schema": codec.SCHEMA_VERSION,
            "state_root": root,
            "encoding_hash": keccak256(encoded_state),
            "height": chain.height,
            "runtime": runtime_state(),
            "extra": extra or {},
            "state": encoded_state,
        }
    )
    atomic_write(path, blob)
    return root


def load_snapshot(path: str) -> Tuple[Chain, Dict[str, Any]]:
    """Load and integrity-check a snapshot; returns ``(chain, meta)``
    where meta carries ``state_root``, ``runtime``, and ``extra``."""
    with open(path, "rb") as handle:
        blob = handle.read()
    if not blob.startswith(SNAPSHOT_MAGIC):
        raise StoreError("%s is not a Dragoon snapshot" % path)
    envelope = codec.decode(blob[len(SNAPSHOT_MAGIC) :])
    if envelope["schema"] != codec.SCHEMA_VERSION:
        raise StoreError(
            "snapshot schema %r (this build reads %d)"
            % (envelope["schema"], codec.SCHEMA_VERSION)
        )
    encoded_state = envelope["state"]
    if keccak256(encoded_state) != envelope["encoding_hash"]:
        raise StoreError("snapshot %s fails its encoding_hash check" % path)
    chain = codec.decode_chain_state(encoded_state)
    meta = {
        "state_root": envelope["state_root"],
        "height": envelope["height"],
        "runtime": envelope["runtime"],
        "extra": envelope["extra"],
    }
    return chain, meta
