"""The node state directory: snapshots + WAL + checkpoints, managed.

A :class:`NodeStore` owns one on-disk state directory::

    state-dir/
      MANIFEST.json            # schema, latest snapshot, state_root hex
      wal.log                  # per-block effect records since the snapshot
      snapshots/snapshot-00000042.bin
      checkpoints/checkpoint-00000010.pkl   # sim continuations (optional)

Three usage modes, layered:

* **Journal** — ``chain.attach_store(store)`` makes every sealed block
  durable: the chain calls :meth:`on_block` after each mined or
  deployment block and the store appends one WAL record.  A crash loses
  at most the un-sealed tail of the current block.
* **Snapshot** — :meth:`save` writes the full canonical state (through
  :mod:`repro.store.codec`), records its ``state_root`` in the
  manifest, and resets the WAL; :meth:`load` is the reverse — snapshot
  plus WAL replay, with integrity checks at both layers.  This is the
  ``node init`` / ``node status`` / ``serve --state-dir`` story: a
  marketplace instance that lives across CLI invocations.
* **Checkpoint** — :meth:`checkpoint` additionally pickles a live
  *continuation* (the client-side object graph of a running
  simulation: sessions, population, arrival process, collector) next
  to the snapshot, and :meth:`load_checkpoint` verifies the pickled
  chain against the manifest ``state_root`` before handing it back.
  The canonical layer carries node state; the pickle carries client
  state — the split mirrors a real deployment, where a node can always
  recover from disk but clients keep their own secrets and cursors.

The checkpoint/resume contract (pinned by ``tests/test_persistence.py``)
is byte-for-byte: resuming a seeded scenario mid-stream yields the same
``SimulationReport`` — gas included — and the same final ``state_root``
as the uninterrupted run.
"""

from __future__ import annotations

import json
import os
import pickle
from typing import Any, Dict, List, Optional, Tuple

from repro.chain.blocks import Block
from repro.chain.chain import Chain
from repro.chain.transactions import set_nonce_position
from repro.store import codec
from repro.store.blockstore import (
    BlockStore,
    StateBaseline,
    StoreError,
    apply_record,
    atomic_write,
    block_record,
    load_snapshot,
    prune_record,
    runtime_state,
    save_snapshot,
)

MANIFEST_NAME = "MANIFEST.json"
WAL_NAME = "wal.log"
SNAPSHOT_DIR = "snapshots"
CHECKPOINT_DIR = "checkpoints"


class NodeStore:
    """Durable state for one node, rooted at ``state_dir``."""

    def __init__(self, state_dir: str) -> None:
        self.state_dir = state_dir
        self.wal = BlockStore(os.path.join(state_dir, WAL_NAME))
        self._baseline: Optional[StateBaseline] = None
        #: Optional zero-arg callable returning facade-level durable
        #: state to ride along with every WAL record and snapshot
        #: (wired by :meth:`repro.dragoon.Dragoon.attach_store`).
        self.extra_provider = None

    def _extra(self) -> Optional[Dict[str, Any]]:
        return self.extra_provider() if self.extra_provider is not None else None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def exists(cls, state_dir: str) -> bool:
        return os.path.exists(os.path.join(state_dir, MANIFEST_NAME))

    @classmethod
    def init(
        cls,
        state_dir: str,
        chain: Optional[Chain] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> "NodeStore":
        """Create a fresh state directory around ``chain`` (or genesis)."""
        if cls.exists(state_dir):
            raise StoreError("state directory already initialized: %s" % state_dir)
        os.makedirs(os.path.join(state_dir, SNAPSHOT_DIR), exist_ok=True)
        os.makedirs(os.path.join(state_dir, CHECKPOINT_DIR), exist_ok=True)
        store = cls(state_dir)
        store.save(chain if chain is not None else Chain(), extra=extra)
        return store

    @classmethod
    def open(cls, state_dir: str) -> "NodeStore":
        """Open an existing state directory (raises if uninitialized)."""
        if not cls.exists(state_dir):
            raise StoreError(
                "no node state at %s (run `node init` first)" % state_dir
            )
        return cls(state_dir)

    def _manifest_path(self) -> str:
        return os.path.join(self.state_dir, MANIFEST_NAME)

    def manifest(self) -> Dict[str, Any]:
        with open(self._manifest_path(), "r", encoding="utf-8") as handle:
            return json.load(handle)

    def _write_manifest(self, manifest: Dict[str, Any]) -> None:
        atomic_write(
            self._manifest_path(),
            (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode(
                "utf-8"
            ),
        )

    # ------------------------------------------------------------------
    # Journalling (Chain.attach_store hooks)
    # ------------------------------------------------------------------

    def on_attach(self, chain: Chain) -> None:
        """Baseline the state so the next sealed block diffs cleanly."""
        self._baseline = StateBaseline(chain)

    def on_block(self, chain: Chain, block: Block) -> None:
        """Journal one sealed block's effects (called by the chain)."""
        if self._baseline is None:
            self._baseline = StateBaseline(chain)
            raise StoreError(
                "store received a block without a baseline — call "
                "chain.attach_store(store) before mining"
            )
        self.wal.append(
            block_record(chain, block, self._baseline, extra=self._extra())
        )
        self._baseline.capture(chain)

    def note_prune(self, chain: Chain) -> None:
        """Journal an event-log compaction the moment it happens, so the
        on-disk log is compacted even if the node crashes before the
        next block."""
        self.wal.append(prune_record(chain))

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def _snapshot_path(self, height: int) -> str:
        return os.path.join(
            self.state_dir, SNAPSHOT_DIR, "snapshot-%08d.bin" % height
        )

    def save(self, chain: Chain, extra: Optional[Dict[str, Any]] = None) -> bytes:
        """Snapshot the full state, reset the WAL; returns the root.

        ``extra`` defaults to the attached :attr:`extra_provider`'s
        current value, so facade state never silently goes stale."""
        if extra is None:
            extra = self._extra()
        os.makedirs(os.path.join(self.state_dir, SNAPSHOT_DIR), exist_ok=True)
        path = self._snapshot_path(chain.height)
        root = save_snapshot(path, chain, extra=extra)
        manifest = {
            "schema": codec.SCHEMA_VERSION,
            "height": chain.height,
            "state_root": root.hex(),
            "snapshot": os.path.join(SNAPSHOT_DIR, os.path.basename(path)),
            "wal": WAL_NAME,
            "checkpoints": self.manifest().get("checkpoints", [])
            if self.exists(self.state_dir)
            else [],
        }
        self._write_manifest(manifest)
        self.wal.reset()
        self._collect_snapshots(manifest)
        if self._baseline is not None:
            self._baseline.capture(chain)
        return root

    def _collect_snapshots(self, manifest: Dict[str, Any]) -> None:
        """Unlink superseded snapshot files.

        Every save writes a full-state snapshot; without collection a
        long checkpointed run accumulates O(blocks/N) snapshots of
        O(blocks) size each.  Only the manifest's current snapshot and
        those at checkpoint heights are live (resume re-aligns through
        them); everything else is dead weight."""
        keep = {os.path.basename(manifest["snapshot"])}
        for entry in manifest.get("checkpoints", []):
            keep.add(os.path.basename(self._snapshot_path(entry["height"])))
        snapshot_dir = os.path.join(self.state_dir, SNAPSHOT_DIR)
        for name in os.listdir(snapshot_dir):
            if name.startswith("snapshot-") and name not in keep:
                os.unlink(os.path.join(snapshot_dir, name))

    def load(self, apply_runtime: bool = False) -> Tuple[Chain, Dict[str, Any]]:
        """Snapshot + WAL replay → a live chain and its runtime meta.

        ``meta["runtime"]`` is the last journalled position of the
        process-global counters (transaction nonces, deterministic
        entropy); with ``apply_runtime=True`` the nonce counter is
        fast-forwarded immediately (entropy is only restored inside a
        ``deterministic_entropy`` scope — the caller owns that choice).
        """
        manifest = self.manifest()
        if manifest["schema"] != codec.SCHEMA_VERSION:
            raise StoreError(
                "manifest schema %r (this build reads %d)"
                % (manifest["schema"], codec.SCHEMA_VERSION)
            )
        chain, meta = load_snapshot(
            os.path.join(self.state_dir, manifest["snapshot"])
        )
        if meta["state_root"].hex() != manifest["state_root"]:
            raise StoreError(
                "manifest and snapshot disagree on state_root — "
                "the state directory is inconsistent"
            )
        runtime = meta["runtime"]
        extra = meta["extra"]
        replayed = 0
        for record in self.wal.records():
            if (
                record.get("kind") == "block"
                and record["block"]["number"] < chain.height
            ):
                # Stale: journalled before a snapshot that already
                # contains this block's effects.  save() publishes the
                # manifest *before* resetting the WAL, so a crash in
                # that window legitimately leaves these behind; the
                # snapshot's runtime/extra are newer than theirs.
                continue
            record_runtime = apply_record(chain, record)
            if record_runtime is not None:
                runtime = record_runtime
                extra = record.get("extra", extra)
            replayed += 1
        meta["runtime"] = runtime
        meta["extra"] = extra
        meta["replayed"] = replayed
        meta["height"] = chain.height
        meta["state_root"] = codec.state_root(chain)
        if apply_runtime:
            set_nonce_position(runtime["nonce_position"])
        return chain, meta

    def status(self) -> Dict[str, Any]:
        """What `node status` prints: manifest plus replay-derived facts."""
        manifest = self.manifest()
        chain, meta = self.load()
        return {
            "state_dir": self.state_dir,
            "snapshot_height": manifest["height"],
            "height": chain.height,
            "wal_records": meta["replayed"],
            "state_root": meta["state_root"].hex(),
            "accounts": len(chain.registry),
            "contracts": len(chain._contracts),
            "events": len(chain.event_log),
            "events_pruned": chain.event_log.pruned,
            "total_gas": chain.total_gas,
            "checkpoints": [
                entry["step"] for entry in manifest.get("checkpoints", [])
            ],
        }

    # ------------------------------------------------------------------
    # Simulation checkpoints (continuation blobs)
    # ------------------------------------------------------------------

    def _checkpoint_path(self, step: int) -> str:
        return os.path.join(
            self.state_dir, CHECKPOINT_DIR, "checkpoint-%08d.pkl" % step
        )

    def checkpoint(self, chain: Chain, step: int, payload: Dict[str, Any]) -> bytes:
        """Persist a resumable continuation at engine step ``step``.

        Writes the canonical snapshot first (node-level durability),
        then the pickled continuation, then records both in the
        manifest — so a torn checkpoint is detectable and an older
        intact one stays usable.
        """
        root = self.save(chain)
        os.makedirs(os.path.join(self.state_dir, CHECKPOINT_DIR), exist_ok=True)
        path = self._checkpoint_path(step)
        atomic_write(
            path,
            pickle.dumps(
                {"step": step, "runtime": runtime_state(), "payload": payload},
                protocol=pickle.HIGHEST_PROTOCOL,
            ),
        )
        manifest = self.manifest()
        checkpoints: List[Dict[str, Any]] = [
            entry
            for entry in manifest.get("checkpoints", [])
            if entry["step"] != step
        ]
        checkpoints.append(
            {
                "step": step,
                "file": os.path.join(CHECKPOINT_DIR, os.path.basename(path)),
                "state_root": root.hex(),
                "height": chain.height,
            }
        )
        manifest["checkpoints"] = sorted(checkpoints, key=lambda e: e["step"])
        self._write_manifest(manifest)
        return root

    def load_checkpoint(
        self, step: Optional[int] = None
    ) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        """The continuation at ``step`` (default: latest), verified.

        Returns ``(envelope, entry)`` where the envelope carries
        ``step``/``runtime``/``payload`` and the entry is the manifest
        record.  The pickled chain must hash to the recorded
        ``state_root`` — a continuation that disagrees with the
        canonical layer is refused.
        """
        manifest = self.manifest()
        checkpoints = manifest.get("checkpoints", [])
        if not checkpoints:
            raise StoreError("no checkpoints in %s" % self.state_dir)
        if step is None:
            entry = checkpoints[-1]
        else:
            matches = [e for e in checkpoints if e["step"] == step]
            if not matches:
                raise StoreError(
                    "no checkpoint at step %d (have: %s)"
                    % (step, ", ".join(str(e["step"]) for e in checkpoints))
                )
            entry = matches[0]
        with open(os.path.join(self.state_dir, entry["file"]), "rb") as handle:
            envelope = pickle.load(handle)
        chain = envelope["payload"]["chain"]
        root = codec.state_root(chain)
        if root.hex() != entry["state_root"]:
            raise StoreError(
                "checkpoint at step %d fails its state_root check"
                % envelope["step"]
            )
        return envelope, entry
