"""Merkleized chain state: an incremental keccak trie, proofs, headers.

``state_root`` used to be ``keccak256(encode_chain_state(chain))`` — a
flat hash over the full canonical encoding, recomputed from scratch on
every call.  That shape makes per-block roots unaffordable (the whole
history re-encodes and re-hashes each time) and gives clients nothing
to verify *against*: a balance answer from an untrusted node is just a
number.

This module replaces the flat hash with a commitment scheme in three
layers:

* :class:`MerkleTrie` — a path-compressed binary PATRICIA trie keyed by
  ``keccak256(key)`` bit paths, with per-node hash caching.  Updating a
  key re-hashes only the dirty root-to-leaf path (O(log n) expected),
  and the structure is canonical: any insertion/deletion order over the
  same key set reaches the same root.
* :class:`ChainStateTrie` — the incremental tracker a
  :class:`~repro.chain.chain.Chain` carries.  It namespaces the *whole*
  durable state (ledger accounts and escrow, contract storage, the
  worker registry, gas tallies, blocks, ledger entries, the event log
  and its prune base, clock/scheduler metadata) into trie keys whose
  values are codec-TLV encodings, and diff-syncs against the live chain
  on every :meth:`root` read — so ``state_root`` stays correct through
  out-of-block mutations (``tx_register``, ``node_prune``) while
  repeated reads on an unchanged chain cost one dict scan, not a
  re-encode of history.
* :class:`Header` — the light-client anchor: a hash-chained
  ``(height, parent, block_hash, state_root)`` record appended per
  sealed block (and per out-of-block root change) when a node fronts
  the chain.  :func:`verify_proof` checks a membership or
  non-membership proof from ``repro.lightclient`` against a header's
  ``state_root`` with no other trust.

Every leaf value is a single canonical :mod:`repro.store.codec`
encoding; bulky append-only history (blocks, pruned-log event records)
enters as 32-byte keccak digests of its canonical encoding, so the
root still commits to every byte of history without the trie storing
it twice.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.chain.blocks import GENESIS_HASH
from repro.crypto.keccak import keccak256
from repro.errors import ReproError
from repro.obs import registry as _obs
from repro.store import codec

_TRIE_SYNCS = _obs.REGISTRY.counter(
    "state_trie_syncs_total",
    "Diff-sync passes reconciling the state trie with its live chain",
)
_TRIE_UPDATES = _obs.REGISTRY.counter(
    "state_trie_updates_total",
    "Keys written to or deleted from the state trie, by operation",
    labelnames=("op",),
)
_TRIE_HASHES = _obs.REGISTRY.counter(
    "state_trie_node_hashes_total",
    "Trie node hashes recomputed (dirty-path cache misses)",
)
_TRIE_PROOFS = _obs.REGISTRY.counter(
    "state_trie_proofs_total",
    "Membership/non-membership proofs produced by the state trie",
)

#: Domain-separation tags for node preimages: a leaf can never be
#: confused with an interior node or a header.
_LEAF_TAG = b"\x00"
_NODE_TAG = b"\x01"
_HEADER_TAG = b"\x02"

#: The root of a trie holding no keys (a fresh genesis chain still has
#: metadata keys, so this only appears for a literally empty trie).
EMPTY_ROOT = keccak256(b"dragoon/state-trie/empty")

#: ``parent`` of the first header a node mints (its trust anchor).
HEADER_GENESIS = b"\x00" * 32


class ProofError(ReproError):
    """A state proof is malformed or does not reconstruct its root."""


# ---------------------------------------------------------------------------
# The trie
# ---------------------------------------------------------------------------


class _Leaf:
    __slots__ = ("path", "value", "hash")

    def __init__(self, path: int, value: bytes) -> None:
        self.path = path
        self.value = value
        self.hash: Optional[bytes] = None


class _Branch:
    __slots__ = ("bit", "left", "right", "hash")

    def __init__(self, bit: int, left: Any, right: Any) -> None:
        self.bit = bit
        self.left = left
        self.right = right
        self.hash: Optional[bytes] = None


def path_of(key: bytes) -> int:
    """The 256-bit trie path of a key: ``keccak256(key)`` as an int.

    Hashing the key balances the trie (expected depth ~log2 n whatever
    the key distribution) and fixes every path at 256 bits, which is
    what makes non-membership a terminating descent.
    """
    return int.from_bytes(keccak256(key), "big")


def _path_bit(path: int, bit: int) -> int:
    return (path >> (255 - bit)) & 1


class MerkleTrie:
    """A path-compressed binary trie with cached keccak node hashes.

    PATRICIA shape: an interior node stores the first bit position at
    which its two subtrees diverge; every key under a node agrees on
    all earlier bits, so n keys cost exactly n-1 interior nodes and the
    structure (hence the root) is a pure function of the key/value set.
    Mutations clear cached hashes along the touched root-to-leaf path
    only; :meth:`root` recomputes just those.
    """

    __slots__ = ("_root", "_count", "hash_computes")

    def __init__(self) -> None:
        self._root: Any = None
        self._count = 0
        #: Lifetime count of node-hash recomputations (cache misses).
        self.hash_computes = 0

    def __len__(self) -> int:
        return self._count

    def get(self, key: bytes) -> Optional[bytes]:
        path = path_of(key)
        node = self._root
        while isinstance(node, _Branch):
            node = node.right if _path_bit(path, node.bit) else node.left
        if isinstance(node, _Leaf) and node.path == path:
            return node.value
        return None

    def set(self, key: bytes, value: bytes) -> None:
        if not isinstance(value, bytes):
            raise ProofError("trie values must be bytes")
        path = path_of(key)
        node = self._root
        if node is None:
            self._root = _Leaf(path, value)
            self._count = 1
            return
        stack: List[_Branch] = []
        while isinstance(node, _Branch):
            stack.append(node)
            node = node.right if _path_bit(path, node.bit) else node.left
        if node.path == path:
            if node.value != value:
                node.value = value
                node.hash = None
                for branch in stack:
                    branch.hash = None
            return
        # First bit (from the MSB) where the new path leaves the leaf
        # we reached; the new branch belongs exactly there.
        diverge = 256 - (node.path ^ path).bit_length()
        leaf = _Leaf(path, value)
        parent: Optional[_Branch] = None
        node = self._root
        while isinstance(node, _Branch) and node.bit < diverge:
            node.hash = None
            parent = node
            node = node.right if _path_bit(path, node.bit) else node.left
        if _path_bit(path, diverge):
            branch = _Branch(diverge, node, leaf)
        else:
            branch = _Branch(diverge, leaf, node)
        if parent is None:
            self._root = branch
        elif _path_bit(path, parent.bit):
            parent.right = branch
        else:
            parent.left = branch
        self._count += 1

    def delete(self, key: bytes) -> bool:
        path = path_of(key)
        node = self._root
        if node is None:
            return False
        stack: List[_Branch] = []
        while isinstance(node, _Branch):
            stack.append(node)
            node = node.right if _path_bit(path, node.bit) else node.left
        if node.path != path:
            return False
        if not stack:
            self._root = None
            self._count = 0
            return True
        # The deleted leaf's parent collapses into its other subtree
        # (path compression restores itself, keeping the shape — and
        # the root — canonical for the remaining key set).
        parent = stack[-1]
        sibling = parent.left if _path_bit(path, parent.bit) else parent.right
        if len(stack) == 1:
            self._root = sibling
        else:
            grand = stack[-2]
            if _path_bit(path, grand.bit):
                grand.right = sibling
            else:
                grand.left = sibling
        for branch in stack[:-1]:
            branch.hash = None
        self._count -= 1
        return True

    def root(self) -> bytes:
        if self._root is None:
            return EMPTY_ROOT
        return self._hash(self._root)

    def _hash(self, node: Any) -> bytes:
        cached = node.hash
        if cached is not None:
            return cached
        if isinstance(node, _Leaf):
            digest = keccak256(
                _LEAF_TAG + node.path.to_bytes(32, "big") + keccak256(node.value)
            )
        else:
            digest = keccak256(
                _NODE_TAG
                + node.bit.to_bytes(2, "big")
                + self._hash(node.left)
                + self._hash(node.right)
            )
        node.hash = digest
        self.hash_computes += 1
        return digest

    def prove(self, key: bytes) -> Dict[str, Any]:
        """A membership or non-membership proof for ``key``.

        The proof is plain codec-encodable data: the branch steps from
        the root down the key's path (``[bit, direction, sibling_hash]``
        each), plus the terminal leaf.  If the terminal leaf is the
        key's own, ``value`` carries its bytes (membership); otherwise
        ``value`` is ``None`` and the mismatching leaf's path/digest
        demonstrate absence (the descent *would* have found the key).
        """
        self.root()  # populate every hash cache along the way
        path = path_of(key)
        node = self._root
        if node is None:
            return {"steps": [], "leaf_path": None, "leaf_digest": None,
                    "value": None}
        steps: List[List[Any]] = []
        while isinstance(node, _Branch):
            direction = _path_bit(path, node.bit)
            sibling = node.left if direction else node.right
            steps.append([node.bit, direction, self._hash(sibling)])
            node = node.right if direction else node.left
        return {
            "steps": steps,
            "leaf_path": node.path.to_bytes(32, "big"),
            "leaf_digest": keccak256(node.value),
            "value": node.value if node.path == path else None,
        }


def verify_proof(
    root: bytes, key: bytes, proof: Any
) -> Tuple[bool, Optional[bytes]]:
    """Check a proof against ``root``; returns ``(present, value)``.

    Raises :class:`ProofError` on anything other than a well-formed
    proof that reconstructs ``root`` exactly: wrong shapes, steps out
    of order, steps that deviate from the key's own bit path, a
    membership leaf that is not the key's, or a final hash mismatch.
    Soundness rests on keccak collision resistance: the only step
    chains that fold to the true root are the trie's actual nodes, and
    descending the actual trie by the key's bits terminates at the
    key's leaf iff the key is present.
    """
    if not isinstance(root, bytes) or len(root) != 32:
        raise ProofError("root must be 32 bytes")
    if not isinstance(key, bytes):
        raise ProofError("key must be bytes")
    if not isinstance(proof, dict) or set(proof) != {
        "steps", "leaf_path", "leaf_digest", "value",
    }:
        raise ProofError("proof must carry steps/leaf_path/leaf_digest/value")
    steps = proof["steps"]
    leaf_path = proof["leaf_path"]
    leaf_digest = proof["leaf_digest"]
    value = proof["value"]
    if not isinstance(steps, list):
        raise ProofError("proof steps must be a list")
    key_path = keccak256(key)
    if leaf_path is None:
        if steps or leaf_digest is not None or value is not None:
            raise ProofError("an empty-trie proof carries nothing else")
        if root != EMPTY_ROOT:
            raise ProofError("empty-trie proof against a non-empty root")
        return False, None
    if not isinstance(leaf_path, bytes) or len(leaf_path) != 32:
        raise ProofError("leaf_path must be 32 bytes")
    if not isinstance(leaf_digest, bytes) or len(leaf_digest) != 32:
        raise ProofError("leaf_digest must be 32 bytes")
    if value is not None:
        if not isinstance(value, bytes):
            raise ProofError("value must be bytes")
        if leaf_path != key_path:
            raise ProofError(
                "membership proof must terminate at the key's own leaf"
            )
        if keccak256(value) != leaf_digest:
            raise ProofError("leaf digest disagrees with the claimed value")
        present = True
    else:
        if leaf_path == key_path:
            raise ProofError(
                "non-membership proof terminates at the key's own leaf"
            )
        present = False
    acc = keccak256(_LEAF_TAG + leaf_path + leaf_digest)
    path_int = int.from_bytes(key_path, "big")
    last_bit = -1
    parsed: List[Tuple[int, int, bytes]] = []
    for step in steps:
        if not isinstance(step, (list, tuple)) or len(step) != 3:
            raise ProofError("each step must be [bit, direction, sibling]")
        bit, direction, sibling = step
        if type(bit) is not int or not 0 <= bit < 256:
            raise ProofError("step bit must be an int in 0..255")
        if direction not in (0, 1):
            raise ProofError("step direction must be 0 or 1")
        if not isinstance(sibling, bytes) or len(sibling) != 32:
            raise ProofError("step sibling must be 32 bytes")
        if bit <= last_bit:
            raise ProofError("branch bits must strictly increase downward")
        last_bit = bit
        if direction != _path_bit(path_int, bit):
            raise ProofError("proof path deviates from the key's bit path")
        parsed.append((bit, direction, sibling))
    for bit, direction, sibling in reversed(parsed):
        if direction:
            acc = keccak256(_NODE_TAG + bit.to_bytes(2, "big") + sibling + acc)
        else:
            acc = keccak256(_NODE_TAG + bit.to_bytes(2, "big") + acc + sibling)
    if acc != root:
        raise ProofError("proof does not reconstruct the state root")
    return present, value


# ---------------------------------------------------------------------------
# Headers (the light-client anchor)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Header:
    """One link of the hash-chained commitment timeline a node serves.

    ``parent`` is the previous *header's* hash (``HEADER_GENESIS`` for
    a node's anchor), ``block_hash`` the latest sealed block at that
    point, and ``state_root`` the trie root the header commits to.  A
    light client that trusts one header hash can verify every later
    header by chaining, and every state fact by proof.
    """

    height: int
    parent: bytes
    block_hash: bytes
    state_root: bytes

    def header_hash(self) -> bytes:
        return keccak256(
            _HEADER_TAG
            + self.height.to_bytes(8, "big")
            + self.parent
            + self.block_hash
            + self.state_root
        )


def header_to_data(header: Header) -> Dict[str, Any]:
    return {
        "height": header.height,
        "parent": header.parent,
        "block_hash": header.block_hash,
        "state_root": header.state_root,
    }


def header_from_data(data: Any) -> Header:
    if not isinstance(data, dict):
        raise ProofError("header must decode to an object")
    try:
        header = Header(
            height=data["height"],
            parent=data["parent"],
            block_hash=data["block_hash"],
            state_root=data["state_root"],
        )
    except KeyError as exc:
        raise ProofError("header is missing field %s" % exc) from None
    if type(header.height) is not int or header.height < 0:
        raise ProofError("header height must be a non-negative int")
    for field in ("parent", "block_hash", "state_root"):
        raw = getattr(header, field)
        if not isinstance(raw, bytes) or len(raw) != 32:
            raise ProofError("header %s must be 32 bytes" % field)
    return header


# ---------------------------------------------------------------------------
# Key namespacing over chain state
# ---------------------------------------------------------------------------


def meta_key(name: str) -> bytes:
    """Scalar chain metadata: schema, period, scheduler, fees, event_base."""
    return b"meta/" + name.encode("utf-8")


def account_key(address) -> bytes:
    """Ledger balance of one account (value: ``(label, balance)``)."""
    return b"account/" + address.value


def escrow_key(address) -> bytes:
    """Escrow held by one contract address (value: ``(label, held)``)."""
    return b"escrow/" + address.value


def gas_key(address) -> bytes:
    """Cumulative gas charged to one sender (value: ``(label, gas)``)."""
    return b"gas/" + address.value


def registry_key(address) -> bytes:
    """Identity grant for one address (value: its label)."""
    return b"registry/" + address.value


def contract_key(name: str) -> bytes:
    """Existence + type of one deployed contract (value: type name)."""
    return b"contract/" + name.encode("utf-8")


def storage_key(name: str, slot: str) -> bytes:
    """One contract storage slot (value: the slot's codec encoding).

    The ``(name, slot)`` pair is TLV-encoded so a contract name cannot
    smuggle a separator and collide with another contract's slot.
    """
    return b"storage/" + codec.encode((name, slot))


def block_key(number: int) -> bytes:
    """One sealed block (value: keccak digest of its canonical encoding)."""
    return b"block/" + number.to_bytes(8, "big")


def entry_key(index: int) -> bytes:
    """One ledger journal entry (value: its full canonical encoding) —
    settlement receipts stay provable inline."""
    return b"entry/" + index.to_bytes(8, "big")


def event_key(sequence: int) -> bytes:
    """One retained event-log record (value: digest of its encoding)."""
    return b"event/" + sequence.to_bytes(8, "big")


def block_leaf_value(block) -> bytes:
    return codec.encode(keccak256(codec.encode(codec.block_to_data(block))))


def entry_leaf_value(entry) -> bytes:
    return codec.encode(codec.ledger_entry_to_data(entry))


def event_leaf_value(record) -> bytes:
    return codec.encode(
        keccak256(
            codec.encode(
                {
                    "sequence": record.sequence,
                    "block": record.block_number,
                    "event": codec.event_to_data(record.event),
                }
            )
        )
    )


def live_items(chain) -> Dict[bytes, bytes]:
    """The current encoded value of every *live* (mutable-in-place) key.

    Everything here can change or disappear between blocks — balances,
    escrow, gas, registry grants, contract storage, scalar metadata —
    so the tracker diffs this mapping on every sync.  Append-only
    history (blocks, ledger entries, event records) is handled by
    counters instead and never re-encoded.

    Diffing *encodings* rather than objects is deliberate: a storage
    value mutated in place compares equal to a stale reference of
    itself, but never to its previous bytes.
    """
    scheduler_kind = type(chain.scheduler).__name__
    if scheduler_kind not in codec._SCHEDULER_TYPES:
        raise codec.CodecError(
            "scheduler %s holds live callbacks and cannot be persisted"
            % scheduler_kind
        )
    encode = codec.encode
    items: Dict[bytes, bytes] = {
        meta_key("schema"): encode(codec.SCHEMA_VERSION),
        meta_key("period"): encode(chain.clock.period),
        meta_key("scheduler"): encode(scheduler_kind),
        meta_key("fees"): encode(chain.ledger._fees_collected),
        meta_key("event_base"): encode(chain.event_log.pruned),
    }
    for address in chain.registry:
        items[registry_key(address)] = encode(address.label)
    for address, balance in chain.ledger._balances.items():
        items[account_key(address)] = encode((address.label, balance))
    for address, held in chain.ledger._escrow.items():
        items[escrow_key(address)] = encode((address.label, held))
    for address, gas in chain.gas_by_sender.items():
        items[gas_key(address)] = encode((address.label, gas))
    for name, contract in chain._contracts.items():
        items[contract_key(name)] = encode(type(contract).__name__)
        for slot, value in contract.storage.items():
            items[storage_key(name, slot)] = encode(value)
    return items


# ---------------------------------------------------------------------------
# The incremental tracker
# ---------------------------------------------------------------------------


class ChainStateTrie:
    """Keeps a :class:`MerkleTrie` reconciled with one live chain.

    Not pickled: ``Chain.__getstate__`` drops it and a resumed chain
    rebuilds lazily on the first ``root()`` read — the trie root is a
    pure function of chain state, so the rebuild is byte-identical.

    Thread-safe under the RPC node's shared read lock: every public
    method serializes on an internal lock, so concurrent ``get_proof``
    and ``chain_state_root`` reads cannot torn-write the cache.
    """

    def __init__(self) -> None:
        self.trie = MerkleTrie()
        #: Hash-chained commitment timeline (only grown when a node
        #: front-end enables :attr:`track_headers`).
        self.headers: List[Header] = []
        self.track_headers = False
        self._live: Dict[bytes, bytes] = {}
        self._blocks = 0
        self._entries = 0
        self._event_base = 0
        self._event_head = 0
        self._lock = threading.RLock()

    # -- syncing -----------------------------------------------------------

    def root(self, chain) -> bytes:
        with self._lock:
            return self._sync(chain)

    def prove(self, chain, key: bytes) -> Dict[str, Any]:
        with self._lock:
            self._sync(chain)
            proof = self.trie.prove(key)
        _TRIE_PROOFS.inc()
        return proof

    def _sync(self, chain) -> bytes:
        hashed_before = self.trie.hash_computes
        live = live_items(chain)
        sets = 0
        dels = 0
        for key, encoded in live.items():
            if self._live.get(key) != encoded:
                self.trie.set(key, encoded)
                sets += 1
        for key in self._live:
            if key not in live:
                self.trie.delete(key)
                dels += 1
        self._live = live

        blocks = chain.blocks
        for number in range(self._blocks, len(blocks)):
            self.trie.set(block_key(number), block_leaf_value(blocks[number]))
            sets += 1
        self._blocks = len(blocks)

        entries = chain.ledger._entries
        if len(entries) < self._entries:  # defensive: never happens post-tx
            for index in range(len(entries), self._entries):
                self.trie.delete(entry_key(index))
                dels += 1
            self._entries = len(entries)
        for index in range(self._entries, len(entries)):
            self.trie.set(entry_key(index), entry_leaf_value(entries[index]))
            sets += 1
        self._entries = len(entries)

        log = chain.event_log
        base, head = log.pruned, len(log)
        for sequence in range(self._event_base, min(base, self._event_head)):
            self.trie.delete(event_key(sequence))
            dels += 1
        start = max(self._event_head, base)
        if start < head:
            for record in log.iter_since(start):
                self.trie.set(
                    event_key(record.sequence), event_leaf_value(record)
                )
                sets += 1
        self._event_base = base
        self._event_head = head

        root = self.trie.root()
        _TRIE_SYNCS.inc()
        if sets:
            _TRIE_UPDATES.inc(sets, op="set")
        if dels:
            _TRIE_UPDATES.inc(dels, op="delete")
        hashed = self.trie.hash_computes - hashed_before
        if hashed:
            _TRIE_HASHES.inc(hashed)
        return root

    # -- headers -----------------------------------------------------------

    def ensure_header(self, chain) -> Header:
        """The header committing to the chain's *current* root.

        Appends a new link when the root moved since the last header —
        per sealed block via :meth:`on_block`, and for out-of-block
        mutations (account registration, event-log pruning) the moment
        a proof or header is requested, so served proofs always verify
        against a served header.
        """
        with self._lock:
            root = self._sync(chain)
            if not self.headers or self.headers[-1].state_root != root:
                parent = (
                    self.headers[-1].header_hash()
                    if self.headers
                    else HEADER_GENESIS
                )
                block_hash = (
                    chain.blocks[-1].block_hash()
                    if chain.blocks
                    else GENESIS_HASH
                )
                self.headers.append(
                    Header(chain.height, parent, block_hash, root)
                )
            return self.headers[-1]

    def on_block(self, chain, block) -> None:
        """Per-sealed-block hook (wired through ``Chain._notify_store``)."""
        if self.track_headers:
            self.ensure_header(chain)


def chain_state_trie(chain) -> ChainStateTrie:
    """The chain's attached tracker, created lazily on first use."""
    tracker = getattr(chain, "_state_trie", None)
    if tracker is None:
        tracker = ChainStateTrie()
        chain._state_trie = tracker
    return tracker
