"""The canonical node-state codec: every stateful object, one byte form.

Persistence needs two properties pickle cannot give:

* **Determinism** — the same node state must always encode to the same
  bytes, because the 32-byte ``state_root`` (keccak-256 over the
  encoding) is the integrity anchor the whole subsystem hangs off:
  snapshots embed it, ``NodeStore.open`` verifies it, and the
  crash-recovery contract is "snapshot + WAL replay reaches the same
  state_root as the live chain".
* **A versioned schema** — a state directory written by one revision
  must either load or fail loudly under another, never misparse.

The value layer is a tagged, length-prefixed binary form over the plain
Python data the chain state is made of (ints of any size, bytes, str,
bool, None, float, list/tuple, dict in iteration order) plus typed tags
for the domain objects that actually live in chain state: ledger
:class:`~repro.ledger.accounts.Address`es,
:class:`~repro.core.task.TaskParameters` (event payloads), curve points
and ciphertexts, and the PoQoEA / VPKE proof objects carried by
``evaluate`` transaction args.  Dict entries keep *iteration* order —
chain state is built deterministically, so iteration order is itself
reproducible state (and must round-trip exactly: a resumed run iterates
those dicts).

On top of that, :func:`encode_chain_state` / :func:`decode_chain_state`
define the schema of a whole :class:`~repro.chain.chain.Chain` — blocks
(transactions, receipts, events), ledger, registry, contract storage,
the event log *with its prune base offset*, per-sender gas, the clock,
and the process-wide transaction-nonce position — and
:func:`state_root` hashes it.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Tuple

from repro.chain.blocks import Block
from repro.chain.chain import Chain
from repro.chain.contract import Contract
from repro.chain.eventlog import EventRecord
from repro.chain.network import FifoScheduler, ReverseScheduler, Scheduler
from repro.chain.transactions import Event, Receipt, Transaction
from repro.core.hit_contract import HITContract
from repro.core.task import TaskParameters
from repro.crypto.curve import G1Point
from repro.crypto.elgamal import Ciphertext
from repro.crypto.keccak import keccak256
from repro.crypto.poqoea import MismatchEntry, QualityProof
from repro.crypto.vpke import DecryptionProof
from repro.errors import ReproError
from repro.ledger.accounts import Address
from repro.ledger.ledger import Ledger, LedgerEntry

#: Bump on any change to the encoding or the chain-state schema.
#: v2: ``state_root`` moved from a flat hash of the canonical encoding
#: to the Merkle trie root (``repro.store.trie``); snapshot envelopes
#: carry both the trie root and an ``encoding_hash`` integrity digest.
SCHEMA_VERSION = 2


class CodecError(ReproError):
    """Raised on malformed encodings or unencodable values."""


# ---------------------------------------------------------------------------
# Varints
# ---------------------------------------------------------------------------


def _write_varint(out: List[bytes], value: int) -> None:
    if value < 0:
        raise CodecError("varints are unsigned")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(bytes((byte | 0x80,)))
        else:
            out.append(bytes((byte,)))
            return


def _read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CodecError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


# ---------------------------------------------------------------------------
# The tagged value layer
# ---------------------------------------------------------------------------

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"i"
_TAG_FLOAT = b"f"
_TAG_BYTES = b"b"
_TAG_STR = b"s"
_TAG_LIST = b"l"
_TAG_TUPLE = b"t"
_TAG_DICT = b"d"
_TAG_ADDRESS = b"A"
_TAG_PARAMS = b"P"
_TAG_POINT = b"G"
_TAG_CIPHERTEXT = b"C"
_TAG_VPKE_PROOF = b"D"
_TAG_QUALITY_PROOF = b"Q"


def _encode_into(out: List[bytes], value: Any) -> None:
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif type(value) is int:
        out.append(_TAG_INT)
        _write_varint(out, _zigzag(value))
    elif type(value) is float:
        out.append(_TAG_FLOAT)
        out.append(struct.pack(">d", value))
    elif type(value) is bytes:
        out.append(_TAG_BYTES)
        _write_varint(out, len(value))
        out.append(value)
    elif type(value) is str:
        raw = value.encode("utf-8")
        out.append(_TAG_STR)
        _write_varint(out, len(raw))
        out.append(raw)
    elif type(value) is list:
        out.append(_TAG_LIST)
        _write_varint(out, len(value))
        for item in value:
            _encode_into(out, item)
    elif type(value) is tuple:
        out.append(_TAG_TUPLE)
        _write_varint(out, len(value))
        for item in value:
            _encode_into(out, item)
    elif type(value) is dict:
        out.append(_TAG_DICT)
        _write_varint(out, len(value))
        for key, item in value.items():
            _encode_into(out, key)
            _encode_into(out, item)
    elif type(value) is Address:
        out.append(_TAG_ADDRESS)
        out.append(value.value)
        _encode_into(out, value.label)
    elif type(value) is TaskParameters:
        out.append(_TAG_PARAMS)
        _encode_into(out, value.to_json())
    elif type(value) is G1Point:
        out.append(_TAG_POINT)
        out.append(value.to_bytes())
    elif type(value) is Ciphertext:
        out.append(_TAG_CIPHERTEXT)
        out.append(value.to_bytes())
    elif type(value) is DecryptionProof:
        out.append(_TAG_VPKE_PROOF)
        out.append(value.to_bytes())
    elif type(value) is QualityProof:
        out.append(_TAG_QUALITY_PROOF)
        _write_varint(out, len(value.entries))
        for entry in value.entries:
            _encode_into(out, entry.index)
            _encode_into(out, entry.answer)
            _encode_into(out, entry.proof)
    else:
        raise CodecError(
            "no canonical encoding for %s" % type(value).__name__
        )


def _zigzag(value: int) -> int:
    """Map signed to unsigned (arbitrary precision): 0,-1,1,-2 -> 0,1,2,3."""
    return (value << 1) if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def _decode_from(data: bytes, pos: int) -> Tuple[Any, int]:
    if pos >= len(data):
        raise CodecError("truncated value")
    tag = data[pos : pos + 1]
    pos += 1
    if tag == _TAG_NONE:
        return None, pos
    if tag == _TAG_TRUE:
        return True, pos
    if tag == _TAG_FALSE:
        return False, pos
    if tag == _TAG_INT:
        raw, pos = _read_varint(data, pos)
        return _unzigzag(raw), pos
    if tag == _TAG_FLOAT:
        return struct.unpack(">d", data[pos : pos + 8])[0], pos + 8
    if tag == _TAG_BYTES:
        length, pos = _read_varint(data, pos)
        if pos + length > len(data):
            raise CodecError("truncated bytes")
        return data[pos : pos + length], pos + length
    if tag == _TAG_STR:
        length, pos = _read_varint(data, pos)
        if pos + length > len(data):
            raise CodecError("truncated string")
        return data[pos : pos + length].decode("utf-8"), pos + length
    if tag in (_TAG_LIST, _TAG_TUPLE):
        count, pos = _read_varint(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode_from(data, pos)
            items.append(item)
        return (tuple(items) if tag == _TAG_TUPLE else items), pos
    if tag == _TAG_DICT:
        count, pos = _read_varint(data, pos)
        result: Dict[Any, Any] = {}
        for _ in range(count):
            key, pos = _decode_from(data, pos)
            value, pos = _decode_from(data, pos)
            result[key] = value
        return result, pos
    if tag == _TAG_ADDRESS:
        value = data[pos : pos + 20]
        label, pos = _decode_from(data, pos + 20)
        return Address(value, label), pos
    if tag == _TAG_PARAMS:
        raw, pos = _decode_from(data, pos)
        return TaskParameters.from_json(raw), pos
    if tag == _TAG_POINT:
        return G1Point.from_bytes(data[pos : pos + 64]), pos + 64
    if tag == _TAG_CIPHERTEXT:
        return Ciphertext.from_bytes(data[pos : pos + 128]), pos + 128
    if tag == _TAG_VPKE_PROOF:
        return DecryptionProof.from_bytes(data[pos : pos + 160]), pos + 160
    if tag == _TAG_QUALITY_PROOF:
        count, pos = _read_varint(data, pos)
        entries = []
        for _ in range(count):
            index, pos = _decode_from(data, pos)
            answer, pos = _decode_from(data, pos)
            proof, pos = _decode_from(data, pos)
            entries.append(MismatchEntry(index, answer, proof))
        return QualityProof(tuple(entries)), pos
    raise CodecError("unknown tag 0x%02x at offset %d" % (tag[0], pos - 1))


def encode(value: Any) -> bytes:
    """Canonically encode one value (the building block of everything)."""
    out: List[bytes] = []
    _encode_into(out, value)
    return b"".join(out)


def decode(data: bytes) -> Any:
    """Decode one value; rejects trailing garbage."""
    value, pos = _decode_from(data, 0)
    if pos != len(data):
        raise CodecError("%d trailing bytes after value" % (len(data) - pos))
    return value


# ---------------------------------------------------------------------------
# Chain-object schemas
# ---------------------------------------------------------------------------


def transaction_to_data(transaction: Transaction) -> Dict[str, Any]:
    return {
        "sender": transaction.sender,
        "contract": transaction.contract,
        "method": transaction.method,
        "payload": transaction.payload,
        "args": transaction.args,
        "value": transaction.value,
        "gas_limit": transaction.gas_limit,
        "nonce": transaction.nonce,
    }


def transaction_from_data(data: Dict[str, Any]) -> Transaction:
    return Transaction(
        sender=data["sender"],
        contract=data["contract"],
        method=data["method"],
        payload=data["payload"],
        args=data["args"],
        value=data["value"],
        gas_limit=data["gas_limit"],
        nonce=data["nonce"],
    )


def event_to_data(event: Event) -> Dict[str, Any]:
    return {
        "contract": event.contract,
        "name": event.name,
        "topics": event.topics,
        "data": event.data,
        "payload": event.payload,
    }


def event_from_data(data: Dict[str, Any]) -> Event:
    return Event(
        contract=data["contract"],
        name=data["name"],
        topics=data["topics"],
        data=data["data"],
        payload=data["payload"],
    )


def receipt_to_data(receipt: Receipt) -> Dict[str, Any]:
    """A standalone receipt with its transaction inlined.

    Blocks encode receipts with a transaction *index* (the sealed
    objects share identity); a receipt travelling alone — an RPC
    ``tx_deploy`` response, a contract-test comparison — carries the
    transaction itself.
    """
    return {
        "transaction": transaction_to_data(receipt.transaction),
        "status": receipt.status,
        "gas_used": receipt.gas_used,
        "gas_breakdown": receipt.gas_breakdown,
        "events": [event_to_data(event) for event in receipt.events],
        "revert_reason": receipt.revert_reason,
        "block_number": receipt.block_number,
    }


def receipt_from_data(data: Dict[str, Any]) -> Receipt:
    return Receipt(
        transaction=transaction_from_data(data["transaction"]),
        status=data["status"],
        gas_used=data["gas_used"],
        gas_breakdown=data["gas_breakdown"],
        events=tuple(event_from_data(item) for item in data["events"]),
        revert_reason=data["revert_reason"],
        block_number=data["block_number"],
    )


def block_to_data(block: Block) -> Dict[str, Any]:
    """A block with receipts referencing transactions *by index* (the
    live objects share identity; the encoding shares the reference)."""
    # Receipts are sealed positionally aligned with transactions, so an
    # identity map resolves the index in O(1); the equality scan is only
    # a fallback for hand-built blocks (state_root re-encodes every
    # block, so this sits on the snapshot/checkpoint hot path).
    index_of = {
        id(transaction): index
        for index, transaction in enumerate(block.transactions)
    }

    def _tx_index(receipt: Receipt) -> int:
        index = index_of.get(id(receipt.transaction))
        if index is None:  # not the sealed object: equality fallback
            index = block.transactions.index(receipt.transaction)
        return index

    return {
        "number": block.number,
        "parent_hash": block.parent_hash,
        "transactions": [
            transaction_to_data(transaction) for transaction in block.transactions
        ],
        "receipts": [
            {
                "tx": _tx_index(receipt),
                "status": receipt.status,
                "gas_used": receipt.gas_used,
                "gas_breakdown": receipt.gas_breakdown,
                "events": [event_to_data(event) for event in receipt.events],
                "revert_reason": receipt.revert_reason,
                "block_number": receipt.block_number,
            }
            for receipt in block.receipts
        ],
    }


def block_from_data(data: Dict[str, Any]) -> Block:
    transactions = tuple(
        transaction_from_data(item) for item in data["transactions"]
    )
    receipts = tuple(
        Receipt(
            transaction=transactions[item["tx"]],
            status=item["status"],
            gas_used=item["gas_used"],
            gas_breakdown=item["gas_breakdown"],
            events=tuple(event_from_data(e) for e in item["events"]),
            revert_reason=item["revert_reason"],
            block_number=item["block_number"],
        )
        for item in data["receipts"]
    )
    return Block(
        number=data["number"],
        parent_hash=data["parent_hash"],
        transactions=transactions,
        receipts=receipts,
    )


# Contract classes a decoded chain may instantiate, by class name.  A
# new persistent contract type registers here (and bumps the schema if
# its storage layout is not self-describing).
CONTRACT_TYPES: Dict[str, type] = {
    "Contract": Contract,
    "HITContract": HITContract,
}

_SCHEDULER_TYPES: Dict[str, type] = {
    "Scheduler": Scheduler,
    "FifoScheduler": FifoScheduler,
    "ReverseScheduler": ReverseScheduler,
}


def contract_to_data(contract: Contract) -> Dict[str, Any]:
    kind = type(contract).__name__
    if kind not in CONTRACT_TYPES:
        raise CodecError(
            "contract type %s is not registered for persistence "
            "(add it to repro.store.codec.CONTRACT_TYPES)" % kind
        )
    return {"type": kind, "name": contract.name, "storage": contract.storage}


def contract_from_data(data: Dict[str, Any]) -> Contract:
    contract = CONTRACT_TYPES[data["type"]](data["name"])
    contract.storage = data["storage"]
    return contract


def ledger_entry_to_data(entry: LedgerEntry) -> Dict[str, Any]:
    """The one LedgerEntry mapping both snapshot and WAL paths share —
    a drift between them would make crash recovery and snapshot loads
    reach different state roots for the same state."""
    return {
        "kind": entry.kind,
        "source": entry.source,
        "destination": entry.destination,
        "amount": entry.amount,
        "memo": entry.memo,
    }


def ledger_entry_from_data(data: Dict[str, Any]) -> LedgerEntry:
    return LedgerEntry(
        kind=data["kind"],
        source=data["source"],
        destination=data["destination"],
        amount=data["amount"],
        memo=data["memo"],
    )


def ledger_to_data(ledger: Ledger) -> Dict[str, Any]:
    return {
        "balances": dict(ledger._balances),
        "escrow": dict(ledger._escrow),
        "fees": ledger._fees_collected,
        "entries": [
            ledger_entry_to_data(entry) for entry in ledger._entries
        ],
    }


def ledger_from_data(data: Dict[str, Any]) -> Ledger:
    ledger = Ledger()
    ledger._balances = dict(data["balances"])
    ledger._escrow = dict(data["escrow"])
    ledger._fees_collected = data["fees"]
    ledger._entries = [
        ledger_entry_from_data(item) for item in data["entries"]
    ]
    return ledger


def eventlog_to_data(chain: Chain) -> Dict[str, Any]:
    """The retained records plus the prune base: compaction carries to
    disk — pruned records are genuinely absent from the encoding."""
    return {
        "base": chain.event_log.pruned,
        "records": [
            {
                "sequence": record.sequence,
                "block": record.block_number,
                "event": event_to_data(record.event),
            }
            for record in chain.event_log
        ],
    }


def chain_state_to_data(chain: Chain) -> Dict[str, Any]:
    """The full durable state of one chain as plain data."""
    scheduler_kind = type(chain.scheduler).__name__
    if scheduler_kind not in _SCHEDULER_TYPES:
        raise CodecError(
            "scheduler %s holds live callbacks and cannot be persisted"
            % scheduler_kind
        )
    return {
        "schema": SCHEMA_VERSION,
        "period": chain.clock.period,
        "scheduler": scheduler_kind,
        "blocks": [block_to_data(block) for block in chain.blocks],
        "ledger": ledger_to_data(chain.ledger),
        "registry": [address for address in chain.registry],
        "contracts": [
            contract_to_data(contract)
            for contract in chain._contracts.values()
        ],
        "event_log": eventlog_to_data(chain),
        "gas_by_sender": dict(chain.gas_by_sender),
    }


def chain_from_data(data: Dict[str, Any]) -> Chain:
    """Rebuild a live chain (mempool empty: WAL entries cover sealed
    blocks only — an in-flight mempool is client state, not node state)."""
    if data["schema"] != SCHEMA_VERSION:
        raise CodecError(
            "state schema %r (this build reads %d)"
            % (data["schema"], SCHEMA_VERSION)
        )
    chain = Chain(
        ledger=ledger_from_data(data["ledger"]),
        scheduler=_SCHEDULER_TYPES[data["scheduler"]](),
    )
    chain.clock._period = data["period"]
    for address in data["registry"]:
        chain.registry._granted[address.value] = address
    for item in data["contracts"]:
        contract = contract_from_data(item)
        chain._contracts[contract.name] = contract
    chain.blocks = [block_from_data(item) for item in data["blocks"]]
    log = chain.event_log
    log._base = data["event_log"]["base"]
    log._records = [
        EventRecord(
            sequence=item["sequence"],
            block_number=item["block"],
            event=event_from_data(item["event"]),
        )
        for item in data["event_log"]["records"]
    ]
    chain.gas_by_sender = dict(data["gas_by_sender"])
    return chain


def encode_chain_state(chain: Chain) -> bytes:
    """The canonical byte form of the whole node state."""
    return encode(chain_state_to_data(chain))


def decode_chain_state(data: bytes) -> Chain:
    return chain_from_data(decode(data))


def state_root(chain: Chain) -> bytes:
    """The 32-byte integrity anchor: the chain's Merkle trie root.

    Through schema v1 this was ``keccak256(encode_chain_state(chain))``
    — correct, but it re-encoded the whole history per call.  It is now
    the incremental :mod:`repro.store.trie` root: the same pure
    function of chain state (byte-identical across seeded, pooled, and
    interrupt/resume runs), but an unchanged chain re-reads it for the
    cost of a diff scan, and every key under it is provable to a light
    client.  Imported lazily — codec is the trie's value encoder, so a
    module-level import would cycle.
    """
    from repro.store import trie

    return trie.chain_state_trie(chain).root(chain)
