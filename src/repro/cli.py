"""A command-line interface for the Dragoon reproduction.

Downstream users drive the library from the shell::

    python -m repro.cli demo                 # quickstart task
    python -m repro.cli imagenet             # the paper's SVI experiment
    python -m repro.cli fees                 # Table III reproduction
    python -m repro.cli audit                # reputation demo
    python -m repro.cli incentives           # strategy utilities
    python -m repro.cli serve --tasks 4      # staggered session engine
    python -m repro.cli simulate --preset poisson --seed 7   # workload sim

Each subcommand prints a compact, self-explanatory report.  ``serve``
and ``simulate`` are seeded and run under deterministic entropy, so the
same invocation prints the same bytes every time.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.costs import build_handling_fee_table, mturk_handling_fee
from repro.analysis.incentives import IncentiveParameters, strategy_profile
from repro.analysis.tables import render_gas_extras, render_table
from repro.chain.gas import PAPER_PRICING
from repro.core.protocol import run_hit
from repro.core.task import (
    make_imagenet_task,
    make_street_parking_task,
    sample_worker_answers,
)


def _cmd_demo(args: argparse.Namespace) -> int:
    task = make_street_parking_task(num_workers=2, budget=200)
    answers = [
        sample_worker_answers(task, 0.95, seed=1),
        sample_worker_answers(task, 0.2, seed=2),
    ]
    outcome = run_hit(task, answers)
    rows = [
        [w.label, outcome.payment_of(w), outcome.contract.verdict_of(w.address)]
        for w in outcome.workers
    ]
    print(render_table(["worker", "paid", "verdict"], rows, title="Demo HIT"))
    return 0


def _cmd_imagenet(args: argparse.Namespace) -> int:
    task = make_imagenet_task()
    accuracies = [0.98, 0.92, 0.60, 0.15]
    answers = [
        sample_worker_answers(task, accuracy, seed=i)
        for i, accuracy in enumerate(accuracies)
    ]
    outcome = run_hit(task, answers)
    rows = [
        [
            w.label,
            "%.0f%%" % (accuracies[i] * 100),
            task.quality_of(answers[i]),
            outcome.payment_of(w),
        ]
        for i, w in enumerate(outcome.workers)
    ]
    print(
        render_table(
            ["worker", "accuracy", "gold quality", "paid"],
            rows,
            title="ImageNet HIT (paper SVI policy)",
        )
    )
    print("total gas: %dk ($%.2f)" % (
        outcome.gas.total // 1000, PAPER_PRICING.to_usd(outcome.gas.total)))
    return 0


def _cmd_fees(args: argparse.Namespace) -> int:
    task = make_imagenet_task()
    good = [sample_worker_answers(task, 0.97, seed=i) for i in range(4)]
    outcome = run_hit(task, good)
    table = build_handling_fee_table(outcome.gas, pricing=PAPER_PRICING)
    rows = [
        [row.operation, "~%dk" % (row.gas // 1000), "$%.2f" % row.usd]
        for row in table.rows
    ]
    print(render_table(["operation", "gas", "usd"], rows,
                       title="Table III reproduction (best case)"))
    print(render_gas_extras(outcome.gas.extras, pricing=PAPER_PRICING))
    print("MTurk fee for the same task: $%.2f" % mturk_handling_fee(20.0, 4))
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.core.audit import GoldAuditLog
    from repro.dragoon import Dragoon
    from repro.core.task import HITTask, TaskParameters

    def tiny():
        parameters = TaskParameters(10, 100, 2, (0, 1), 2, 3)
        return HITTask(parameters, ["q%d" % i for i in range(10)],
                       [0, 1, 2], [0, 0, 0], [0] * 10)

    system = Dragoon()
    system.fund("honest-alice", 200)
    system.fund("mass-rejecter", 200)
    system.run_task("honest-alice", tiny(), [[0] * 10, [0] * 10],
                    worker_labels=["w0", "w1"])
    system.run_task("mass-rejecter", tiny(), [[1] * 10, [1] * 10],
                    worker_labels=["w2", "w3"])
    reputations = GoldAuditLog(system.chain).reputation()
    rows = [
        [
            label,
            reputation.tasks,
            "%.0f%%" % (100 * reputation.rejection_rate),
            "; ".join(reputation.flags) or "-",
        ]
        for label, reputation in sorted(reputations.items())
    ]
    print(render_table(["requester", "tasks", "rejection rate", "flags"],
                       rows, title="Requester reputations (public audit)"))
    return 0


def _cmd_incentives(args: argparse.Namespace) -> int:
    params = IncentiveParameters()
    for world, naive in (("Dragoon", False), ("naive transparent chain", True)):
        rows = [
            [o.name, "%.1f%%" % (100 * o.pay_probability),
             "$%.2f" % o.expected_reward, "$%.2f" % o.cost,
             "$%+.2f" % o.expected_utility]
            for o in strategy_profile(params, naive_chain=naive)
        ]
        print(render_table(
            ["strategy", "P[paid]", "E[reward]", "cost", "E[utility]"],
            rows, title="Worker strategies on %s" % world))
        print()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run N staggered tasks through the session engine; trace each block.

    Seeded end to end: worker answer sheets are sampled at fixed
    accuracies (0.95 / 0.30) from ``--seed``, and the whole run executes
    under deterministic entropy, so the same invocation prints the same
    trace — gas included.
    """
    from repro.core.session import StragglerScheduler
    from repro.core.task import HITTask, TaskParameters
    from repro.crypto.rng import deterministic_entropy
    from repro.dragoon import Dragoon, TaskArrival
    from repro.sim.seeding import derive_seed

    def tiny():
        parameters = TaskParameters(10, 100, 2, (0, 1), 2, 3)
        return HITTask(parameters, ["q%d" % i for i in range(10)],
                       [0, 1, 2], [0, 0, 0], [0] * 10)

    arrivals = []
    for index in range(args.tasks):
        task = tiny()
        answers = [
            sample_worker_answers(
                task, accuracy, seed=derive_seed(args.seed, index, slot)
            )
            for slot, accuracy in enumerate((0.95, 0.30))
        ]
        # The first --stragglers tasks get a worker who reveals one
        # period late: the Fig. 4 deadline rejects it and the burned
        # gas lands in GasReport.extras.
        policies = (
            {0: StragglerScheduler(reveal=1)} if index < args.stragglers else None
        )
        arrivals.append(
            TaskArrival(
                at_block=index * args.stagger,
                requester_label="req-%d" % index,
                task=task,
                worker_answers=answers,
                worker_labels=["t%d/w0" % index, "t%d/w1" % index],
                worker_policies=policies,
            )
        )
    dragoon = Dragoon()
    with deterministic_entropy(args.seed):
        outcomes = dragoon.serve(arrivals)

    rows = []
    for trace in dragoon.engine.trace:
        events = ", ".join(
            "%s:%s" % (task.split(":")[1], name) for task, name in trace.events
        )
        phases = " ".join(
            "%s=%s" % (task.split(":")[1], phase)
            for task, phase in sorted(trace.phases.items())
        )
        rows.append(
            [trace.block_number, trace.period, trace.transactions,
             events or "-", phases or "-"]
        )
    print(render_table(
        ["block", "period", "txs", "events", "session phases"],
        rows,
        title="Session engine trace (%d tasks, stagger %d)"
        % (args.tasks, args.stagger),
    ))
    print("chain height: %d blocks (lock-step sequential would need ~%d)"
          % (dragoon.chain.height, 5 * args.tasks))
    paid = sum(
        1 for outcome in outcomes
        for value in outcome.payments().values() if value > 0
    )
    print("settled %d tasks: %d workers paid, %d rejected"
          % (len(outcomes), paid, 2 * len(outcomes) - paid))
    extras: dict = {}
    for outcome in outcomes:
        for operation, gas in outcome.gas.extras.items():
            extras[operation] = extras.get(operation, 0) + gas
    print(render_gas_extras(extras, pricing=PAPER_PRICING))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    """Run a seeded marketplace workload scenario; print its report."""
    from repro.sim import SCENARIO_PRESETS, preset, run_scenario

    scenario = preset(args.preset, seed=args.seed, tasks=args.tasks)
    report = run_scenario(scenario)
    report.check_invariants()

    print(render_table(
        ["metric", "value"],
        [
            ["tasks published", report.tasks_published],
            ["tasks settled", report.tasks_settled],
            ["tasks cancelled", report.tasks_cancelled],
            ["blocks", report.blocks],
            ["blocks per task", "%.2f" % report.blocks_per_task],
            ["settled per block", "%.2f" % report.settled_per_block],
            ["transactions", report.total_transactions],
            ["total gas", "%dk" % (report.total_gas // 1000)],
            ["gas per settled task",
             "%dk" % (int(report.gas_per_settled_task) // 1000)],
            ["peak mempool depth", report.peak_mempool_depth],
            ["enrollments", report.enrollments],
            ["dropped worker steps", report.dropped_steps],
        ],
        title="Scenario %r (seed %d)" % (scenario.name, scenario.seed),
    ))
    latency = report.commit_to_finalize
    print("commit->finalize latency: min %s, mean %s, max %s blocks"
          % (latency["min"], latency["mean"], latency["max"]))
    print(render_gas_extras(report.gas_extras, pricing=PAPER_PRICING))
    top = sorted(
        report.worker_earnings.items(), key=lambda pair: (-pair[1], pair[0])
    )[:5]
    print(render_table(
        ["worker", "coins earned"], top, title="Top earners",
    ))
    if args.json:
        print(report.to_json())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Dragoon reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("demo", help="run a small HIT end to end").set_defaults(
        func=_cmd_demo
    )
    sub.add_parser("imagenet", help="the paper's SVI ImageNet task").set_defaults(
        func=_cmd_imagenet
    )
    sub.add_parser("fees", help="Table III handling-fee reproduction").set_defaults(
        func=_cmd_fees
    )
    sub.add_parser("audit", help="gold-standard audit / reputations").set_defaults(
        func=_cmd_audit
    )
    sub.add_parser("incentives", help="worker strategy utilities").set_defaults(
        func=_cmd_incentives
    )
    serve = sub.add_parser(
        "serve",
        help="run staggered tasks through the session engine with a "
        "per-block event/phase trace",
    )
    serve.add_argument("--tasks", type=int, default=4,
                       help="number of arriving tasks (default 4)")
    serve.add_argument("--stagger", type=int, default=1,
                       help="blocks between consecutive arrivals (default 1)")
    serve.add_argument("--seed", type=int, default=0,
                       help="seed for worker-answer sampling and all "
                       "protocol randomness (default 0; same seed, "
                       "same output)")
    serve.add_argument("--stragglers", type=int, default=0,
                       help="give the first N tasks a worker who reveals "
                       "one period late (default 0)")
    serve.set_defaults(func=_cmd_serve)
    simulate = sub.add_parser(
        "simulate",
        help="run a seeded marketplace workload scenario (repro.sim) "
        "and print its SimulationReport",
    )
    simulate.add_argument(
        "--preset", default="poisson",
        help="scenario preset: poisson, burst, diurnal, closed-loop, "
        "adversarial (default poisson)",
    )
    simulate.add_argument("--seed", type=int, default=0,
                          help="scenario seed (default 0)")
    simulate.add_argument("--tasks", type=int, default=None,
                          help="resize the preset to ~N tasks")
    simulate.add_argument("--json", action="store_true",
                          help="also print the canonical JSON report")
    simulate.set_defaults(func=_cmd_simulate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
