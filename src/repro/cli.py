"""A command-line interface for the Dragoon reproduction.

Downstream users drive the library from the shell::

    python -m repro.cli demo                 # quickstart task
    python -m repro.cli imagenet             # the paper's SVI experiment
    python -m repro.cli fees                 # Table III reproduction
    python -m repro.cli audit                # reputation demo
    python -m repro.cli incentives           # strategy utilities
    python -m repro.cli serve --tasks 4      # staggered session engine
    python -m repro.cli simulate --preset poisson --seed 7   # workload sim

    # A marketplace instance that lives across invocations:
    python -m repro.cli node init --state-dir ./mainnet
    python -m repro.cli serve --tasks 4 --state-dir ./mainnet
    python -m repro.cli node status --state-dir ./mainnet

    # Checkpoint a long simulation and resume it after a kill:
    python -m repro.cli simulate --preset diurnal --seed 7 \
        --state-dir ./sim --checkpoint-every 16
    python -m repro.cli node resume --state-dir ./sim

    # Serve the node to out-of-process clients over JSON-RPC:
    python -m repro.cli node rpc-serve --state-dir ./mainnet --port 8545

    # Telemetry analytics: sweep a scenario grid into byte-reproducible
    # report artifacts; analyze span traces and metrics snapshots:
    python -m repro.cli report sweep --seed 7 --tasks 4 \
        --axis budget=100,140 --axis accuracy=0.7,0.9 --out reports
    python -m repro.cli report trace run.jsonl
    python -m repro.cli report metrics before.json after.json --diff

Each subcommand prints a compact, self-explanatory report.  ``serve``
and ``simulate`` are seeded and run under deterministic entropy, so the
same invocation prints the same bytes every time.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import List, Optional

from repro.analysis.costs import build_handling_fee_table, mturk_handling_fee
from repro.analysis.incentives import IncentiveParameters, strategy_profile
from repro.analysis.tables import render_gas_extras, render_table
from repro.chain.gas import PAPER_PRICING
from repro.core.protocol import run_hit
from repro.core.task import (
    make_imagenet_task,
    make_street_parking_task,
    sample_worker_answers,
)
from repro.obs.logging import add_logging_flags, configure_logging, get_logger
from repro.obs.tracing import trace_to

#: Every line the CLI emits goes through the structured logger: the
#: default human rendering is byte-identical to the old print() output,
#: and --log-json swaps in one-JSON-object-per-line for machine readers.
_log = get_logger("cli")


def _cmd_demo(args: argparse.Namespace) -> int:
    task = make_street_parking_task(num_workers=2, budget=200)
    answers = [
        sample_worker_answers(task, 0.95, seed=1),
        sample_worker_answers(task, 0.2, seed=2),
    ]
    outcome = run_hit(task, answers)
    rows = [
        [w.label, outcome.payment_of(w), outcome.contract.verdict_of(w.address)]
        for w in outcome.workers
    ]
    _log.info(render_table(["worker", "paid", "verdict"], rows, title="Demo HIT"))
    return 0


def _cmd_imagenet(args: argparse.Namespace) -> int:
    task = make_imagenet_task()
    accuracies = [0.98, 0.92, 0.60, 0.15]
    answers = [
        sample_worker_answers(task, accuracy, seed=i)
        for i, accuracy in enumerate(accuracies)
    ]
    outcome = run_hit(task, answers)
    rows = [
        [
            w.label,
            "%.0f%%" % (accuracies[i] * 100),
            task.quality_of(answers[i]),
            outcome.payment_of(w),
        ]
        for i, w in enumerate(outcome.workers)
    ]
    _log.info(
        render_table(
            ["worker", "accuracy", "gold quality", "paid"],
            rows,
            title="ImageNet HIT (paper SVI policy)",
        )
    )
    _log.info(
        "total gas: %dk ($%.2f)" % (
            outcome.gas.total // 1000, PAPER_PRICING.to_usd(outcome.gas.total)
        ),
        gas=outcome.gas.total,
    )
    return 0


def _cmd_fees(args: argparse.Namespace) -> int:
    task = make_imagenet_task()
    good = [sample_worker_answers(task, 0.97, seed=i) for i in range(4)]
    outcome = run_hit(task, good)
    table = build_handling_fee_table(outcome.gas, pricing=PAPER_PRICING)
    rows = [
        [row.operation, "~%dk" % (row.gas // 1000), "$%.2f" % row.usd]
        for row in table.rows
    ]
    _log.info(render_table(["operation", "gas", "usd"], rows,
                           title="Table III reproduction (best case)"))
    _log.info(render_gas_extras(outcome.gas.extras, pricing=PAPER_PRICING))
    _log.info("MTurk fee for the same task: $%.2f" % mturk_handling_fee(20.0, 4))
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.core.audit import GoldAuditLog
    from repro.dragoon import Dragoon
    from repro.core.task import HITTask, TaskParameters

    def tiny():
        parameters = TaskParameters(10, 100, 2, (0, 1), 2, 3)
        return HITTask(parameters, ["q%d" % i for i in range(10)],
                       [0, 1, 2], [0, 0, 0], [0] * 10)

    system = Dragoon()
    system.fund("honest-alice", 200)
    system.fund("mass-rejecter", 200)
    system.run_task("honest-alice", tiny(), [[0] * 10, [0] * 10],
                    worker_labels=["w0", "w1"])
    system.run_task("mass-rejecter", tiny(), [[1] * 10, [1] * 10],
                    worker_labels=["w2", "w3"])
    reputations = GoldAuditLog(system.chain).reputation()
    rows = [
        [
            label,
            reputation.tasks,
            "%.0f%%" % (100 * reputation.rejection_rate),
            "; ".join(reputation.flags) or "-",
        ]
        for label, reputation in sorted(reputations.items())
    ]
    _log.info(render_table(["requester", "tasks", "rejection rate", "flags"],
                           rows, title="Requester reputations (public audit)"))
    return 0


def _cmd_incentives(args: argparse.Namespace) -> int:
    params = IncentiveParameters()
    for world, naive in (("Dragoon", False), ("naive transparent chain", True)):
        rows = [
            [o.name, "%.1f%%" % (100 * o.pay_probability),
             "$%.2f" % o.expected_reward, "$%.2f" % o.cost,
             "$%+.2f" % o.expected_utility]
            for o in strategy_profile(params, naive_chain=naive)
        ]
        _log.info(render_table(
            ["strategy", "P[paid]", "E[reward]", "cost", "E[utility]"],
            rows, title="Worker strategies on %s" % world))
        _log.info("")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run N staggered tasks through the session engine; trace each block.

    Seeded end to end: worker answer sheets are sampled at fixed
    accuracies (0.95 / 0.30) from ``--seed``, and the whole run executes
    under deterministic entropy, so the same invocation prints the same
    trace — gas included.
    """
    from repro.core.session import StragglerScheduler
    from repro.core.task import HITTask, TaskParameters
    from repro.crypto.rng import deterministic_entropy
    from repro.dragoon import Dragoon, TaskArrival
    from repro.sim.seeding import derive_seed

    def tiny():
        parameters = TaskParameters(10, 100, 2, (0, 1), 2, 3)
        return HITTask(parameters, ["q%d" % i for i in range(10)],
                       [0, 1, 2], [0, 0, 0], [0] * 10)

    arrivals = []
    for index in range(args.tasks):
        task = tiny()
        answers = [
            sample_worker_answers(
                task, accuracy, seed=derive_seed(args.seed, index, slot)
            )
            for slot, accuracy in enumerate((0.95, 0.30))
        ]
        # The first --stragglers tasks get a worker who reveals one
        # period late: the Fig. 4 deadline rejects it and the burned
        # gas lands in GasReport.extras.
        policies = (
            {0: StragglerScheduler(reveal=1)} if index < args.stragglers else None
        )
        arrivals.append(
            TaskArrival(
                at_block=index * args.stagger,
                requester_label="req-%d" % index,
                task=task,
                worker_answers=answers,
                worker_labels=["t%d/w0" % index, "t%d/w1" % index],
                worker_policies=policies,
            )
        )
    prover_pool = None
    verifier_pool = None
    if getattr(args, "prover_procs", None) is not None:
        from repro.parallel import ProverPool

        prover_pool = ProverPool(args.prover_procs)
    if getattr(args, "verifier_procs", None) is not None:
        from repro.parallel import VerifierPool

        verifier_pool = VerifierPool(args.verifier_procs)
    store = None
    if getattr(args, "state_dir", None):
        from repro.store import NodeStore

        if NodeStore.exists(args.state_dir):
            store = NodeStore.open(args.state_dir)
            chain, meta = store.load(apply_runtime=True)
            dragoon = Dragoon(chain=chain, prover_pool=prover_pool)
            dragoon.restore_node_state(meta["extra"])
            dragoon.attach_store(store)
            _log.info(
                "resumed node at height %d (state_root %s...)"
                % (chain.height, meta["state_root"].hex()[:16]),
                height=chain.height,
                state_dir=args.state_dir,
            )
            # Long-lived requesters may have spent earlier budgets; top
            # them up so this run's publishes can freeze B.  After
            # attach_store, so the mints land in the next block's WAL
            # record and crash recovery sees them.
            for arrival in arrivals:
                dragoon.ensure_funds(
                    arrival.requester_label, arrival.task.parameters.budget
                )
        else:
            store = NodeStore.init(args.state_dir)
            dragoon = Dragoon(prover_pool=prover_pool)
            dragoon.attach_store(store)
    else:
        dragoon = Dragoon(prover_pool=prover_pool)
    hooks = (
        verifier_pool.installed()
        if verifier_pool is not None
        else contextlib.nullcontext()
    )
    try:
        with deterministic_entropy(args.seed), hooks:
            outcomes = dragoon.serve(arrivals)
    finally:
        if prover_pool is not None:
            prover_pool.close()
        if verifier_pool is not None:
            verifier_pool.close()
    if store is not None:
        root = store.save(dragoon.chain, extra=dragoon.node_state())
        _log.info(
            "node state saved to %s (height %d, state_root %s...)"
            % (args.state_dir, dragoon.chain.height, root.hex()[:16]),
            state_dir=args.state_dir,
            height=dragoon.chain.height,
        )

    rows = []
    for trace in dragoon.engine.trace:
        events = ", ".join(
            "%s:%s" % (task.split(":")[1], name) for task, name in trace.events
        )
        phases = " ".join(
            "%s=%s" % (task.split(":")[1], phase)
            for task, phase in sorted(trace.phases.items())
        )
        rows.append(
            [trace.block_number, trace.period, trace.transactions,
             events or "-", phases or "-"]
        )
    _log.info(render_table(
        ["block", "period", "txs", "events", "session phases"],
        rows,
        title="Session engine trace (%d tasks, stagger %d)"
        % (args.tasks, args.stagger),
    ))
    _log.info(
        "chain height: %d blocks (lock-step sequential would need ~%d)"
        % (dragoon.chain.height, 5 * args.tasks),
        height=dragoon.chain.height,
    )
    paid = sum(
        1 for outcome in outcomes
        for value in outcome.payments().values() if value > 0
    )
    _log.info(
        "settled %d tasks: %d workers paid, %d rejected"
        % (len(outcomes), paid, 2 * len(outcomes) - paid),
        settled=len(outcomes),
        paid=paid,
    )
    extras: dict = {}
    for outcome in outcomes:
        for operation, gas in outcome.gas.extras.items():
            extras[operation] = extras.get(operation, 0) + gas
    _log.info(render_gas_extras(extras, pricing=PAPER_PRICING))
    _write_metrics(args)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    """Run a seeded marketplace workload scenario; print its report."""
    from repro.sim import SCENARIO_PRESETS, preset, run_scenario

    scenario = preset(args.preset, seed=args.seed, tasks=args.tasks)
    if args.prover_procs is not None or args.verifier_procs is not None:
        from dataclasses import replace

        scenario = replace(
            scenario,
            prover_procs=args.prover_procs
            if args.prover_procs is not None
            else scenario.prover_procs,
            verifier_procs=args.verifier_procs
            if args.verifier_procs is not None
            else scenario.verifier_procs,
        )
    store = None
    if args.state_dir:
        from repro.store import NodeStore

        if NodeStore.exists(args.state_dir):
            _log.error(
                "error: %s already holds node state — a scenario runs "
                "from genesis; pick a fresh --state-dir or `node resume` "
                "the existing one" % args.state_dir,
                state_dir=args.state_dir,
            )
            return 2
        store = NodeStore.init(args.state_dir)
    elif args.checkpoint_every:
        _log.error("error: --checkpoint-every needs --state-dir")
        return 2
    try:
        report = run_scenario(
            scenario, store=store, checkpoint_every=args.checkpoint_every
        )
    except BaseException:
        # A killed run with checkpoints is exactly what `node resume`
        # is for — keep it.  But a directory holding nothing resumable
        # would only block the identical retry with "already holds
        # node state", so clean it up.
        if store is not None and not store.manifest().get("checkpoints"):
            import shutil

            shutil.rmtree(args.state_dir, ignore_errors=True)
        raise
    report.check_invariants()

    _log.info(render_table(
        ["metric", "value"],
        [
            ["tasks published", report.tasks_published],
            ["tasks settled", report.tasks_settled],
            ["tasks cancelled", report.tasks_cancelled],
            ["blocks", report.blocks],
            ["blocks per task", "%.2f" % report.blocks_per_task],
            ["settled per block", "%.2f" % report.settled_per_block],
            ["transactions", report.total_transactions],
            ["total gas", "%dk" % (report.total_gas // 1000)],
            ["gas per settled task",
             "%dk" % (int(report.gas_per_settled_task) // 1000)],
            ["peak mempool depth", report.peak_mempool_depth],
            ["enrollments", report.enrollments],
            ["dropped worker steps", report.dropped_steps],
        ],
        title="Scenario %r (seed %d)" % (scenario.name, scenario.seed),
    ))
    latency = report.commit_to_finalize
    _log.info("commit->finalize latency: min %s, mean %s, max %s blocks"
              % (latency["min"], latency["mean"], latency["max"]))
    _log.info(render_gas_extras(report.gas_extras, pricing=PAPER_PRICING))
    top = sorted(
        report.worker_earnings.items(), key=lambda pair: (-pair[1], pair[0])
    )[:5]
    _log.info(render_table(
        ["worker", "coins earned"], top, title="Top earners",
    ))
    _emit_report(report, args)
    _write_metrics(args)
    if store is not None:
        _log.info("node state saved to %s" % args.state_dir,
                  state_dir=args.state_dir)
    return 0


def _emit_report(report, args: argparse.Namespace) -> None:
    """The shared --json/--out tail of the report-producing commands."""
    if args.json:
        # The canonical JSON report is program output, not a log line:
        # it must stay byte-identical under any logging mode.
        print(report.to_json())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
            handle.write("\n")
        _log.info("report written to %s" % args.out, out=args.out)


def _write_metrics(args: argparse.Namespace) -> None:
    """The shared --metrics-out tail: snapshot the registry to a file."""
    if getattr(args, "metrics_out", None):
        from repro.obs.registry import REGISTRY
        from repro.reporting.metricsfold import write_snapshot

        write_snapshot(args.metrics_out, REGISTRY.collect())
        _log.info("metrics snapshot written to %s" % args.metrics_out,
                  metrics_out=args.metrics_out)


def _cmd_node_init(args: argparse.Namespace) -> int:
    """Create a fresh node state directory (genesis snapshot)."""
    from repro.dragoon import Dragoon
    from repro.store import NodeStore

    dragoon = Dragoon()
    for grant in args.fund or []:
        label, _, coins = grant.partition("=")
        if not coins.isdigit():
            _log.error("error: --fund takes label=coins, got %r" % grant)
            return 2
        dragoon.fund(label, int(coins))
    store = NodeStore.init(
        args.state_dir, chain=dragoon.chain, extra=dragoon.node_state()
    )
    manifest = store.manifest()
    _log.info("initialized node state at %s" % args.state_dir,
              state_dir=args.state_dir)
    _log.info("  height     : %d" % manifest["height"])
    _log.info("  state_root : %s" % manifest["state_root"])
    return 0


def _cmd_node_status(args: argparse.Namespace) -> int:
    """Load (snapshot + WAL replay) and report the node's state."""
    from repro.store import NodeStore

    status = NodeStore.open(args.state_dir).status()
    rows = [
        ["height", status["height"]],
        ["snapshot height", status["snapshot_height"]],
        ["WAL records replayed", status["wal_records"]],
        ["state root", status["state_root"][:32] + "..."],
        ["accounts", status["accounts"]],
        ["contracts", status["contracts"]],
        ["events (total)", status["events"]],
        ["events pruned", status["events_pruned"]],
        ["total gas", "%dk" % (status["total_gas"] // 1000)],
        ["checkpoints", ", ".join(map(str, status["checkpoints"])) or "-"],
    ]
    _log.info(render_table(["field", "value"], rows,
                           title="Node %s" % args.state_dir))
    return 0


def _cmd_node_resume(args: argparse.Namespace) -> int:
    """Resume an interrupted simulation checkpoint to completion."""
    from repro.sim.runner import resume_scenario

    report = resume_scenario(args.state_dir, step=args.step)
    report.check_invariants()
    _log.info(render_table(
        ["metric", "value"],
        [
            ["tasks published", report.tasks_published],
            ["tasks settled", report.tasks_settled],
            ["tasks cancelled", report.tasks_cancelled],
            ["blocks", report.blocks],
            ["total gas", "%dk" % (report.total_gas // 1000)],
        ],
        title="Resumed scenario %r (seed %d)" % (report.scenario, report.seed),
    ))
    _emit_report(report, args)
    return 0


def _proof_key(args: argparse.Namespace):
    """Resolve the selector flags to one trie key (or None + error)."""
    from repro.ledger.accounts import Address
    from repro.store import trie

    selectors = [
        args.account is not None,
        args.task is not None,
        args.entry is not None,
        args.meta is not None,
        args.key is not None,
    ]
    if sum(selectors) != 1:
        _log.error(
            "error: pick exactly one of --account / --task --slot / "
            "--entry / --meta / --key"
        )
        return None
    if args.account is not None:
        return trie.account_key(Address.from_label(args.account))
    if args.task is not None:
        if args.slot is None:
            _log.error("error: --task needs --slot")
            return None
        return trie.storage_key(args.task, args.slot)
    if args.entry is not None:
        return trie.entry_key(args.entry)
    if args.meta is not None:
        return trie.meta_key(args.meta)
    try:
        return bytes.fromhex(args.key)
    except ValueError:
        _log.error("error: --key must be hex")
        return None


def _cmd_node_proof(args: argparse.Namespace) -> int:
    """Produce (and locally check) a state proof from a state directory.

    The offline twin of the ``get_proof`` RPC method: load the node,
    mint the current commitment header, prove the selected key, verify
    the proof against the header's root, and print both in portable
    form — everything a light client needs to check the same fact.
    """
    from repro.rpc import wire
    from repro.store import NodeStore, codec, trie

    key = _proof_key(args)
    if key is None:
        return 2
    chain, _ = NodeStore.open(args.state_dir).load(apply_runtime=False)
    tracker = trie.chain_state_trie(chain)
    tracker.track_headers = True
    header = tracker.ensure_header(chain)
    proof = tracker.prove(chain, key)
    present, value = trie.verify_proof(header.state_root, key, proof)
    rows = [
        ["key", key.hex()],
        ["present", "yes" if present else "no (non-membership proven)"],
        ["value", repr(codec.decode(value)) if present else "-"],
        ["state root", header.state_root.hex()],
        ["header height", header.height],
        ["header hash", header.header_hash().hex()],
        ["proof steps", len(proof["steps"])],
        ["proof (packed)", wire.pack(proof)],
        ["header (packed)", wire.pack(trie.header_to_data(header))],
    ]
    _log.info(render_table(["field", "value"], rows,
                           title="State proof from %s" % args.state_dir))
    return 0


def _cmd_light_verify(args: argparse.Namespace) -> int:
    """Verify chain facts from an untrusted node: headers + proofs only.

    Connects a :class:`repro.lightclient.LightClient` to ``--url``,
    syncs and hash-checks the header chain against ``--trust`` (or
    adopts the anchor trust-on-first-use, printing it so the next
    invocation can pin it), then proves whatever was asked: an account
    balance (``--balance``), a task's phase (``--task``), and a
    settlement receipt (``--task`` + ``--worker``).
    """
    from repro.ledger.accounts import Address
    from repro.lightclient import LightClient
    from repro.rpc import HttpTransport, RpcChain
    from repro.store.trie import ProofError

    trust = bytes.fromhex(args.trust) if args.trust else None
    transport = HttpTransport(args.url)
    try:
        client = LightClient(RpcChain(transport), trust=trust)
        tip = client.sync()
        rows = [
            ["node", args.url],
            ["verified headers", len(client.headers)],
            ["tip height", tip.height],
            ["tip state root", tip.state_root.hex()],
            ["trust anchor", client.headers[0].header_hash().hex()
             + ("" if args.trust else "  (adopted; pin with --trust)")],
        ]
        if args.balance:
            address = Address.from_label(args.balance)
            rows.append(
                ["balance %r" % args.balance, client.balance_of(address)]
            )
        if args.task:
            rows.append(["task %r phase" % args.task,
                         client.task_phase(args.task)])
            if args.worker:
                receipt = client.verify_settlement(
                    args.task, Address.from_label(args.worker)
                )
                rows.append(["worker %r verdict" % args.worker,
                             receipt["verdict"]])
                rows.append(["worker %r payout" % args.worker,
                             receipt["amount"]])
        elif args.worker:
            _log.error("error: --worker needs --task")
            return 2
        _log.info(render_table(["field", "value"], rows,
                               title="Light-client verification"))
        return 0
    except ProofError as exc:
        _log.error("VERIFICATION FAILED: %s" % exc)
        return 1
    finally:
        transport.close()


def _cmd_node_rpc_serve(args: argparse.Namespace) -> int:
    """Serve a node's JSON-RPC front-end over HTTP until interrupted.

    An existing ``--state-dir`` is resumed (snapshot + WAL replay); a
    fresh one is initialized at genesis.  Every block mined through the
    RPC surface is journalled to the WAL, and the final state is
    snapshotted on shutdown, so the served marketplace lives across
    invocations exactly like ``serve --state-dir``.

    ``--async`` swaps the thread-per-connection front-end for the
    asyncio one (persistent connections and ``chain_subscribe``
    server-push streams); ``--admin-token``/``--submit-token`` lock the
    mutating method families behind envelope auth tokens.
    """
    from repro.rpc.server import RpcAuth, RpcHttpServer, RpcNode
    from repro.rpc.wire import PROTOCOL_VERSION
    from repro.store import NodeStore

    if NodeStore.exists(args.state_dir):
        store = NodeStore.open(args.state_dir)
        chain, meta = store.load(apply_runtime=True)
        _log.info(
            "resumed node at height %d (state_root %s...)"
            % (chain.height, meta["state_root"].hex()[:16]),
            height=chain.height,
            state_dir=args.state_dir,
        )
    else:
        store = NodeStore.init(args.state_dir)
        chain, meta = store.load(apply_runtime=True)
        _log.info("initialized fresh node state in %s" % args.state_dir,
                  state_dir=args.state_dir)
    chain.attach_store(store)
    auth = None
    if args.admin_token or args.submit_token:
        auth = RpcAuth(
            admin_tokens=tuple(args.admin_token),
            submit_tokens=tuple(args.submit_token),
        )
    verifier_pool = None
    if args.verifier_procs is not None:
        from repro.parallel import VerifierPool

        verifier_pool = VerifierPool(args.verifier_procs)
    node = RpcNode(
        chain=chain, store=store, auth=auth, verifier_pool=verifier_pool
    )

    def _announce(server) -> None:
        _log.info(
            "rpc node listening on http://%s:%d/rpc (%d methods, "
            "protocol v%d%s%s) — Ctrl-C to stop"
            % (server.host, server.port, len(node._methods),
               PROTOCOL_VERSION,
               ", async" if args.use_async else "",
               ", auth" if auth is not None else ""),
            host=server.host,
            port=server.port,
        )

    if args.use_async:
        from repro.rpc.aserver import AsyncRpcServer

        server = AsyncRpcServer(
            node, host=args.host, port=args.port, ready_callback=_announce
        )
    else:
        server = RpcHttpServer(node, host=args.host, port=args.port)
        _announce(server)

    # SIGTERM shuts down as cleanly as Ctrl-C: a shell-backgrounded
    # server (CI, process managers) starts with SIGINT ignored, so
    # graceful stop must not depend on it.  (The async server installs
    # its own loop-level handlers for both signals while it runs.)
    import signal

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    previous_sigterm = signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous_sigterm)
        # Both front-ends stop accepting and release the socket here —
        # the snapshot below must be the last word on this state dir.
        server.shutdown()
        if verifier_pool is not None:
            verifier_pool.close()
        root = store.save(chain)
        _log.info(
            "node state saved to %s (height %d, state_root %s...)"
            % (args.state_dir, chain.height, root.hex()[:16]),
            state_dir=args.state_dir,
            height=chain.height,
        )
    return 0


def _parse_axis_value(text: str):
    try:
        return int(text)
    except ValueError:
        try:
            return float(text)
        except ValueError:
            raise SystemExit("error: axis value %r is not a number" % text)


def _load_sweep_spec(args: argparse.Namespace):
    from repro.reporting import sweep as sweeplib

    if args.spec:
        with open(args.spec, "r", encoding="utf-8") as handle:
            return sweeplib.spec_from_json(handle.read())
    axes = []
    for item in args.axis or []:
        axis, _, values = item.partition("=")
        if not values:
            raise SystemExit(
                "error: --axis takes name=v1,v2,..., got %r" % item
            )
        axes.append(
            (axis, tuple(_parse_axis_value(v) for v in values.split(",")))
        )
    if not axes:
        raise SystemExit("error: report sweep needs --spec or --axis")
    return sweeplib.SweepSpec(
        name=args.name,
        preset=args.preset,
        seed=args.seed,
        tasks=args.tasks,
        axes=tuple(axes),
        checkpoint_every=args.checkpoint_every,
    )


def _cmd_report_sweep(args: argparse.Namespace) -> int:
    """Run the scenario grid, then render the artifact set.

    The out dir afterwards holds the canonical spec, one record per
    cell, tables, plots, and the sha256 manifest — byte-identical for
    the same spec on any host, at any ``--procs``, so two runs can be
    compared with ``diff -r`` (that is exactly what CI does).
    """
    from repro.reporting import sweep as sweeplib
    from repro.reporting.render import render_reports

    spec = _load_sweep_spec(args)
    records = sweeplib.run_sweep(
        spec,
        args.out,
        work_dir=args.work_dir,
        procs=args.procs,
        force=args.force,
        progress=lambda message: _log.info(message),
    )
    manifest = render_reports(
        args.out,
        records,
        sweeplib.spec_to_json(spec),
        sweeplib.grid_hash(spec),
        bench_dir=args.bench_dir,
    )
    _log.info(
        "%d cells, %d artifacts under %s (grid %s...)"
        % (len(records), len(manifest["artifacts"]), args.out,
           manifest["grid"][:16]),
        out=args.out,
        grid=manifest["grid"],
    )
    return 0


def _fmt_ms(seconds: float) -> str:
    return "%.2fms" % (seconds * 1000.0)


def _cmd_report_trace(args: argparse.Namespace) -> int:
    """Analyze one JSONL span trace (see ``--trace`` on serve/simulate)."""
    from repro.reporting import traces

    analysis = traces.analyze_file(args.file)
    if analysis.truncated:
        _log.info("note: torn tail cut — analyzing the intact prefix")
    rows = [
        [name, stats.count, _fmt_ms(stats.total),
         _fmt_ms(stats.to_dict().get("mean", 0.0)),
         _fmt_ms(stats.percentiles()["p50"]),
         _fmt_ms(stats.percentiles()["p90"]),
         _fmt_ms(stats.percentiles()["p99"])]
        for name, stats in sorted(analysis.by_name.items())
    ]
    _log.info(render_table(
        ["span", "count", "total", "mean", "p50", "p90", "p99"], rows,
        title="Latency by span (%s)" % args.file,
    ))
    if analysis.by_phase:
        rows = [
            [phase, stats.count, _fmt_ms(stats.total),
             _fmt_ms(stats.percentiles()["p50"]),
             _fmt_ms(stats.percentiles()["p99"])]
            for phase, stats in sorted(analysis.by_phase.items())
        ]
        _log.info(render_table(
            ["phase", "count", "total", "p50", "p99"], rows,
            title="Session phases",
        ))
    path = analysis.critical_path()
    if path:
        _log.info(render_table(
            ["depth", "span", "duration"],
            [[i, hop["name"], _fmt_ms(hop["duration"])]
             for i, hop in enumerate(path)],
            title="Critical path",
        ))
    pool = analysis.utilization()
    if pool["spans"]:
        _log.info(
            "pool: %d jobs, peak %d in flight, busy %s, mean "
            "concurrency %.2f"
            % (pool["spans"], pool["peak"], _fmt_ms(pool["busy_seconds"]),
               pool["mean"])
        )
    if analysis.worker:
        rows = [
            [pid, stats.count, _fmt_ms(stats.total)]
            for pid, stats in sorted(analysis.worker.items())
        ]
        _log.info(render_table(
            ["pid", "spans", "worker-clock total"], rows,
            title="Worker attribution (per-process clocks)",
        ))
    if args.json:
        import json as _json

        print(_json.dumps(analysis.to_dict(), sort_keys=True))
    if args.out:
        import json as _json

        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(
                _json.dumps(analysis.to_dict(), sort_keys=True, indent=2)
            )
            handle.write("\n")
        _log.info("analysis written to %s" % args.out, out=args.out)
    return 0


def _cmd_report_metrics(args: argparse.Namespace) -> int:
    """Diff, merge, or project registry snapshots (--metrics-out files)."""
    import json as _json

    from repro.reporting import metricsfold

    snapshots = [metricsfold.read_snapshot(path) for path in args.files]
    if args.diff:
        if len(snapshots) != 2:
            _log.error("error: --diff takes exactly two snapshots "
                       "(before after)")
            return 2
        folded = metricsfold.diff_snapshots(snapshots[0], snapshots[1])
    elif len(snapshots) == 1:
        folded = snapshots[0]
    else:
        folded = metricsfold.merge_snapshots(snapshots)
    if args.project:
        projected = metricsfold.deterministic_projection(
            folded, prefixes=tuple(args.prefix) or None
        )
        text = _json.dumps(projected, sort_keys=True, indent=2) + "\n"
    else:
        text = metricsfold.snapshot_to_json(folded)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        _log.info("snapshot written to %s" % args.out, out=args.out)
    else:
        print(text, end="")
    return 0


def _cmd_report_render(args: argparse.Namespace) -> int:
    """Re-render (or --check) the artifact set from on-disk cell records."""
    import json as _json
    import os

    from repro.reporting import sweep as sweeplib
    from repro.reporting.render import render_reports, verify_manifest

    if args.check:
        manifest = verify_manifest(args.dir)
        _log.info(
            "manifest verified: %d artifacts, grid %s..."
            % (len(manifest["artifacts"]), manifest["grid"][:16])
        )
        return 0
    with open(os.path.join(args.dir, "sweep.json"), encoding="utf-8") as h:
        spec = sweeplib.spec_from_json(h.read())
    cells_dir = os.path.join(args.dir, "cells")
    records = {}
    for name in sorted(os.listdir(cells_dir)):
        if name.endswith(".json"):
            with open(os.path.join(cells_dir, name), encoding="utf-8") as h:
                record = _json.load(h)
            records[record["cell"]] = record
    manifest = render_reports(
        args.dir,
        records,
        sweeplib.spec_to_json(spec),
        sweeplib.grid_hash(spec),
        bench_dir=args.bench_dir,
    )
    _log.info(
        "re-rendered %d artifacts under %s"
        % (len(manifest["artifacts"]), args.dir),
        out=args.dir,
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Dragoon reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("demo", help="run a small HIT end to end").set_defaults(
        func=_cmd_demo
    )
    sub.add_parser("imagenet", help="the paper's SVI ImageNet task").set_defaults(
        func=_cmd_imagenet
    )
    sub.add_parser("fees", help="Table III handling-fee reproduction").set_defaults(
        func=_cmd_fees
    )
    sub.add_parser("audit", help="gold-standard audit / reputations").set_defaults(
        func=_cmd_audit
    )
    sub.add_parser("incentives", help="worker strategy utilities").set_defaults(
        func=_cmd_incentives
    )
    serve = sub.add_parser(
        "serve",
        help="run staggered tasks through the session engine with a "
        "per-block event/phase trace",
    )
    serve.add_argument("--tasks", type=int, default=4,
                       help="number of arriving tasks (default 4)")
    serve.add_argument("--stagger", type=int, default=1,
                       help="blocks between consecutive arrivals (default 1)")
    serve.add_argument("--seed", type=int, default=0,
                       help="seed for worker-answer sampling and all "
                       "protocol randomness (default 0; same seed, "
                       "same output)")
    serve.add_argument("--stragglers", type=int, default=0,
                       help="give the first N tasks a worker who reveals "
                       "one period late (default 0)")
    serve.add_argument("--state-dir", default=None,
                       help="persist the node here: an existing state dir "
                       "is resumed (the marketplace lives across "
                       "invocations), a fresh one is initialized")
    serve.add_argument("--prover-procs", type=int, default=None, metavar="N",
                       help="dispatch proving (answer encryption, proofs) "
                       "to N pool processes; 0 runs the pool path inline "
                       "(default: no pool, legacy serial path)")
    serve.add_argument("--verifier-procs", type=int, default=None,
                       metavar="N",
                       help="chunk batched verification (MSM, pairings) "
                       "across N pool processes (default: no pool)")
    serve.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="write a MetricsRegistry snapshot (canonical "
                       "JSON) after the run; fold with `report metrics`")
    add_logging_flags(serve)
    serve.set_defaults(func=_cmd_serve)
    simulate = sub.add_parser(
        "simulate",
        help="run a seeded marketplace workload scenario (repro.sim) "
        "and print its SimulationReport",
    )
    simulate.add_argument(
        "--preset", default="poisson",
        help="scenario preset: poisson, burst, diurnal, closed-loop, "
        "adversarial (default poisson)",
    )
    simulate.add_argument("--seed", type=int, default=0,
                          help="scenario seed (default 0)")
    simulate.add_argument("--tasks", type=int, default=None,
                          help="resize the preset to ~N tasks")
    simulate.add_argument("--json", action="store_true",
                          help="also print the canonical JSON report")
    simulate.add_argument("--out", default=None, metavar="FILE",
                          help="write the canonical JSON report to FILE")
    simulate.add_argument("--state-dir", default=None,
                          help="persist chain state (WAL + snapshots) to "
                          "this fresh directory")
    simulate.add_argument("--checkpoint-every", type=int, default=0,
                          metavar="N",
                          help="write a resumable checkpoint every N blocks "
                          "(requires --state-dir; resume with `node resume`)")
    simulate.add_argument("--prover-procs", type=int, default=None,
                          metavar="N",
                          help="run the scenario with an N-process prover "
                          "pool (0 = pool path inline; same bytes for any "
                          "N, see repro.parallel)")
    simulate.add_argument("--verifier-procs", type=int, default=None,
                          metavar="N",
                          help="run the scenario with an N-process verifier "
                          "pool chunking batched MSM/pairing checks")
    simulate.add_argument("--metrics-out", default=None, metavar="FILE",
                          help="write a MetricsRegistry snapshot (canonical "
                          "JSON) after the run; fold with `report metrics`")
    add_logging_flags(simulate)
    simulate.set_defaults(func=_cmd_simulate)

    report = sub.add_parser(
        "report",
        help="telemetry analytics: sweep a scenario grid, analyze "
        "traces, fold metrics, render byte-reproducible artifacts",
    )
    report_sub = report.add_subparsers(dest="report_command", required=True)
    report_sweep = report_sub.add_parser(
        "sweep",
        help="run a declarative scenario grid and render its report "
        "artifacts (tables, plots, sha256 manifest)",
    )
    report_sweep.add_argument("--spec", default=None, metavar="FILE",
                              help="sweep spec JSON (see reports/sweep.json; "
                              "overrides the flag-built grid)")
    report_sweep.add_argument("--name", default="sweep",
                              help="grid name for a flag-built spec")
    report_sweep.add_argument("--preset", default="poisson",
                              help="base scenario preset (default poisson)")
    report_sweep.add_argument("--seed", type=int, default=0,
                              help="base scenario seed (default 0)")
    report_sweep.add_argument("--tasks", type=int, default=None,
                              help="resize the preset to ~N tasks")
    report_sweep.add_argument("--axis", action="append", metavar="NAME=V,V",
                              help="one grid axis, e.g. --axis "
                              "budget=100,140 --axis accuracy=0.7,0.9 "
                              "(axes: reward, budget, audit_threshold, "
                              "accuracy, stragglers, dropouts, seed)")
    report_sweep.add_argument("--checkpoint-every", type=int, default=0,
                              metavar="N",
                              help="checkpoint each cell every N blocks; an "
                              "interrupted sweep re-run resumes those cells")
    report_sweep.add_argument("--out", required=True, metavar="DIR",
                              help="artifact directory (byte-reproducible)")
    report_sweep.add_argument("--work-dir", default=None, metavar="DIR",
                              help="scratch for traces/state (default "
                              "OUT.work; not byte-reproducible)")
    report_sweep.add_argument("--procs", type=int, default=0, metavar="N",
                              help="fan cells across N processes "
                              "(0 = inline; records identical either way)")
    report_sweep.add_argument("--force", action="store_true",
                              help="re-run cells whose records already "
                              "exist")
    report_sweep.add_argument("--bench-dir", default=None, metavar="DIR",
                              help="fold benchmarks/results/*.json records "
                              "into the artifact set")
    add_logging_flags(report_sweep)
    report_sweep.set_defaults(func=_cmd_report_sweep)
    report_trace = report_sub.add_parser(
        "trace",
        help="analyze a --trace JSONL span file: latency percentiles, "
        "critical path, pool utilization, worker attribution",
    )
    report_trace.add_argument("file", help="the JSONL trace file")
    report_trace.add_argument("--json", action="store_true",
                              help="also print the full analysis as JSON")
    report_trace.add_argument("--out", default=None, metavar="FILE",
                              help="write the full analysis JSON to FILE")
    add_logging_flags(report_trace)
    report_trace.set_defaults(func=_cmd_report_trace)
    report_metrics = report_sub.add_parser(
        "metrics",
        help="diff/merge/project registry snapshots (--metrics-out files)",
    )
    report_metrics.add_argument("files", nargs="+",
                                help="snapshot files; one is shown as-is, "
                                "several are merged (or --diff'd)")
    report_metrics.add_argument("--diff", action="store_true",
                                help="subtract the first snapshot from the "
                                "second (exactly two files)")
    report_metrics.add_argument("--project", action="store_true",
                                help="emit the deterministic projection "
                                "(counters + histogram counts) instead of "
                                "the full snapshot")
    report_metrics.add_argument("--prefix", action="append", default=[],
                                metavar="P",
                                help="restrict --project to family names "
                                "with this prefix (repeatable)")
    report_metrics.add_argument("--out", default=None, metavar="FILE",
                                help="write to FILE instead of stdout")
    add_logging_flags(report_metrics)
    report_metrics.set_defaults(func=_cmd_report_metrics)
    report_render = report_sub.add_parser(
        "render",
        help="re-render artifacts from a sweep dir's cell records, or "
        "--check its manifest hashes",
    )
    report_render.add_argument("--dir", required=True, metavar="DIR",
                               help="a `report sweep` output directory")
    report_render.add_argument("--bench-dir", default=None, metavar="DIR",
                               help="fold benchmarks/results/*.json records "
                               "into the artifact set")
    report_render.add_argument("--check", action="store_true",
                               help="verify every artifact against "
                               "manifest.json instead of rewriting")
    add_logging_flags(report_render)
    report_render.set_defaults(func=_cmd_report_render)

    node = sub.add_parser(
        "node",
        help="manage a persistent node state directory "
        "(init / status / resume)",
    )
    node_sub = node.add_subparsers(dest="node_command", required=True)
    node_init = node_sub.add_parser(
        "init", help="create a fresh state directory (genesis snapshot)"
    )
    node_init.add_argument("--state-dir", required=True)
    node_init.add_argument("--fund", action="append", metavar="LABEL=COINS",
                           help="open a funded account (repeatable)")
    node_init.set_defaults(func=_cmd_node_init)
    node_status = node_sub.add_parser(
        "status", help="load (snapshot + WAL replay) and report the state"
    )
    node_status.add_argument("--state-dir", required=True)
    node_status.set_defaults(func=_cmd_node_status)
    node_resume = node_sub.add_parser(
        "resume",
        help="resume an interrupted simulation checkpoint to completion",
    )
    node_resume.add_argument("--state-dir", required=True)
    node_resume.add_argument("--step", type=int, default=None,
                             help="resume from this checkpoint step "
                             "(default: the latest)")
    node_resume.add_argument("--json", action="store_true",
                             help="also print the canonical JSON report")
    node_resume.add_argument("--out", default=None, metavar="FILE",
                             help="write the canonical JSON report to FILE")
    node_resume.set_defaults(func=_cmd_node_resume)
    node_proof = node_sub.add_parser(
        "proof",
        help="produce a Merkle state proof (and its commitment header) "
        "from a state directory",
    )
    node_proof.add_argument("--state-dir", required=True)
    node_proof.add_argument("--account", default=None, metavar="LABEL",
                            help="prove LABEL's ledger account")
    node_proof.add_argument("--task", default=None, metavar="NAME",
                            help="prove a storage slot of task contract "
                            "NAME (with --slot)")
    node_proof.add_argument("--slot", default=None, metavar="SLOT",
                            help="the storage slot for --task")
    node_proof.add_argument("--entry", type=int, default=None,
                            metavar="INDEX",
                            help="prove ledger journal entry INDEX")
    node_proof.add_argument("--meta", default=None, metavar="NAME",
                            help="prove a chain metadata key "
                            "(schema/period/scheduler/fees/event_base)")
    node_proof.add_argument("--key", default=None, metavar="HEX",
                            help="prove a raw trie key (hex)")
    node_proof.set_defaults(func=_cmd_node_proof)
    light = sub.add_parser(
        "light-verify",
        help="verify balances / task phases / settlement receipts from "
        "an untrusted node via headers + Merkle proofs",
    )
    light.add_argument("--url", required=True,
                       help="the node's RPC endpoint (http://host:port)")
    light.add_argument("--trust", default=None, metavar="HEXHASH",
                       help="pinned hash of the node's anchor header "
                       "(default: adopt trust-on-first-use and print it)")
    light.add_argument("--balance", default=None, metavar="LABEL",
                       help="verify LABEL's balance")
    light.add_argument("--task", default=None, metavar="NAME",
                       help="verify task contract NAME's phase")
    light.add_argument("--worker", default=None, metavar="LABEL",
                       help="with --task: verify LABEL's settlement "
                       "receipt (verdict + payout)")
    light.set_defaults(func=_cmd_light_verify)
    node_rpc = node_sub.add_parser(
        "rpc-serve",
        help="serve this node's JSON-RPC front-end over HTTP "
        "(out-of-process clients; see repro.rpc)",
    )
    node_rpc.add_argument("--state-dir", required=True)
    node_rpc.add_argument("--host", default="127.0.0.1",
                          help="bind address (default 127.0.0.1)")
    node_rpc.add_argument("--port", type=int, default=8545,
                          help="TCP port; 0 binds an ephemeral port and "
                          "prints it (default 8545)")
    node_rpc.add_argument("--async", dest="use_async", action="store_true",
                          help="serve with the asyncio front-end: "
                          "persistent connections and chain_subscribe "
                          "server-push event streams")
    node_rpc.add_argument("--admin-token", action="append", default=[],
                          metavar="TOKEN",
                          help="auth token for admin methods (chain_mine, "
                          "node_checkpoint, node_prune); admin tokens also "
                          "cover submissions; repeatable")
    node_rpc.add_argument("--submit-token", action="append", default=[],
                          metavar="TOKEN",
                          help="auth token for submission methods (tx_*, "
                          "swarm_put); repeatable")
    node_rpc.add_argument("--verifier-procs", type=int, default=None,
                          metavar="N",
                          help="verify batched proofs through an N-process "
                          "pool during mutating dispatches; node_status "
                          "then reports per-worker cache stats")
    add_logging_flags(node_rpc)
    node_rpc.set_defaults(func=_cmd_node_rpc_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(
        level=getattr(args, "log_level", "info"),
        json_mode=getattr(args, "log_json", False),
    )
    # --trace scopes a JSONL span tracer to the whole command: every
    # block mine, session phase, pool job, and RPC dispatch inside lands
    # in the file; the run's outputs stay byte-identical either way.
    tracing = (
        trace_to(args.trace)
        if getattr(args, "trace", None)
        else contextlib.nullcontext()
    )
    # SIGTERM unwinds like Ctrl-C so the trace_to exit below flushes
    # and closes the span file — a terminated run leaves only complete
    # lines, never a span torn mid-write.  (rpc-serve installs its own
    # handler while serving; it restores this one on the way out.)
    import signal

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    previous_sigterm = None
    try:
        previous_sigterm = signal.signal(signal.SIGTERM, _terminate)
    except ValueError:
        pass  # not the main thread (tests driving main() directly)
    try:
        with tracing:
            return args.func(args)
    except KeyboardInterrupt:
        _log.error("interrupted")
        return 130
    finally:
        if previous_sigterm is not None:
            signal.signal(signal.SIGTERM, previous_sigterm)


if __name__ == "__main__":
    sys.exit(main())
