"""Drive staggered HIT sessions against any chain front-end.

The session engine does not care whether its chain is the in-process
:class:`~repro.chain.chain.Chain` or an :class:`~repro.rpc.client.RpcChain`
speaking to a node — both expose the same surface.  :func:`run_hits`
exploits that: one scenario description, one driver, two (or more)
transports.  The RPC contract tests run the *same* seeded scenario
through both front-ends and compare receipts, gas, and ``state_root``
byte for byte; ``benchmarks/bench_rpc.py`` runs it against loopback and
a localhost socket to price the boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.protocol import ProtocolOutcome
from repro.core.session import SessionConfig, SessionEngine
from repro.errors import ProtocolError


@dataclass
class HitSpec:
    """One task of a front-end-agnostic scenario (cf. ``TaskArrival``)."""

    at_block: int
    requester_label: str
    task: object
    worker_answers: Sequence[Sequence[int]]
    worker_labels: Optional[Sequence[str]] = None
    evaluation: str = "sequential"


def run_hits(
    chain,
    swarm,
    specs: Sequence[HitSpec],
    requester_factory: Callable,
    worker_factory: Callable,
    max_blocks: int = 512,
) -> List[ProtocolOutcome]:
    """Run ``specs`` through a session engine over the given front-end.

    ``requester_factory(label, task)`` and ``worker_factory(label,
    answers)`` build the protocol clients — in-process client classes
    bound to ``chain``/``swarm``, or the RPC client classes bound to a
    transport.  Outcomes come back in spec order.
    """
    if not specs:
        return []
    engine = SessionEngine(chain=chain, swarm=swarm)
    order = sorted(range(len(specs)), key=lambda index: specs[index].at_block)
    sessions: dict = {}
    position = 0
    step = 0
    while position < len(order) or not engine.all_done or not sessions:
        while (
            position < len(order)
            and specs[order[position]].at_block <= step
        ):
            index = order[position]
            spec = specs[index]
            requester = requester_factory(spec.requester_label, spec.task)
            session = engine.publish_session(
                requester, config=SessionConfig(evaluation=spec.evaluation)
            )
            labels = list(
                spec.worker_labels
                if spec.worker_labels is not None
                else [
                    "%s/worker-%d" % (session.contract_name, slot)
                    for slot in range(len(spec.worker_answers))
                ]
            )
            if len(labels) != len(spec.worker_answers):
                raise ProtocolError("worker label count mismatch")
            for label, answers in zip(labels, spec.worker_answers):
                session.add_worker(worker_factory(label, list(answers)))
            sessions[index] = session
            position += 1
        if step >= max_blocks:
            raise ProtocolError(
                "%d sessions still open after %d blocks: %s"
                % (
                    len(engine.active_sessions()),
                    step,
                    engine.describe_stuck(),
                )
            )
        engine.step()
        step += 1
    return [sessions[index].outcome() for index in range(len(specs))]
