"""The RPC wire format: JSON-RPC envelopes over the canonical codec.

The node's request/response surface is JSON-RPC 2.0 shaped — a JSON
object with ``method``/``params``/``id`` in, ``result`` or ``error``
out — but the *values* that cross the wire are not re-modelled in JSON.
Every rich value (addresses, proofs, ciphertexts, whole blocks) travels
as the hex of its :mod:`repro.store.codec` encoding, the same canonical
byte form the persistence layer hashes into ``state_root``.  One codec,
three jobs: disk, integrity anchor, wire.

Error taxonomy
--------------

Errors map **from** :mod:`repro.errors` onto JSON-RPC codes and back:

========================  =======  =====================================
code                      constant  meaning
========================  =======  =====================================
-32700                    PARSE_ERROR        request is not valid JSON
-32600                    INVALID_REQUEST    envelope is malformed
-32601                    METHOD_NOT_FOUND   unknown method name
-32602                    INVALID_PARAMS     wrong param types/shapes
-32603                    INTERNAL_ERROR     unexpected server fault
-32001                    OVERSIZED_REQUEST  request exceeds the size cap
-32002                    UNAUTHORIZED       method needs an auth token
-32020 .. -32027          family codes       one per library error family
-32000                    NODE_ERROR         other :class:`ReproError`
========================  =======  =====================================

Batch envelopes and push frames
-------------------------------

A JSON array of request objects is a **batch**: the node answers with
an array of responses in request order (``-32600`` for an empty one).
Server-push subscriptions reuse the same codec: each pushed frame is a
JSON-RPC *notification* (no ``id``) named :data:`PUSH_METHOD`, one
frame per line of an ``application/x-ndjson`` stream, carrying the
subscription id plus the same wire-shaped event records a
``chain_events`` page returns.

A family-coded error carries ``data = {"family", "kind"}`` where
``kind`` is the concrete exception class name; :func:`error_to_exception`
re-raises the *same* library exception client-side, so code written
against the in-process clients keeps its ``except`` clauses unchanged
over the wire.  Anything that cannot be mapped surfaces as
:class:`repro.errors.RpcError`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple, Type

from repro import errors as _errors
from repro.errors import ReproError, RpcError
from repro.storage.swarm import SwarmError
from repro.store.blockstore import StoreError
from repro.store import codec
from repro.store.codec import CodecError

#: Bump on any incompatible change to the method set or the wire format.
#: (Value-level compatibility is governed separately by
#: ``repro.store.codec.SCHEMA_VERSION``, which ``rpc_version`` reports.)
PROTOCOL_VERSION = 1

# -- JSON-RPC error codes -----------------------------------------------------

PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603
NODE_ERROR = -32000
OVERSIZED_REQUEST = -32001
UNAUTHORIZED = -32002

#: Method name of a server-push notification frame.
PUSH_METHOD = "rpc_push"

#: Library error families, most specific first (the server walks this
#: list with ``isinstance``, so a subclass — e.g. ``OutOfGas`` — lands
#: on its family's code with its concrete class name in ``data.kind``).
ERROR_FAMILIES: List[Tuple[Type[ReproError], int, str]] = [
    (_errors.CryptoError, -32020, "crypto"),
    (_errors.LedgerError, -32021, "ledger"),
    (_errors.ChainError, -32022, "chain"),
    (_errors.ProtocolError, -32023, "protocol"),
    (_errors.BaselineError, -32024, "baseline"),
    (CodecError, -32025, "codec"),
    (StoreError, -32026, "store"),
    (SwarmError, -32027, "swarm"),
]

#: Concrete classes a wire error may reconstruct into, by class name.
_RECONSTRUCTABLE: Dict[str, Type[ReproError]] = {
    name: value
    for name, value in vars(_errors).items()
    if isinstance(value, type) and issubclass(value, ReproError)
}
_RECONSTRUCTABLE["CodecError"] = CodecError
_RECONSTRUCTABLE["StoreError"] = StoreError
_RECONSTRUCTABLE["SwarmError"] = SwarmError
_RECONSTRUCTABLE.pop("RpcError", None)  # never nests: it wraps, not rides


class WireError(RpcError):
    """A value that could not be packed/unpacked for the wire."""


# -- value packing ------------------------------------------------------------


def pack(value: Any) -> str:
    """Hex of the canonical codec encoding (the wire form of any value)."""
    try:
        return codec.encode(value).hex()
    except CodecError as exc:
        raise WireError("value cannot cross the wire: %s" % exc) from exc


def unpack(text: Any) -> Any:
    """Inverse of :func:`pack`; rejects anything but canonical hex."""
    if not isinstance(text, str):
        raise WireError("packed value must be a hex string")
    try:
        raw = bytes.fromhex(text)
    except ValueError:
        raise WireError("packed value is not valid hex") from None
    try:
        return codec.decode(raw)
    except CodecError as exc:
        raise WireError("packed value is not canonical: %s" % exc) from exc


# -- envelopes ----------------------------------------------------------------


def serialize(value: Any) -> bytes:
    """One envelope value (or batch list of them) to wire bytes."""
    return json.dumps(value, sort_keys=True).encode("utf-8")


def request_value(
    method: str,
    params: Optional[Dict[str, Any]],
    request_id: Any,
    auth: Optional[str] = None,
) -> Dict[str, Any]:
    """One JSON-RPC request as a value (batches collect these)."""
    envelope: Dict[str, Any] = {
        "jsonrpc": "2.0",
        "id": request_id,
        "method": method,
    }
    if params:
        envelope["params"] = params
    if auth is not None:
        envelope["auth"] = auth
    return envelope


def request(
    method: str,
    params: Optional[Dict[str, Any]],
    request_id: int,
    auth: Optional[str] = None,
) -> bytes:
    """Serialize one JSON-RPC request."""
    return serialize(request_value(method, params, request_id, auth=auth))


def result_value(request_id: Any, result: Any) -> Dict[str, Any]:
    return {"jsonrpc": "2.0", "id": request_id, "result": result}


def error_value(
    request_id: Any, code: int, message: str, data: Any = None
) -> Dict[str, Any]:
    error: Dict[str, Any] = {"code": code, "message": message}
    if data is not None:
        error["data"] = data
    return {"jsonrpc": "2.0", "id": request_id, "error": error}


def success(request_id: Any, result: Any) -> bytes:
    return serialize(result_value(request_id, result))


def failure(
    request_id: Any, code: int, message: str, data: Any = None
) -> bytes:
    return serialize(error_value(request_id, code, message, data))


# -- server-push frames -------------------------------------------------------


def push_value(
    subscription_id: int, records: list, cursor: int, head: int
) -> Dict[str, Any]:
    """One push notification (no ``id`` — the server initiates it)."""
    return {
        "jsonrpc": "2.0",
        "method": PUSH_METHOD,
        "params": {
            "subscription": subscription_id,
            "records": records,
            "cursor": cursor,
            "head": head,
        },
    }


def is_push(envelope: Any) -> bool:
    """Is this parsed frame a server-push notification?"""
    return (
        isinstance(envelope, dict)
        and envelope.get("method") == PUSH_METHOD
        and "id" not in envelope
    )


def frame(value: Any) -> bytes:
    """One NDJSON frame: the serialized envelope plus its newline.

    ``json.dumps`` never emits a raw newline, so the delimiter is
    unambiguous; a reader splits the stream on ``\\n`` and parses each
    line on its own.
    """
    return serialize(value) + b"\n"


def exception_to_error(exc: ReproError) -> Tuple[int, str, Dict[str, Any]]:
    """Map a library exception to ``(code, message, data)`` for the wire."""
    for family, code, label in ERROR_FAMILIES:
        if isinstance(exc, family):
            return code, str(exc), {
                "family": label,
                "kind": type(exc).__name__,
            }
    return NODE_ERROR, str(exc), {"family": "repro", "kind": type(exc).__name__}


def error_to_exception(error: Dict[str, Any]) -> ReproError:
    """Rebuild the client-side exception for one wire error object."""
    code = error.get("code", 0)
    message = error.get("message", "rpc error")
    data = error.get("data")
    kind = data.get("kind") if isinstance(data, dict) else None
    cls = _RECONSTRUCTABLE.get(kind) if kind else None
    if cls is not None:
        try:
            return cls(message)
        except TypeError:  # exotic constructor signature: fall through
            pass
    return RpcError(message, code=code, data=data)
