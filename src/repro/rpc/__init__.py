"""The JSON-RPC node boundary: out-of-process clients, one wire format.

Layers (each importable on its own):

* :mod:`repro.rpc.wire` — envelopes, value packing over the canonical
  codec, and the error taxonomy mapped from :mod:`repro.errors`.
* :mod:`repro.rpc.server` — :class:`RpcNode` (transport-agnostic method
  registry around one chain, reader-writer locked, batch-aware, with
  optional :class:`RpcAuth` token gating) and :class:`RpcHttpServer`
  (stdlib ``http.server`` skin; the CLI's ``node rpc-serve``).
* :mod:`repro.rpc.aserver` — :class:`AsyncRpcServer`, the asyncio
  front-end over the same node: persistent connections and
  ``chain_subscribe`` server-push event streams
  (``node rpc-serve --async``).
* :mod:`repro.rpc.client` — :class:`RpcChain`/:class:`RpcSwarm` proxies
  plus :class:`RpcRequesterClient`/:class:`RpcWorkerClient`, the
  in-process client classes re-based onto a transport (sync or async),
  and the push-stream consumers.
* :mod:`repro.rpc.harness` — drive one scenario against any front-end
  (the equivalence-contract and benchmark workhorse).
"""

from repro.rpc.aserver import AsyncRpcServer
from repro.rpc.client import (
    AsyncHttpTransport,
    AsyncRpcSession,
    AsyncSubscription,
    HttpTransport,
    LoopbackTransport,
    PushSubscription,
    RpcChain,
    RpcRequesterClient,
    RpcSession,
    RpcSwarm,
    RpcWorkerClient,
)
from repro.rpc.harness import HitSpec, run_hits
from repro.rpc.server import RpcAuth, RpcHttpServer, RpcNode
from repro.rpc.wire import PROTOCOL_VERSION

__all__ = [
    "AsyncHttpTransport",
    "AsyncRpcServer",
    "AsyncRpcSession",
    "AsyncSubscription",
    "HitSpec",
    "HttpTransport",
    "LoopbackTransport",
    "PROTOCOL_VERSION",
    "PushSubscription",
    "RpcAuth",
    "RpcChain",
    "RpcHttpServer",
    "RpcNode",
    "RpcRequesterClient",
    "RpcSession",
    "RpcSwarm",
    "RpcWorkerClient",
    "run_hits",
]
