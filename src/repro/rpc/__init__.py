"""The JSON-RPC node boundary: out-of-process clients, one wire format.

Layers (each importable on its own):

* :mod:`repro.rpc.wire` — envelopes, value packing over the canonical
  codec, and the error taxonomy mapped from :mod:`repro.errors`.
* :mod:`repro.rpc.server` — :class:`RpcNode` (transport-agnostic method
  registry around one chain) and :class:`RpcHttpServer` (stdlib
  ``http.server`` skin; the CLI's ``node rpc-serve``).
* :mod:`repro.rpc.client` — :class:`RpcChain`/:class:`RpcSwarm` proxies
  plus :class:`RpcRequesterClient`/:class:`RpcWorkerClient`, the
  in-process client classes re-based onto a transport.
* :mod:`repro.rpc.harness` — drive one scenario against any front-end
  (the equivalence-contract and benchmark workhorse).
"""

from repro.rpc.client import (
    HttpTransport,
    LoopbackTransport,
    RpcChain,
    RpcRequesterClient,
    RpcSession,
    RpcSwarm,
    RpcWorkerClient,
)
from repro.rpc.harness import HitSpec, run_hits
from repro.rpc.server import RpcHttpServer, RpcNode
from repro.rpc.wire import PROTOCOL_VERSION

__all__ = [
    "HitSpec",
    "HttpTransport",
    "LoopbackTransport",
    "PROTOCOL_VERSION",
    "RpcChain",
    "RpcHttpServer",
    "RpcNode",
    "RpcRequesterClient",
    "RpcSession",
    "RpcSwarm",
    "RpcWorkerClient",
    "run_hits",
]
