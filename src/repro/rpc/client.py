"""Out-of-process clients: the in-process APIs, re-based on JSON-RPC.

The design inverts nothing: :class:`RpcChain` implements the slice of
the :class:`~repro.chain.chain.Chain` surface the protocol clients and
the session engine actually touch (account registration, transaction
submission, deployment, event subscription, ledger reads, block
production), backed by RPC calls instead of attribute access.
:class:`RpcRequesterClient` and :class:`RpcWorkerClient` are then the
*same* classes as their in-process parents — every key, commitment,
ciphertext, and proof is still produced client-side; only the chain
boundary moved.  A :class:`~repro.core.session.SessionEngine`
constructed over an :class:`RpcChain` therefore drives full HIT
sessions over the wire, which is exactly what the equivalence contract
in ``tests/rpc/`` pins: same receipts, same gas, same ``state_root`` as
the in-process path, byte for byte.

Transports are pluggable: :class:`LoopbackTransport` hands the encoded
request straight to an in-process :class:`~repro.rpc.server.RpcNode`
(every test still exercises the full parse/validate/dispatch pipeline),
:class:`HttpTransport` speaks to a real socket via stdlib
``http.client``.
"""

from __future__ import annotations

import http.client
import json
import socket
import urllib.parse
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.chain.blocks import Block
from repro.chain.eventlog import EventFilter, EventRecord
from repro.chain.transactions import Event, Receipt, Transaction
from repro.core.requester import RequesterClient
from repro.core.worker import WorkerClient
from repro.errors import RpcError
from repro.ledger.accounts import Address
from repro.ledger.ledger import LedgerEntry
from repro.store import codec
from repro.rpc import wire

#: One chain_events page requested by the client-side cursors.
EVENT_PAGE = 256

#: Methods a transport may transparently resend after a connection
#: failure: pure reads, where a lost response costs nothing.  A failed
#: *mutation* (tx_send, chain_mine, ...) must surface instead — the
#: server may have processed it even though the response never arrived,
#: and a blind resend would submit it twice.
IDEMPOTENT_METHODS = frozenset(
    {
        "rpc_version",
        "chain_head",
        "chain_block",
        "chain_events",
        "chain_gas",
        "chain_balance",
        "chain_payments",
        "chain_contract",
        "chain_state_root",
        "node_status",
        "swarm_get",
    }
)


# ---------------------------------------------------------------------------
# Transports
# ---------------------------------------------------------------------------


class LoopbackTransport:
    """In-memory transport: full wire encoding, no socket.

    The fast path for tests and benchmarks — requests still round-trip
    through JSON and the canonical codec, so an encoding bug cannot hide
    behind shared memory.
    """

    def __init__(self, node) -> None:
        self.node = node
        self.requests_sent = 0

    def request(self, raw: bytes, idempotent: bool = False) -> bytes:
        self.requests_sent += 1
        return self.node.handle(raw)

    def close(self) -> None:
        pass


class HttpTransport:
    """A persistent HTTP/1.1 connection to a node's ``/rpc`` endpoint."""

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise RpcError("HttpTransport needs an http://host:port URL")
        self.url = url
        self._path = parsed.path or "/rpc"
        self._host = parsed.hostname
        self._port = parsed.port or 80
        self._timeout = timeout
        self._connection: Optional[http.client.HTTPConnection] = None
        self.requests_sent = 0

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
            self._connection.connect()
            # Request headers and body go out as separate writes; without
            # TCP_NODELAY, Nagle holds the second one for the server's
            # delayed ACK (~40ms per round trip on Linux).
            self._connection.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        return self._connection

    def request(self, raw: bytes, idempotent: bool = False) -> bytes:
        self.requests_sent += 1
        attempts = 2 if idempotent else 1
        for attempt in range(attempts):
            connection = self._connect()
            try:
                connection.request(
                    "POST",
                    self._path,
                    body=raw,
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                return response.read()
            except (http.client.HTTPException, ConnectionError, OSError) as exc:
                # A dropped keep-alive connection gets one reconnect —
                # but only for pure reads: a mutation may already have
                # executed server-side, and resending it blind would
                # apply it twice.  Everything else surfaces as RpcError.
                self.close()
                if attempt == attempts - 1:
                    raise RpcError(
                        "rpc transport failure against %s: %s" % (self.url, exc)
                    ) from exc
        raise AssertionError("unreachable")

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None


class RpcSession:
    """Envelope bookkeeping over one transport: ids, errors, unwrapping."""

    def __init__(self, transport) -> None:
        self.transport = transport
        self._next_id = 0

    def call(self, method: str, /, **params: Any) -> Any:
        self._next_id += 1
        raw = self.transport.request(
            wire.request(method, params or None, self._next_id),
            idempotent=method in IDEMPOTENT_METHODS,
        )
        try:
            envelope = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RpcError("unparseable rpc response: %s" % exc) from exc
        if not isinstance(envelope, dict):
            raise RpcError("rpc response must be a JSON object")
        if "error" in envelope:
            raise wire.error_to_exception(envelope["error"])
        if "result" not in envelope:
            raise RpcError("rpc response carries neither result nor error")
        return envelope["result"]

    def version(self) -> Dict[str, Any]:
        """The server's version report, compatibility-checked."""
        report = self.call("rpc_version")
        if report.get("protocol") != wire.PROTOCOL_VERSION:
            raise RpcError(
                "server speaks rpc protocol %r, this client speaks %d"
                % (report.get("protocol"), wire.PROTOCOL_VERSION)
            )
        if report.get("schema") != codec.SCHEMA_VERSION:
            raise RpcError(
                "server encodes value schema %r, this client reads %d"
                % (report.get("schema"), codec.SCHEMA_VERSION)
            )
        return report


# ---------------------------------------------------------------------------
# The Chain mirror
# ---------------------------------------------------------------------------


class RemoteClock:
    """Mirror of :class:`~repro.chain.clock.Clock`: ``period`` reads."""

    def __init__(self, session: RpcSession) -> None:
        self._session = session

    @property
    def period(self) -> int:
        return self._session.call("chain_head")["period"]


class RemoteLedger:
    """Mirror of the ledger reads clients perform (balances, payments)."""

    def __init__(self, session: RpcSession) -> None:
        self._session = session

    def balance_of(self, address: Address) -> int:
        return self._session.call("chain_balance", address=wire.pack(address))[
            "balance"
        ]

    def payments_to(self, address: Address) -> List[LedgerEntry]:
        entries = wire.unpack(
            self._session.call("chain_payments", address=wire.pack(address))[
                "entries"
            ]
        )
        return [codec.ledger_entry_from_data(item) for item in entries]


class RemoteSubscription:
    """A client-held cursor over the node's event log.

    Unlike an in-process :class:`~repro.chain.eventlog.Subscription`,
    the node does not know this cursor exists — compaction
    (``node_prune``) can outrun it, in which case the next poll raises
    a :class:`~repro.errors.ChainError` naming the gap rather than
    silently skipping events (pinned by ``tests/rpc/test_rpc_events.py``).
    """

    def __init__(
        self,
        session: RpcSession,
        filter: Optional[EventFilter],
        cursor: int,
    ) -> None:
        self._session = session
        self.filter = filter
        self.cursor = cursor

    def _filter_params(self) -> Dict[str, Any]:
        params: Dict[str, Any] = {}
        if self.filter is not None:
            if self.filter.contract is not None:
                params["contract"] = wire.pack(self.filter.contract)
            if self.filter.names is not None:
                params["names"] = sorted(self.filter.names)
            if self.filter.topic is not None:
                params["topic"] = self.filter.topic.hex()
        return params

    def poll(self) -> List[EventRecord]:
        """New matching records since the last poll (pages to the head)."""
        records: List[EventRecord] = []
        while True:
            page = self._session.call(
                "chain_events",
                cursor=self.cursor,
                limit=EVENT_PAGE,
                **self._filter_params(),
            )
            records.extend(
                EventRecord(
                    sequence=item["sequence"],
                    block_number=item["block"],
                    event=codec.event_from_data(wire.unpack(item["event"])),
                )
                for item in page["records"]
            )
            self.cursor = page["cursor"]
            if page["cursor"] >= page["head"]:
                return records


class RpcChain:
    """The :class:`~repro.chain.chain.Chain` surface, spoken over RPC.

    Implements exactly the slice the protocol clients and the session
    engine use; anything else (mempool introspection, store attachment)
    is the node's business, not a remote client's.
    """

    def __init__(self, transport) -> None:
        self.rpc = RpcSession(transport)
        self.clock = RemoteClock(self.rpc)
        self.ledger = RemoteLedger(self.rpc)

    # -- accounts ---------------------------------------------------------------

    def register_account(self, label: str, balance: int = 0) -> Address:
        result = self.rpc.call("tx_register", label=label, balance=balance)
        return wire.unpack(result["address"])

    # -- transaction submission -------------------------------------------------

    def send(
        self,
        sender: Address,
        contract: str,
        method: str,
        args: Tuple[Any, ...] = (),
        payload: bytes = b"",
        value: int = 0,
    ) -> Transaction:
        result = self.rpc.call(
            "tx_send",
            sender=wire.pack(sender),
            contract=contract,
            method=method,
            args=wire.pack(tuple(args)),
            payload=payload.hex(),
            value=value,
        )
        transaction = Transaction(
            sender=sender,
            contract=contract,
            method=method,
            payload=payload,
            args=tuple(args),
            value=value,
            nonce=result["nonce"],
        )
        if transaction.tx_hash().hex() != result["tx_hash"]:
            raise RpcError(
                "node stamped tx %s but this client derives %s — the "
                "transaction was altered in transit"
                % (result["tx_hash"], transaction.tx_hash().hex())
            )
        return transaction

    # -- contracts ----------------------------------------------------------------

    def deploy(
        self,
        contract,
        deployer: Address,
        args: Tuple[Any, ...] = (),
        payload: bytes = b"",
        value: int = 0,
    ) -> Receipt:
        result = self.rpc.call(
            "tx_deploy",
            type=type(contract).__name__,
            name=contract.name,
            deployer=wire.pack(deployer),
            args=wire.pack(tuple(args)),
            payload=payload.hex(),
            value=value,
        )
        return codec.receipt_from_data(wire.unpack(result["receipt"]))

    def deploy_many(
        self,
        deployments: Iterable[Tuple[Any, Address, Tuple[Any, ...], bytes]],
    ) -> List[Receipt]:
        result = self.rpc.call(
            "tx_deploy_many",
            deployments=[
                {
                    "type": type(contract).__name__,
                    "name": contract.name,
                    "deployer": wire.pack(deployer),
                    "args": wire.pack(tuple(args)),
                    "payload": payload.hex(),
                }
                for contract, deployer, args, payload in deployments
            ],
        )
        return [
            codec.receipt_from_data(wire.unpack(item))
            for item in result["receipts"]
        ]

    def contract(self, name: str):
        """A point-in-time replica of the named contract.

        The replica is a real instance of the contract's class
        (resolved through :data:`repro.store.codec.CONTRACT_TYPES`)
        with the node's current storage, so observation helpers like
        ``HITContract.verdict_of`` work unchanged; it is *not* live —
        refetch after mining to observe new state.
        """
        result = self.rpc.call("chain_contract", name=name)
        contract = codec.CONTRACT_TYPES[result["type"]](result["name"])
        contract.storage = wire.unpack(result["storage"])
        return contract

    # -- block production ---------------------------------------------------------

    def mine_block(self) -> Block:
        result = self.rpc.call("chain_mine")
        return codec.block_from_data(wire.unpack(result["block"]))

    # -- observation ---------------------------------------------------------------

    def subscribe(
        self, filter: Optional[EventFilter] = None, from_start: bool = False
    ) -> RemoteSubscription:
        head = self.rpc.call("chain_head")
        cursor = head["events_pruned"] if from_start else head["events"]
        return RemoteSubscription(self.rpc, filter, cursor)

    def events_named(
        self, name: str, contract: Optional[str] = None
    ) -> List[Event]:
        filter = (
            EventFilter.for_contract(contract, names=[name])
            if contract
            else EventFilter(names=[name])
        )
        subscription = self.subscribe(filter, from_start=True)
        return [record.event for record in subscription.poll()]

    @property
    def height(self) -> int:
        return self.rpc.call("chain_head")["height"]

    @property
    def blocks(self) -> List[Block]:
        """Every sealed block, fetched one RPC page at a time.

        An observation convenience mirroring ``Chain.blocks`` for
        outcome assembly (``HITSession.receipts``); event subscriptions
        are the scalable read path.
        """
        return [
            codec.block_from_data(
                wire.unpack(self.rpc.call("chain_block", number=number)["block"])
            )
            for number in range(self.height)
        ]

    @property
    def total_gas(self) -> int:
        return self.rpc.call("chain_gas")["total"]

    def state_root(self) -> bytes:
        """The node's current canonical state root (integrity checks)."""
        return bytes.fromhex(
            self.rpc.call("chain_state_root")["state_root"]
        )


class RpcSwarm:
    """Mirror of :class:`~repro.storage.swarm.SwarmStore` over the node's
    gateway (real deployments talk to Swarm directly; the node proxies)."""

    def __init__(self, transport) -> None:
        self.rpc = RpcSession(transport)

    def put(self, content: bytes) -> bytes:
        return bytes.fromhex(
            self.rpc.call("swarm_put", data=content.hex())["digest"]
        )

    def get(self, digest: bytes) -> bytes:
        return bytes.fromhex(
            self.rpc.call("swarm_get", digest=digest.hex())["data"]
        )


# ---------------------------------------------------------------------------
# The protocol clients, re-based
# ---------------------------------------------------------------------------


class RpcRequesterClient(RequesterClient):
    """A requester whose chain and Swarm live behind a node's RPC surface.

    Identical protocol behaviour to the in-process parent — keys,
    commitments, and proofs are produced locally; only submissions and
    observations cross the wire.
    """

    def __init__(
        self,
        label: str,
        task,
        transport,
        balance: Optional[int] = None,
        secret: Optional[int] = None,
    ) -> None:
        super().__init__(
            label,
            task,
            RpcChain(transport),
            RpcSwarm(transport),
            balance=balance,
            secret=secret,
        )


class RpcWorkerClient(WorkerClient):
    """A worker whose chain and Swarm live behind a node's RPC surface."""

    def __init__(
        self,
        label: str,
        transport,
        answers: Optional[List[int]] = None,
        answer_strategy: Optional[Callable] = None,
    ) -> None:
        super().__init__(
            label,
            RpcChain(transport),
            RpcSwarm(transport),
            answers=answers,
            answer_strategy=answer_strategy,
        )
