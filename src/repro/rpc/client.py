"""Out-of-process clients: the in-process APIs, re-based on JSON-RPC.

The design inverts nothing: :class:`RpcChain` implements the slice of
the :class:`~repro.chain.chain.Chain` surface the protocol clients and
the session engine actually touch (account registration, transaction
submission, deployment, event subscription, ledger reads, block
production), backed by RPC calls instead of attribute access.
:class:`RpcRequesterClient` and :class:`RpcWorkerClient` are then the
*same* classes as their in-process parents — every key, commitment,
ciphertext, and proof is still produced client-side; only the chain
boundary moved.  A :class:`~repro.core.session.SessionEngine`
constructed over an :class:`RpcChain` therefore drives full HIT
sessions over the wire, which is exactly what the equivalence contract
in ``tests/rpc/`` pins: same receipts, same gas, same ``state_root`` as
the in-process path, byte for byte.

Transports are pluggable: :class:`LoopbackTransport` hands the encoded
request straight to an in-process :class:`~repro.rpc.server.RpcNode`
(every test still exercises the full parse/validate/dispatch pipeline),
:class:`HttpTransport` speaks to a real socket via stdlib
``http.client``, and :class:`AsyncHttpTransport` speaks the same bytes
from inside an asyncio application.  Sessions carry an optional ``auth``
token that rides every envelope (the node checks it only on admin and
submission methods).  :class:`PushSubscription` (blocking) and
:class:`AsyncSubscription` (awaitable) consume a ``chain_subscribe``
NDJSON stream — events arrive because the node pushed them, not because
anybody polled.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import socket
import urllib.parse
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.chain.blocks import Block
from repro.chain.eventlog import EventFilter, EventRecord
from repro.chain.transactions import Event, Receipt, Transaction
from repro.core.requester import RequesterClient
from repro.core.worker import WorkerClient
from repro.errors import ReproError, RpcError
from repro.ledger.accounts import Address
from repro.ledger.ledger import LedgerEntry
from repro.store import codec
from repro.rpc import wire

#: One chain_events page requested by the client-side cursors.
EVENT_PAGE = 256

#: Methods a transport may transparently resend after a connection
#: failure: pure reads, where a lost response costs nothing.  A failed
#: *mutation* (tx_send, chain_mine, ...) must surface instead — the
#: server may have processed it even though the response never arrived,
#: and a blind resend would submit it twice.
IDEMPOTENT_METHODS = frozenset(
    {
        "rpc_version",
        "chain_head",
        "chain_block",
        "chain_events",
        "chain_gas",
        "chain_balance",
        "chain_payments",
        "chain_contract",
        "chain_state_root",
        "chain_header",
        "get_proof",
        "node_status",
        "swarm_get",
    }
)


# ---------------------------------------------------------------------------
# Transports
# ---------------------------------------------------------------------------


class LoopbackTransport:
    """In-memory transport: full wire encoding, no socket.

    The fast path for tests and benchmarks — requests still round-trip
    through JSON and the canonical codec, so an encoding bug cannot hide
    behind shared memory.
    """

    def __init__(self, node) -> None:
        self.node = node
        self.requests_sent = 0

    def request(self, raw: bytes, idempotent: bool = False) -> bytes:
        self.requests_sent += 1
        return self.node.handle(raw)

    def close(self) -> None:
        pass


class HttpTransport:
    """A persistent HTTP/1.1 connection to a node's ``/rpc`` endpoint."""

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise RpcError("HttpTransport needs an http://host:port URL")
        self.url = url
        self._path = parsed.path or "/rpc"
        self._host = parsed.hostname
        self._port = parsed.port or 80
        self._timeout = timeout
        self._connection: Optional[http.client.HTTPConnection] = None
        self.requests_sent = 0

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
            self._connection.connect()
            # Request headers and body go out as separate writes; without
            # TCP_NODELAY, Nagle holds the second one for the server's
            # delayed ACK (~40ms per round trip on Linux).
            self._connection.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        return self._connection

    def request(self, raw: bytes, idempotent: bool = False) -> bytes:
        self.requests_sent += 1
        attempts = 2 if idempotent else 1
        for attempt in range(attempts):
            connection = self._connect()
            try:
                connection.request(
                    "POST",
                    self._path,
                    body=raw,
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                return response.read()
            except (http.client.HTTPException, ConnectionError, OSError) as exc:
                # A dropped keep-alive connection gets one reconnect —
                # but only for pure reads: a mutation may already have
                # executed server-side, and resending it blind would
                # apply it twice.  Everything else surfaces as RpcError.
                self.close()
                if attempt == attempts - 1:
                    raise RpcError(
                        "rpc transport failure against %s: %s" % (self.url, exc)
                    ) from exc
        raise AssertionError("unreachable")

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None


class AsyncHttpTransport:
    """A persistent HTTP/1.1 connection spoken from inside an event loop.

    Byte-for-byte the same protocol as :class:`HttpTransport` — same
    envelopes, same idempotent-reconnect policy — so async applications
    (and the subscription benchmark's hundred-client fan-out) talk to
    either front-end without their own HTTP plumbing.
    """

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise RpcError("AsyncHttpTransport needs an http://host:port URL")
        self.url = url
        self._path = parsed.path or "/rpc"
        self._host = parsed.hostname
        self._port = parsed.port or 80
        self._timeout = timeout
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self.requests_sent = 0

    async def _connect(self) -> None:
        if self._writer is None:
            self._reader, self._writer = await asyncio.wait_for(
                asyncio.open_connection(self._host, self._port),
                timeout=self._timeout,
            )
            sock = self._writer.get_extra_info("socket")
            if sock is not None:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    async def request(self, raw: bytes, idempotent: bool = False) -> bytes:
        self.requests_sent += 1
        attempts = 2 if idempotent else 1
        for attempt in range(attempts):
            try:
                await self._connect()
                head = (
                    "POST %s HTTP/1.1\r\n"
                    "Host: %s:%d\r\n"
                    "Content-Type: application/json\r\n"
                    "Content-Length: %d\r\n"
                    "\r\n" % (self._path, self._host, self._port, len(raw))
                )
                self._writer.write(head.encode("latin-1") + raw)
                await self._writer.drain()
                return await asyncio.wait_for(
                    self._read_response_body(), timeout=self._timeout
                )
            except (
                ConnectionError,
                OSError,
                asyncio.IncompleteReadError,
                asyncio.TimeoutError,
            ) as exc:
                # Same policy as HttpTransport: a dropped keep-alive
                # connection earns one reconnect for pure reads only.
                await self.close()
                if attempt == attempts - 1:
                    raise RpcError(
                        "rpc transport failure against %s: %s" % (self.url, exc)
                    ) from exc
        raise AssertionError("unreachable")

    async def _read_response_body(self) -> bytes:
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        length = None
        keep_alive = True
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            name = name.strip().lower()
            if name == "content-length":
                length = int(value.strip())
            elif name == "connection" and value.strip().lower() == "close":
                keep_alive = False
        if length is None:
            raise ConnectionError("response carries no Content-Length")
        body = await self._reader.readexactly(length)
        if not keep_alive:
            await self.close()
        return body

    async def close(self) -> None:
        writer, self._reader, self._writer = self._writer, None, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


def filter_params(filter: Optional[EventFilter]) -> Dict[str, Any]:
    """An :class:`EventFilter` as ``chain_events``/``chain_subscribe`` params."""
    params: Dict[str, Any] = {}
    if filter is not None:
        if filter.contract is not None:
            params["contract"] = wire.pack(filter.contract)
        if filter.names is not None:
            params["names"] = sorted(filter.names)
        if filter.topic is not None:
            params["topic"] = filter.topic.hex()
    return params


def record_from_wire(item: Dict[str, Any]) -> EventRecord:
    """One wire-shaped event record back into an :class:`EventRecord`."""
    return EventRecord(
        sequence=item["sequence"],
        block_number=item["block"],
        event=codec.event_from_data(wire.unpack(item["event"])),
    )


def _unwrap_response(envelope: Any) -> Any:
    if not isinstance(envelope, dict):
        raise RpcError("rpc response must be a JSON object")
    if "error" in envelope:
        raise wire.error_to_exception(envelope["error"])
    if "result" not in envelope:
        raise RpcError("rpc response carries neither result nor error")
    return envelope["result"]


def _unwrap_batch(raw: bytes, expected: int) -> List[Any]:
    """Batch responses to per-member outcomes (results or exceptions).

    An error member becomes the reconstructed exception *object* in the
    list rather than a raise, so one failing member cannot hide the
    other members' results; callers decide what to raise.
    """
    try:
        envelopes = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RpcError("unparseable rpc response: %s" % exc) from exc
    if isinstance(envelopes, dict):
        # The whole batch was rejected with one error envelope.
        raise wire.error_to_exception(
            envelopes.get("error", {"message": "batch rejected"})
        )
    if not isinstance(envelopes, list) or len(envelopes) != expected:
        raise RpcError(
            "batch of %d requests answered with %r" % (expected, envelopes)
        )
    outcomes: List[Any] = []
    for envelope in envelopes:
        try:
            outcomes.append(_unwrap_response(envelope))
        except ReproError as exc:
            outcomes.append(exc)
    return outcomes


class RpcSession:
    """Envelope bookkeeping over one transport: ids, errors, unwrapping.

    ``auth`` (optional) rides every request envelope; the node ignores
    it on open methods and requires it on admin/submission ones.
    """

    def __init__(self, transport, auth: Optional[str] = None) -> None:
        self.transport = transport
        self.auth = auth
        self._next_id = 0

    def call(self, method: str, /, **params: Any) -> Any:
        self._next_id += 1
        raw = self.transport.request(
            wire.request(method, params or None, self._next_id, auth=self.auth),
            idempotent=method in IDEMPOTENT_METHODS,
        )
        try:
            envelope = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RpcError("unparseable rpc response: %s" % exc) from exc
        return _unwrap_response(envelope)

    def call_batch(
        self, calls: List[Tuple[str, Dict[str, Any]]]
    ) -> List[Any]:
        """One round trip for many requests; outcomes in request order.

        Each outcome is the unwrapped ``result`` or the reconstructed
        exception object for that member (see :func:`_unwrap_batch`).
        """
        if not calls:
            return []
        batch = []
        idempotent = True
        for method, params in calls:
            self._next_id += 1
            idempotent = idempotent and method in IDEMPOTENT_METHODS
            batch.append(
                wire.request_value(
                    method, params or None, self._next_id, auth=self.auth
                )
            )
        raw = self.transport.request(
            wire.serialize(batch), idempotent=idempotent
        )
        return _unwrap_batch(raw, len(calls))

    def version(self) -> Dict[str, Any]:
        """The server's version report, compatibility-checked."""
        report = self.call("rpc_version")
        if report.get("protocol") != wire.PROTOCOL_VERSION:
            raise RpcError(
                "server speaks rpc protocol %r, this client speaks %d"
                % (report.get("protocol"), wire.PROTOCOL_VERSION)
            )
        if report.get("schema") != codec.SCHEMA_VERSION:
            raise RpcError(
                "server encodes value schema %r, this client reads %d"
                % (report.get("schema"), codec.SCHEMA_VERSION)
            )
        return report


class AsyncRpcSession:
    """:class:`RpcSession` for awaitable transports (one per transport)."""

    def __init__(
        self, transport: AsyncHttpTransport, auth: Optional[str] = None
    ) -> None:
        self.transport = transport
        self.auth = auth
        self._next_id = 0

    async def call(self, method: str, /, **params: Any) -> Any:
        self._next_id += 1
        raw = await self.transport.request(
            wire.request(method, params or None, self._next_id, auth=self.auth),
            idempotent=method in IDEMPOTENT_METHODS,
        )
        try:
            envelope = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RpcError("unparseable rpc response: %s" % exc) from exc
        return _unwrap_response(envelope)

    async def call_batch(
        self, calls: List[Tuple[str, Dict[str, Any]]]
    ) -> List[Any]:
        """Awaitable :meth:`RpcSession.call_batch`; same outcome contract."""
        if not calls:
            return []
        batch = []
        idempotent = True
        for method, params in calls:
            self._next_id += 1
            idempotent = idempotent and method in IDEMPOTENT_METHODS
            batch.append(
                wire.request_value(
                    method, params or None, self._next_id, auth=self.auth
                )
            )
        raw = await self.transport.request(
            wire.serialize(batch), idempotent=idempotent
        )
        return _unwrap_batch(raw, len(calls))


# ---------------------------------------------------------------------------
# Server-push subscriptions
# ---------------------------------------------------------------------------


def _subscribe_request(
    filter: Optional[EventFilter],
    from_start: bool,
    cursor: Optional[int],
    auth: Optional[str],
) -> bytes:
    params: Dict[str, Any] = filter_params(filter)
    if from_start:
        params["from_start"] = True
    if cursor is not None:
        params["cursor"] = cursor
    return wire.request("chain_subscribe", params or None, 1, auth=auth)


def _parse_subscribe_ack(line: bytes) -> Tuple[int, int]:
    """The stream's first frame: the subscribe result (or its error)."""
    if not line:
        raise RpcError("subscription stream closed before the ack")
    envelope = json.loads(line.decode("utf-8"))
    result = _unwrap_response(envelope)
    return result["subscription"], result["cursor"]


def _parse_push_frame(line: bytes) -> Tuple[List[EventRecord], int, int]:
    """One stream line to ``(records, cursor, head)``; errors re-raise."""
    envelope = json.loads(line.decode("utf-8"))
    if isinstance(envelope, dict) and "error" in envelope:
        raise wire.error_to_exception(envelope["error"])
    if not wire.is_push(envelope):
        raise RpcError("unexpected frame on subscription stream: %r" % envelope)
    params = envelope["params"]
    return (
        [record_from_wire(item) for item in params["records"]],
        params["cursor"],
        params["head"],
    )


class PushSubscription:
    """A blocking consumer of one server-push event stream.

    Opens its own connection to an :class:`~repro.rpc.aserver.AsyncRpcServer`,
    sends ``chain_subscribe``, and then just *reads*: the server writes a
    frame whenever matching events land, so there is no poll loop on
    either side.  Closing the connection (``close()`` or letting the
    object die) is the unsubscribe.

    ``next_records(timeout)`` blocks until one pushed frame arrives and
    returns its records; ``socket.timeout`` surfaces if nothing arrives
    in time (the chain simply had no matching writes).
    """

    def __init__(
        self,
        url: str,
        filter: Optional[EventFilter] = None,
        from_start: bool = False,
        cursor: Optional[int] = None,
        auth: Optional[str] = None,
        timeout: float = 30.0,
    ) -> None:
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise RpcError("PushSubscription needs an http://host:port URL")
        self.filter = filter
        raw = _subscribe_request(filter, from_start, cursor, auth)
        self._sock = socket.create_connection(
            (parsed.hostname, parsed.port or 80), timeout=timeout
        )
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        head = (
            "POST %s HTTP/1.1\r\n"
            "Host: %s\r\n"
            "Content-Type: application/json\r\n"
            "Content-Length: %d\r\n"
            "\r\n" % (parsed.path or "/rpc", parsed.hostname, len(raw))
        )
        self._sock.sendall(head.encode("latin-1") + raw)
        self._stream = self._sock.makefile("rb")
        status = self._stream.readline().decode("latin-1")
        while True:  # headers end at the blank line
            line = self._stream.readline()
            if line in (b"\r\n", b"\n", b""):
                break
        if " 200 " not in status:
            raise RpcError("subscription refused: %s" % status.strip())
        self.subscription_id, self.cursor = _parse_subscribe_ack(
            self._stream.readline()
        )

    def next_records(
        self, timeout: Optional[float] = None
    ) -> List[EventRecord]:
        """Block until the server pushes the next frame; return its records."""
        if timeout is not None:
            self._sock.settimeout(timeout)
        line = self._stream.readline()
        if not line:
            raise RpcError("subscription stream closed by the server")
        records, self.cursor, _head = _parse_push_frame(line)
        return records

    def close(self) -> None:
        try:
            self._stream.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "PushSubscription":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class AsyncSubscription:
    """Awaitable twin of :class:`PushSubscription` for asyncio consumers.

    A hundred of these cost one event loop and a hundred sockets — the
    shape the subscription benchmark measures.
    """

    def __init__(self, reader, writer, subscription_id: int, cursor: int) -> None:
        self._reader = reader
        self._writer = writer
        self.subscription_id = subscription_id
        self.cursor = cursor

    @classmethod
    async def open(
        cls,
        url: str,
        filter: Optional[EventFilter] = None,
        from_start: bool = False,
        cursor: Optional[int] = None,
        auth: Optional[str] = None,
        timeout: float = 30.0,
    ) -> "AsyncSubscription":
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise RpcError("AsyncSubscription needs an http://host:port URL")
        raw = _subscribe_request(filter, from_start, cursor, auth)
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(parsed.hostname, parsed.port or 80),
            timeout=timeout,
        )
        head = (
            "POST %s HTTP/1.1\r\n"
            "Host: %s\r\n"
            "Content-Type: application/json\r\n"
            "Content-Length: %d\r\n"
            "\r\n" % (parsed.path or "/rpc", parsed.hostname, len(raw))
        )
        writer.write(head.encode("latin-1") + raw)
        await writer.drain()
        status = (await reader.readline()).decode("latin-1")
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
        if " 200 " not in status:
            writer.close()
            raise RpcError("subscription refused: %s" % status.strip())
        sid, acked = _parse_subscribe_ack(await reader.readline())
        return cls(reader, writer, sid, acked)

    async def next_records(self) -> List[EventRecord]:
        line = await self._reader.readline()
        if not line:
            raise RpcError("subscription stream closed by the server")
        records, self.cursor, _head = _parse_push_frame(line)
        return records

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


# ---------------------------------------------------------------------------
# The Chain mirror
# ---------------------------------------------------------------------------


class RemoteClock:
    """Mirror of :class:`~repro.chain.clock.Clock`: ``period`` reads."""

    def __init__(self, session: RpcSession) -> None:
        self._session = session

    @property
    def period(self) -> int:
        return self._session.call("chain_head")["period"]


class RemoteLedger:
    """Mirror of the ledger reads clients perform (balances, payments)."""

    def __init__(self, session: RpcSession) -> None:
        self._session = session

    def balance_of(self, address: Address) -> int:
        return self._session.call("chain_balance", address=wire.pack(address))[
            "balance"
        ]

    def payments_to(self, address: Address) -> List[LedgerEntry]:
        entries = wire.unpack(
            self._session.call("chain_payments", address=wire.pack(address))[
                "entries"
            ]
        )
        return [codec.ledger_entry_from_data(item) for item in entries]


class RemoteSubscription:
    """A client-held cursor over the node's event log.

    Unlike an in-process :class:`~repro.chain.eventlog.Subscription`,
    the node does not know this cursor exists — compaction
    (``node_prune``) can outrun it, in which case the next poll raises
    a :class:`~repro.errors.ChainError` naming the gap rather than
    silently skipping events (pinned by ``tests/rpc/test_rpc_events.py``).
    """

    def __init__(
        self,
        session: RpcSession,
        filter: Optional[EventFilter],
        cursor: int,
    ) -> None:
        self._session = session
        self.filter = filter
        self.cursor = cursor

    def poll(self) -> List[EventRecord]:
        """New matching records since the last poll (pages to the head)."""
        records: List[EventRecord] = []
        while True:
            page = self._session.call(
                "chain_events",
                cursor=self.cursor,
                limit=EVENT_PAGE,
                **filter_params(self.filter),
            )
            records.extend(
                record_from_wire(item) for item in page["records"]
            )
            self.cursor = page["cursor"]
            if page["cursor"] >= page["head"]:
                return records


class RpcChain:
    """The :class:`~repro.chain.chain.Chain` surface, spoken over RPC.

    Implements exactly the slice the protocol clients and the session
    engine use; anything else (mempool introspection, store attachment)
    is the node's business, not a remote client's.
    """

    def __init__(self, transport, auth: Optional[str] = None) -> None:
        self.rpc = RpcSession(transport, auth=auth)
        self.clock = RemoteClock(self.rpc)
        self.ledger = RemoteLedger(self.rpc)

    # -- accounts ---------------------------------------------------------------

    def register_account(self, label: str, balance: int = 0) -> Address:
        result = self.rpc.call("tx_register", label=label, balance=balance)
        return wire.unpack(result["address"])

    # -- transaction submission -------------------------------------------------

    def send(
        self,
        sender: Address,
        contract: str,
        method: str,
        args: Tuple[Any, ...] = (),
        payload: bytes = b"",
        value: int = 0,
    ) -> Transaction:
        result = self.rpc.call(
            "tx_send",
            sender=wire.pack(sender),
            contract=contract,
            method=method,
            args=wire.pack(tuple(args)),
            payload=payload.hex(),
            value=value,
        )
        transaction = Transaction(
            sender=sender,
            contract=contract,
            method=method,
            payload=payload,
            args=tuple(args),
            value=value,
            nonce=result["nonce"],
        )
        if transaction.tx_hash().hex() != result["tx_hash"]:
            raise RpcError(
                "node stamped tx %s but this client derives %s — the "
                "transaction was altered in transit"
                % (result["tx_hash"], transaction.tx_hash().hex())
            )
        return transaction

    # -- contracts ----------------------------------------------------------------

    def deploy(
        self,
        contract,
        deployer: Address,
        args: Tuple[Any, ...] = (),
        payload: bytes = b"",
        value: int = 0,
    ) -> Receipt:
        result = self.rpc.call(
            "tx_deploy",
            type=type(contract).__name__,
            name=contract.name,
            deployer=wire.pack(deployer),
            args=wire.pack(tuple(args)),
            payload=payload.hex(),
            value=value,
        )
        return codec.receipt_from_data(wire.unpack(result["receipt"]))

    def deploy_many(
        self,
        deployments: Iterable[Tuple[Any, Address, Tuple[Any, ...], bytes]],
    ) -> List[Receipt]:
        result = self.rpc.call(
            "tx_deploy_many",
            deployments=[
                {
                    "type": type(contract).__name__,
                    "name": contract.name,
                    "deployer": wire.pack(deployer),
                    "args": wire.pack(tuple(args)),
                    "payload": payload.hex(),
                }
                for contract, deployer, args, payload in deployments
            ],
        )
        return [
            codec.receipt_from_data(wire.unpack(item))
            for item in result["receipts"]
        ]

    def contract(self, name: str):
        """A point-in-time replica of the named contract.

        The replica is a real instance of the contract's class
        (resolved through :data:`repro.store.codec.CONTRACT_TYPES`)
        with the node's current storage, so observation helpers like
        ``HITContract.verdict_of`` work unchanged; it is *not* live —
        refetch after mining to observe new state.
        """
        result = self.rpc.call("chain_contract", name=name)
        contract = codec.CONTRACT_TYPES[result["type"]](result["name"])
        contract.storage = wire.unpack(result["storage"])
        return contract

    # -- block production ---------------------------------------------------------

    def mine_block(self) -> Block:
        result = self.rpc.call("chain_mine")
        return codec.block_from_data(wire.unpack(result["block"]))

    # -- observation ---------------------------------------------------------------

    def subscribe(
        self, filter: Optional[EventFilter] = None, from_start: bool = False
    ) -> RemoteSubscription:
        head = self.rpc.call("chain_head")
        cursor = head["events_pruned"] if from_start else head["events"]
        return RemoteSubscription(self.rpc, filter, cursor)

    def events_named(
        self, name: str, contract: Optional[str] = None
    ) -> List[Event]:
        filter = (
            EventFilter.for_contract(contract, names=[name])
            if contract
            else EventFilter(names=[name])
        )
        subscription = self.subscribe(filter, from_start=True)
        return [record.event for record in subscription.poll()]

    @property
    def height(self) -> int:
        return self.rpc.call("chain_head")["height"]

    @property
    def blocks(self) -> List[Block]:
        """Every sealed block, fetched one RPC page at a time.

        An observation convenience mirroring ``Chain.blocks`` for
        outcome assembly (``HITSession.receipts``); event subscriptions
        are the scalable read path.
        """
        return [
            codec.block_from_data(
                wire.unpack(self.rpc.call("chain_block", number=number)["block"])
            )
            for number in range(self.height)
        ]

    @property
    def total_gas(self) -> int:
        return self.rpc.call("chain_gas")["total"]

    def state_root(self) -> bytes:
        """The node's current canonical state root (integrity checks)."""
        return bytes.fromhex(
            self.rpc.call("chain_state_root")["state_root"]
        )

    # -- light-client surface -------------------------------------------------

    def header(self, index: Optional[int] = None) -> Dict[str, Any]:
        """One commitment header (default: newest), decoded.

        Returns ``{"index", "count", "header", "header_hash"}`` with
        ``header`` as a plain field dict — :class:`repro.lightclient.
        LightClient` does the chaining and verification; this is just
        the fetch.
        """
        params = {} if index is None else {"index": index}
        result = self.rpc.call("chain_header", **params)
        return {
            "index": result["index"],
            "count": result["count"],
            "header": wire.unpack(result["header"]),
            "header_hash": bytes.fromhex(result["header_hash"]),
        }

    def get_proof(self, key: bytes) -> Dict[str, Any]:
        """A state proof for one trie key, with its anchoring header."""
        result = self.rpc.call("get_proof", key=key.hex())
        return {
            "key": bytes.fromhex(result["key"]),
            "proof": wire.unpack(result["proof"]),
            "header_index": result["header_index"],
            "header": wire.unpack(result["header"]),
            "header_hash": bytes.fromhex(result["header_hash"]),
        }

    def payment_indexes(self, address: Address) -> List[int]:
        """Journal positions of ``pay`` entries to ``address`` (untrusted
        hints for ``entry/<index>`` proofs)."""
        return list(self.rpc.call("chain_payments", address=wire.pack(address))["indexes"])


class RpcSwarm:
    """Mirror of :class:`~repro.storage.swarm.SwarmStore` over the node's
    gateway (real deployments talk to Swarm directly; the node proxies)."""

    def __init__(self, transport, auth: Optional[str] = None) -> None:
        self.rpc = RpcSession(transport, auth=auth)

    def put(self, content: bytes) -> bytes:
        return bytes.fromhex(
            self.rpc.call("swarm_put", data=content.hex())["digest"]
        )

    def get(self, digest: bytes) -> bytes:
        return bytes.fromhex(
            self.rpc.call("swarm_get", digest=digest.hex())["data"]
        )


# ---------------------------------------------------------------------------
# The protocol clients, re-based
# ---------------------------------------------------------------------------


class RpcRequesterClient(RequesterClient):
    """A requester whose chain and Swarm live behind a node's RPC surface.

    Identical protocol behaviour to the in-process parent — keys,
    commitments, and proofs are produced locally; only submissions and
    observations cross the wire.
    """

    def __init__(
        self,
        label: str,
        task,
        transport,
        balance: Optional[int] = None,
        secret: Optional[int] = None,
        auth: Optional[str] = None,
    ) -> None:
        super().__init__(
            label,
            task,
            RpcChain(transport, auth=auth),
            RpcSwarm(transport, auth=auth),
            balance=balance,
            secret=secret,
        )


class RpcWorkerClient(WorkerClient):
    """A worker whose chain and Swarm live behind a node's RPC surface."""

    def __init__(
        self,
        label: str,
        transport,
        answers: Optional[List[int]] = None,
        answer_strategy: Optional[Callable] = None,
        auth: Optional[str] = None,
    ) -> None:
        super().__init__(
            label,
            RpcChain(transport, auth=auth),
            RpcSwarm(transport, auth=auth),
            answers=answers,
            answer_strategy=answer_strategy,
        )
