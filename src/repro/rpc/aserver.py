"""The asyncio front-end: persistent connections, batches, server push.

:class:`AsyncRpcServer` serves the *same* :class:`~repro.rpc.server.RpcNode`
the threaded front-end does — same method registry, same validation, same
locks, same counters — behind an asyncio event loop instead of a
thread-per-connection ``http.server``.  The contract suite runs the same
seeded scenario through both and pins byte-identical receipts, gas, and
``state_root``; what changes is purely how far one node scales:

* **persistent connections** — one task per connection on one loop, so
  hundreds of idle subscribers cost file descriptors, not threads;
* **off-loop dispatch** — requests execute on a small thread pool while
  the loop keeps multiplexing sockets, and because the node's dispatch
  lock is reader-writer, concurrent ``chain_head``/balance/event reads
  proceed in parallel instead of serializing behind block production;
* **batch envelopes** — a JSON array of requests costs one round trip
  (the node answers arrays natively, so the threaded front-end accepts
  them too);
* **server-push subscriptions** — ``chain_subscribe`` turns the
  connection into an ``application/x-ndjson`` stream: the subscribe ack,
  then one :data:`repro.rpc.wire.PUSH_METHOD` notification frame per
  event batch, pushed when writes land (no client polling anywhere).
  Closing the connection unsubscribes; a cursor that falls behind the
  prune base gets a loud error frame, exactly like a ``chain_events``
  poll would.

The wire format is HTTP/1.1 on the request side — ``POST /rpc`` and
``GET /health`` — so the PR-5 :class:`~repro.rpc.client.HttpTransport`,
curl, and the whole contract suite work against this server unchanged;
``curl -N`` can even consume a subscription stream.

Push pump design: every subscription is its own task blocked on an
:class:`asyncio.Event`; the node's write listener (registered via
:meth:`RpcNode.add_write_listener`, fired by *any* front-end's mutating
dispatch) wakes them through ``call_soon_threadsafe``.  Each woken task
pages ``RpcNode.read_events`` off-loop under the shared read lock and
writes frames on the loop, so a slow subscriber only ever stalls itself.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from itertools import count
from typing import Any, Dict, Optional, Set, Tuple

from repro.errors import ReproError
from repro.obs import registry as _obs
from repro.obs.registry import render_prometheus
from repro.rpc import wire
from repro.rpc.server import (
    METRICS_CONTENT_TYPE,
    READ_METHODS,
    RpcNode,
    _BadParams,
    parse_event_filter,
)

_SUBSCRIBERS = _obs.REGISTRY.gauge(
    "rpc_subscribers", "Open push subscriptions on the async front-end"
)
_PUSH_FRAMES = _obs.REGISTRY.counter(
    "rpc_push_frames_total", "Event notification frames pushed to subscribers"
)

#: Method the async front-end adds on top of the node registry.
SUBSCRIBE_METHOD = "chain_subscribe"
#: Upper bound on one pushed frame's record batch.
PUSH_PAGE = 256
#: Cap on one HTTP header section.
MAX_HEADER_BYTES = 16 * 1024


class _Subscriber:
    """One streaming connection's push state."""

    __slots__ = ("sid", "filter", "cursor", "writer", "wake", "closed")

    def __init__(self, sid: int, filter, cursor: int, writer) -> None:
        self.sid = sid
        self.filter = filter
        self.cursor = cursor
        self.writer = writer
        self.wake = asyncio.Event()
        self.closed = False


class AsyncRpcServer:
    """An asyncio JSON-RPC server around one :class:`RpcNode`.

    Lifecycle mirrors :class:`~repro.rpc.server.RpcHttpServer`:
    ``port=0`` binds an ephemeral port, :meth:`start` serves from a
    background thread running its own loop (tests, embedding — use as a
    context manager), :meth:`serve_forever` runs the loop on the calling
    thread until SIGINT/SIGTERM or :meth:`shutdown` (the CLI's
    ``node rpc-serve --async``).
    """

    def __init__(
        self,
        node: RpcNode,
        host: str = "127.0.0.1",
        port: int = 0,
        dispatch_threads: int = 8,
        ready_callback: Optional[Any] = None,
    ) -> None:
        self.node = node
        self._host = host
        self._port = port
        self._dispatch_threads = dispatch_threads
        self._ready_callback = ready_callback
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._bound: Optional[Tuple[str, int]] = None
        self._startup_error: Optional[BaseException] = None
        self._subscribers: Set[_Subscriber] = set()
        self._connections: Set[Any] = set()
        self._conn_tasks: Set[Any] = set()
        self._next_sid = count(1)
        self.pushed_frames = 0
        node.add_write_listener(self._on_node_write)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def host(self) -> str:
        return self._bound[0] if self._bound else self._host

    @property
    def port(self) -> int:
        return self._bound[1] if self._bound else self._port

    @property
    def url(self) -> str:
        return "http://%s:%d/rpc" % (self.host, self.port)

    def start(self) -> "AsyncRpcServer":
        """Serve from a daemon thread running a private event loop."""
        self._thread = threading.Thread(
            target=self._run_blocking, name="rpc-aserve", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=10)
        if self._startup_error is not None:
            raise self._startup_error
        if self._bound is None:
            raise RuntimeError("async rpc server failed to bind in time")
        return self

    def serve_forever(self) -> None:
        """Run the loop on the calling thread until stopped (the CLI)."""
        self._run_blocking(install_signal_handlers=True)
        if self._startup_error is not None:
            raise self._startup_error

    def shutdown(self) -> None:
        """Stop the loop from any thread; idempotent."""
        loop = self._loop
        if loop is not None and not loop.is_closed() and self._stop is not None:
            try:
                loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # the loop stopped on its own between the checks
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def __enter__(self) -> "AsyncRpcServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    def _run_blocking(self, install_signal_handlers: bool = False) -> None:
        try:
            asyncio.run(self._main(install_signal_handlers))
        except BaseException as exc:  # surface bind errors to start()
            self._startup_error = exc
        finally:
            self._ready.set()

    async def _main(self, install_signal_handlers: bool) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=self._dispatch_threads,
            thread_name_prefix="rpc-dispatch",
        )
        if install_signal_handlers:
            import signal

            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    self._loop.add_signal_handler(signum, self._stop.set)
                except (NotImplementedError, RuntimeError):
                    pass  # non-main thread or exotic platform: Ctrl-C only
        server = await asyncio.start_server(
            self._serve_connection, self._host, self._port
        )
        self._bound = server.sockets[0].getsockname()[:2]
        self._ready.set()
        if self._ready_callback is not None:
            self._ready_callback(self)  # the CLI's "listening on" line
        try:
            async with server:
                await self._stop.wait()
        finally:
            # Drain connections gracefully: closing their transports
            # EOFs every pending read, so handler tasks exit on their
            # own instead of being cancelled under the loop teardown.
            for subscriber in list(self._subscribers):
                subscriber.closed = True
                subscriber.wake.set()
            for writer in list(self._connections):
                writer.close()
            if self._conn_tasks:
                try:
                    await asyncio.wait_for(
                        asyncio.gather(
                            *list(self._conn_tasks), return_exceptions=True
                        ),
                        timeout=5,
                    )
                except asyncio.TimeoutError:
                    pass
            self._pool.shutdown(wait=False)
            self._loop = None

    def _on_node_write(self) -> None:
        """Node write listener: wake every subscription task (any thread)."""
        loop = self._loop
        if loop is not None and self._subscribers:
            try:
                loop.call_soon_threadsafe(self._wake_subscribers)
            except RuntimeError:
                pass  # loop already closed mid-shutdown

    def _wake_subscribers(self) -> None:
        for subscriber in self._subscribers:
            subscriber.wake.set()

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------

    async def _serve_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._connections.add(writer)
        self._conn_tasks.add(task)
        try:
            await self._handle_connection(reader, writer)
        except asyncio.CancelledError:
            pass  # hard loop teardown beat the graceful drain to it
        finally:
            self._connections.discard(writer)
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _handle_connection(self, reader, writer) -> None:
        try:
            sock = writer.get_extra_info("socket")
            if sock is not None:
                import socket as _socket

                sock.setsockopt(_socket.IPPROTO_TCP, _socket.TCP_NODELAY, 1)
            while True:
                request = await self._read_http_request(reader, writer)
                if request is None:
                    return
                verb, path, headers, body = request
                if verb == "GET":
                    if not await self._respond_health(writer, path):
                        return
                    continue
                if path not in ("/", "/rpc"):
                    await self._respond(
                        writer, 404,
                        wire.failure(None, wire.INVALID_REQUEST,
                                     "no such endpoint %r" % path),
                        close=True,
                    )
                    return
                try:
                    envelope = json.loads(body.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    self.node.note_rejected()
                    await self._respond(
                        writer, 200,
                        wire.failure(None, wire.PARSE_ERROR,
                                     "parse error: %s" % exc),
                    )
                    continue
                if (
                    isinstance(envelope, dict)
                    and envelope.get("method") == SUBSCRIBE_METHOD
                ):
                    await self._serve_subscription(reader, writer, envelope)
                    return  # the stream owned the connection
                response = await asyncio.get_running_loop().run_in_executor(
                    self._pool, self.node.respond, envelope
                )
                await self._respond(writer, 200, wire.serialize(response))
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            pass  # client went away mid-request; nothing to answer

    async def _read_http_request(self, reader, writer):
        """One request off the keep-alive connection, or None to close."""
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3 or parts[0] not in ("POST", "GET"):
            await self._respond(
                writer, 400,
                wire.failure(None, wire.INVALID_REQUEST,
                             "malformed request line"),
                close=True,
            )
            return None
        verb, path = parts[0], parts[1]
        headers: Dict[str, str] = {}
        header_bytes = 0
        while True:
            line = await reader.readline()
            header_bytes += len(line)
            if header_bytes > MAX_HEADER_BYTES:
                await self._respond(
                    writer, 431,
                    wire.failure(None, wire.INVALID_REQUEST,
                                 "header section too large"),
                    close=True,
                )
                return None
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        if verb == "GET":
            return verb, path, headers, b""
        try:
            length = int(headers.get("content-length", ""))
        except ValueError:
            length = -1
        if length < 0:
            await self._respond(
                writer, 411,
                wire.failure(None, wire.INVALID_REQUEST,
                             "a non-negative Content-Length is required"),
                close=True,
            )
            return None
        if length > self.node.max_request_bytes:
            # From the header alone — never buffer an oversized body.
            self.node.note_rejected()
            await self._respond(
                writer, 413,
                wire.failure(
                    None, wire.OVERSIZED_REQUEST,
                    "request of %d bytes exceeds the %d-byte cap"
                    % (length, self.node.max_request_bytes),
                ),
                close=True,
            )
            return None
        body = await reader.readexactly(length) if length else b""
        return verb, path, headers, body

    async def _respond_health(self, writer, path: str) -> bool:
        if path == "/metrics":
            # Auth-exempt like /health: a read-only operational surface
            # carrying counts and durations, never payloads or tokens.
            await self._respond(
                writer, 200,
                render_prometheus().encode("utf-8"),
                content_type=METRICS_CONTENT_TYPE,
            )
            return True
        if path != "/health":
            await self._respond(
                writer, 404,
                wire.failure(None, wire.INVALID_REQUEST,
                             "no such endpoint %r" % path),
                close=True,
            )
            return False
        body = json.dumps(
            {
                "ok": True,
                "height": self.node.chain.height,
                "protocol": wire.PROTOCOL_VERSION,
                "subscribers": len(self._subscribers),
            }
        ).encode("utf-8")
        await self._respond(writer, 200, body)
        return True

    async def _respond(
        self,
        writer,
        status: int,
        body: bytes,
        close: bool = False,
        content_type: str = "application/json",
    ) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  411: "Length Required", 413: "Payload Too Large",
                  431: "Request Header Fields Too Large"}.get(status, "Error")
        head = (
            "HTTP/1.1 %d %s\r\n"
            "Content-Type: %s\r\n"
            "Content-Length: %d\r\n"
            "%s"
            "\r\n" % (
                status, reason, content_type, len(body),
                "Connection: close\r\n" if close else "",
            )
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        if close:
            writer.write_eof()

    # ------------------------------------------------------------------
    # Subscriptions (server push)
    # ------------------------------------------------------------------

    async def _serve_subscription(self, reader, writer, envelope) -> None:
        request_id = envelope.get("id")
        params = envelope.get("params", {})
        if not isinstance(params, dict):
            self.node.note_rejected()
            await self._respond(
                writer, 200,
                wire.failure(request_id, wire.INVALID_REQUEST,
                             "params must be an object"),
            )
            return
        try:
            filter = parse_event_filter(params)
            from_start = params.get("from_start", False)
            if not isinstance(from_start, bool):
                raise _BadParams("from_start must be a bool")
            cursor = params.get("cursor")
            if cursor is not None and (
                isinstance(cursor, bool) or not isinstance(cursor, int)
                or cursor < 0
            ):
                raise _BadParams("cursor must be an int >= 0")
        except _BadParams as exc:
            self.node.note_rejected()
            await self._respond(
                writer, 200,
                wire.failure(request_id, wire.INVALID_PARAMS, str(exc)),
            )
            return
        loop = asyncio.get_running_loop()
        if cursor is None:
            cursor = await loop.run_in_executor(
                self._pool, self.node.event_head, from_start
            )
        subscriber = _Subscriber(
            next(self._next_sid), filter, cursor, writer
        )
        # The ack rides the stream itself: status line, then NDJSON
        # frames until the client closes (closing unsubscribes).
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Cache-Control: no-store\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1"))
        writer.write(wire.frame(wire.result_value(
            request_id,
            {"subscription": subscriber.sid, "cursor": cursor},
        )))
        await writer.drain()
        self._subscribers.add(subscriber)
        _SUBSCRIBERS.inc()
        self.node._served.bump()
        eof_task = asyncio.create_task(self._drain_until_eof(reader))
        subscriber.wake.set()  # deliver anything already behind the cursor
        try:
            while not subscriber.closed:
                wake_task = asyncio.create_task(subscriber.wake.wait())
                done, _ = await asyncio.wait(
                    {eof_task, wake_task},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if eof_task in done:
                    wake_task.cancel()
                    break
                subscriber.wake.clear()
                if not await self._push_pages(subscriber):
                    break
        finally:
            subscriber.closed = True
            if subscriber in self._subscribers:
                self._subscribers.discard(subscriber)
                _SUBSCRIBERS.dec()
            eof_task.cancel()

    async def _drain_until_eof(self, reader) -> None:
        """Consume (and ignore) anything the subscriber sends until EOF."""
        try:
            while await reader.read(4096):
                pass
        except (ConnectionError, OSError):
            pass

    async def _push_pages(self, subscriber: _Subscriber) -> bool:
        """Push every outstanding page to one subscriber.

        Returns False when the subscription must end (disconnect, or a
        cursor compacted away — which gets a loud error frame first).
        """
        loop = asyncio.get_running_loop()
        while True:
            try:
                records, cursor, head = await loop.run_in_executor(
                    self._pool,
                    self.node.read_events,
                    subscriber.filter,
                    subscriber.cursor,
                    PUSH_PAGE,
                )
            except ReproError as exc:
                code, message, data = wire.exception_to_error(exc)
                try:
                    subscriber.writer.write(wire.frame(
                        wire.error_value(None, code, message, data)
                    ))
                    await subscriber.writer.drain()
                except (ConnectionError, OSError):
                    pass
                return False
            subscriber.cursor = cursor
            if records:
                try:
                    subscriber.writer.write(wire.frame(wire.push_value(
                        subscriber.sid, records, cursor, head
                    )))
                    await subscriber.writer.drain()
                except (ConnectionError, OSError):
                    return False
                self.pushed_frames += 1
                _PUSH_FRAMES.inc()
            if cursor >= head:
                return True
