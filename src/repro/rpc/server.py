"""The JSON-RPC node front-end: one loaded chain behind a request loop.

:class:`RpcNode` is the transport-agnostic core — a method registry plus
a single-writer lock around one :class:`~repro.chain.chain.Chain` (and
its Swarm store and optional :class:`~repro.store.nodestore.NodeStore`).
Every byte that reaches :meth:`RpcNode.handle` goes through the full
parse → validate → dispatch pipeline, so the in-memory loopback
transport used by fast tests exercises exactly the code paths a socket
does; :class:`RpcHttpServer` adds the stdlib ``http.server`` skin for
out-of-process clients (``node rpc-serve`` in the CLI).

The method set (versioned by :data:`repro.rpc.wire.PROTOCOL_VERSION`):

* **chain queries** — ``chain_head``, ``chain_block``, ``chain_events``
  (cursor-based :class:`~repro.chain.eventlog.EventFilter` paging),
  ``chain_gas``, ``chain_balance``, ``chain_payments``,
  ``chain_contract``, ``chain_state_root``;
* **transaction submission** — ``tx_register``, ``tx_deploy`` /
  ``tx_deploy_many``, and ``tx_send`` (which carries the protocol's
  ``commit`` / ``reveal`` / ``golden`` / ``evaluate`` /
  ``evaluate_batch`` / ``outrange`` / ``finalize`` / ``cancel`` phase
  messages), plus ``chain_mine`` to advance the clock;
* **node admin** — ``rpc_version``, ``node_status``,
  ``node_checkpoint``, ``node_prune``;
* **swarm gateway** — ``swarm_put`` / ``swarm_get`` (task blobs are
  off-chain content; the node proxies its content-addressed store).

Safety contract (pinned by ``tests/rpc/test_rpc_fuzz.py``): a rejected
request — malformed JSON, unknown method, wrong param types, oversized
body, replayed nonce — never changes node state; ``state_root`` is
byte-identical before and after.  Handlers therefore validate *every*
param before touching the chain, and mutations go through chain methods
whose revert semantics already guarantee atomicity.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.chain.chain import Chain
from repro.chain.eventlog import EventFilter
from repro.chain.transactions import Transaction, nonce_position
from repro.errors import ChainError, InvalidTransaction, ReproError
from repro.ledger.accounts import Address
from repro.storage.swarm import SwarmStore
from repro.store import codec
from repro.store.blockstore import StoreError
from repro.rpc import wire
from repro.rpc.wire import WireError

#: Default request-size cap; oversized bodies are rejected before parse.
MAX_REQUEST_BYTES = 2 * 1024 * 1024
#: Hard ceiling on one ``chain_events`` page.
MAX_EVENT_PAGE = 512

_MISSING = object()


class _BadParams(Exception):
    """Internal: a param failed validation (maps to INVALID_PARAMS)."""


def _param(
    params: Dict[str, Any],
    name: str,
    kinds: Tuple[type, ...],
    default: Any = _MISSING,
) -> Any:
    """Fetch one JSON-level param with a strict type check."""
    if name not in params:
        if default is _MISSING:
            raise _BadParams("missing param %r" % name)
        return default
    value = params[name]
    # bool is an int subclass; an int-typed param must not accept True.
    if isinstance(value, bool) and bool not in kinds:
        raise _BadParams("param %r must be %s, got bool" % (name, kinds))
    if not isinstance(value, kinds):
        raise _BadParams(
            "param %r must be %s, got %s"
            % (name, "/".join(k.__name__ for k in kinds), type(value).__name__)
        )
    return value


def _packed(
    params: Dict[str, Any],
    name: str,
    expected: Optional[type] = None,
    default: Any = _MISSING,
) -> Any:
    """Fetch one codec-packed param, optionally pinning its decoded type."""
    text = _param(params, name, (str,), default=default)
    if not isinstance(text, str):
        return text  # the absent-param default (e.g. None)
    try:
        value = wire.unpack(text)
    except WireError as exc:
        raise _BadParams("param %r: %s" % (name, exc)) from None
    if expected is not None and type(value) is not expected:
        raise _BadParams(
            "param %r must decode to %s, got %s"
            % (name, expected.__name__, type(value).__name__)
        )
    return value


def _hex_bytes(
    params: Dict[str, Any], name: str, default: Any = _MISSING
) -> Any:
    """Fetch one plain-hex bytes param."""
    text = _param(params, name, (str,), default=default)
    if not isinstance(text, str):
        return text
    try:
        return bytes.fromhex(text)
    except ValueError:
        raise _BadParams("param %r is not valid hex" % name) from None


class RpcNode:
    """One node — chain, swarm, optional store — behind a method registry.

    All dispatch runs under a re-entrant lock: the chain is a
    single-writer state machine and the HTTP transport is threaded, so
    requests serialize here, exactly like transactions in a block.
    """

    def __init__(
        self,
        chain: Optional[Chain] = None,
        swarm: Optional[SwarmStore] = None,
        store=None,
        max_request_bytes: int = MAX_REQUEST_BYTES,
    ) -> None:
        self.chain = chain if chain is not None else Chain()
        self.swarm = swarm if swarm is not None else SwarmStore()
        self.store = store
        self.max_request_bytes = max_request_bytes
        self.requests_served = 0
        self.requests_rejected = 0
        self._lock = threading.RLock()
        self._methods: Dict[str, Callable[[Dict[str, Any]], Any]] = {
            "rpc_version": self._rpc_version,
            "chain_head": self._chain_head,
            "chain_block": self._chain_block,
            "chain_events": self._chain_events,
            "chain_gas": self._chain_gas,
            "chain_balance": self._chain_balance,
            "chain_payments": self._chain_payments,
            "chain_contract": self._chain_contract,
            "chain_state_root": self._chain_state_root,
            "chain_mine": self._chain_mine,
            "tx_register": self._tx_register,
            "tx_send": self._tx_send,
            "tx_deploy": self._tx_deploy,
            "tx_deploy_many": self._tx_deploy_many,
            "node_status": self._node_status,
            "node_checkpoint": self._node_checkpoint,
            "node_prune": self._node_prune,
            "swarm_put": self._swarm_put,
            "swarm_get": self._swarm_get,
        }

    # ------------------------------------------------------------------
    # The request pipeline
    # ------------------------------------------------------------------

    def note_rejected(self) -> None:
        """Count a rejection decided outside :meth:`handle` (e.g. the
        HTTP layer refusing an oversized body from its header alone)."""
        with self._lock:
            self.requests_rejected += 1

    def handle(self, raw: bytes) -> bytes:
        """One request in, one response out — never an exception."""
        response, served = self._handle_raw(raw)
        # Handler threads are concurrent; the counters are shared state
        # like everything else on the node, so they mutate under the lock.
        with self._lock:
            if served:
                self.requests_served += 1
            else:
                self.requests_rejected += 1
        return response

    def _handle_raw(self, raw: bytes) -> Tuple[bytes, bool]:
        if len(raw) > self.max_request_bytes:
            return wire.failure(
                None,
                wire.OVERSIZED_REQUEST,
                "request of %d bytes exceeds the %d-byte cap"
                % (len(raw), self.max_request_bytes),
            ), False
        try:
            envelope = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return wire.failure(
                None, wire.PARSE_ERROR, "parse error: %s" % exc
            ), False

        if not isinstance(envelope, dict):
            return wire.failure(
                None, wire.INVALID_REQUEST,
                "request must be a single JSON object (batches unsupported)",
            ), False
        request_id = envelope.get("id")
        if not (request_id is None or isinstance(request_id, (int, str))):
            request_id = None
        if envelope.get("jsonrpc") != "2.0":
            return wire.failure(
                request_id, wire.INVALID_REQUEST,
                'request needs "jsonrpc": "2.0"',
            ), False
        method = envelope.get("method")
        if not isinstance(method, str):
            return wire.failure(
                request_id, wire.INVALID_REQUEST, "method must be a string"
            ), False
        params = envelope.get("params", {})
        if not isinstance(params, dict):
            return wire.failure(
                request_id, wire.INVALID_REQUEST, "params must be an object"
            ), False
        handler = self._methods.get(method)
        if handler is None:
            return wire.failure(
                request_id, wire.METHOD_NOT_FOUND, "no method %r" % method
            ), False
        try:
            with self._lock:
                result = handler(params)
        except _BadParams as exc:
            return wire.failure(request_id, wire.INVALID_PARAMS, str(exc)), False
        except ReproError as exc:
            code, message, data = wire.exception_to_error(exc)
            return wire.failure(request_id, code, message, data), False
        except Exception as exc:  # a handler bug must not kill the server
            return wire.failure(
                request_id,
                wire.INTERNAL_ERROR,
                "internal error: %s: %s" % (type(exc).__name__, exc),
            ), False
        return wire.success(request_id, result), True

    # ------------------------------------------------------------------
    # Admin
    # ------------------------------------------------------------------

    def _rpc_version(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "protocol": wire.PROTOCOL_VERSION,
            "schema": codec.SCHEMA_VERSION,
            "methods": sorted(self._methods),
        }

    def _node_status(self, params: Dict[str, Any]) -> Dict[str, Any]:
        # No state_root here: hashing it re-encodes the entire chain
        # under the node lock, which a routine status probe must not
        # cost.  `chain_state_root` is the explicit, priced request.
        chain = self.chain
        return {
            "state_dir": self.store.state_dir if self.store else None,
            "height": chain.height,
            "period": chain.clock.period,
            "accounts": len(chain.registry),
            "contracts": len(chain._contracts),
            "events": len(chain.event_log),
            "events_pruned": chain.event_log.pruned,
            "mempool": len(chain.mempool),
            "next_nonce": nonce_position(),
            "total_gas": chain.total_gas,
            "requests_served": self.requests_served,
            "requests_rejected": self.requests_rejected,
        }

    def _node_checkpoint(self, params: Dict[str, Any]) -> Dict[str, Any]:
        if self.store is None:
            raise StoreError(
                "no state directory attached — start the node with one "
                "(`node rpc-serve --state-dir ...`) to checkpoint"
            )
        root = self.store.save(self.chain)
        return {"state_root": root.hex(), "height": self.chain.height}

    def _node_prune(self, params: Dict[str, Any]) -> Dict[str, Any]:
        through = _param(params, "through", (int,), default=None)
        dropped = self.chain.event_log.prune(through=through)
        if dropped and self.store is not None:
            self.store.note_prune(self.chain)
        return {"dropped": dropped, "pruned": self.chain.event_log.pruned}

    # ------------------------------------------------------------------
    # Chain queries
    # ------------------------------------------------------------------

    def _chain_head(self, params: Dict[str, Any]) -> Dict[str, Any]:
        blocks = self.chain.blocks
        return {
            "height": self.chain.height,
            "period": self.chain.clock.period,
            "block_hash": blocks[-1].block_hash().hex() if blocks else None,
            "events": len(self.chain.event_log),
            "events_pruned": self.chain.event_log.pruned,
        }

    def _chain_block(self, params: Dict[str, Any]) -> Dict[str, Any]:
        number = _param(params, "number", (int,))
        if not 0 <= number < self.chain.height:
            raise ChainError(
                "no block %d (height is %d)" % (number, self.chain.height)
            )
        return {"block": wire.pack(codec.block_to_data(self.chain.blocks[number]))}

    def _chain_events(self, params: Dict[str, Any]) -> Dict[str, Any]:
        cursor = _param(params, "cursor", (int,), default=0)
        limit = _param(params, "limit", (int,), default=MAX_EVENT_PAGE)
        contract = _packed(params, "contract", Address, default=None)
        names = _param(params, "names", (list,), default=None)
        topic = _hex_bytes(params, "topic", default=None)
        if cursor < 0:
            raise _BadParams("cursor must be >= 0")
        if not 1 <= limit <= MAX_EVENT_PAGE:
            raise _BadParams("limit must be in 1..%d" % MAX_EVENT_PAGE)
        if names is not None and not all(
            isinstance(name, str) for name in names
        ):
            raise _BadParams("names must be a list of strings")
        log = self.chain.event_log
        if cursor < log.pruned:
            # Refuse rather than silently resume past the gap: a reader
            # whose cursor fell behind a compaction has *lost* events.
            raise ChainError(
                "cursor %d precedes the pruned base %d — events were "
                "compacted away; restart from a fresh subscription"
                % (cursor, log.pruned)
            )
        filter = (
            None
            if contract is None and names is None and topic is None
            else EventFilter(contract=contract, names=names, topic=topic)
        )
        records: List[Dict[str, Any]] = []
        next_cursor = cursor
        exhausted = True
        for record in log.iter_since(cursor):
            if filter is not None and not filter.matches(record.event):
                next_cursor = record.sequence + 1
                continue
            if len(records) == limit:
                exhausted = False
                break
            records.append(
                {
                    "sequence": record.sequence,
                    "block": record.block_number,
                    "event": wire.pack(codec.event_to_data(record.event)),
                }
            )
            next_cursor = record.sequence + 1
        if exhausted:
            next_cursor = len(log)
        return {
            "records": records,
            "cursor": next_cursor,
            "head": len(log),
            "pruned": log.pruned,
        }

    def _chain_gas(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "total": self.chain.total_gas,
            "by_sender": wire.pack(dict(self.chain.gas_by_sender)),
        }

    def _chain_balance(self, params: Dict[str, Any]) -> Dict[str, Any]:
        address = _packed(params, "address", Address)
        return {"balance": self.chain.ledger.balance_of(address)}

    def _chain_payments(self, params: Dict[str, Any]) -> Dict[str, Any]:
        address = _packed(params, "address", Address)
        return {
            "entries": wire.pack(
                [
                    codec.ledger_entry_to_data(entry)
                    for entry in self.chain.ledger.payments_to(address)
                ]
            )
        }

    def _chain_contract(self, params: Dict[str, Any]) -> Dict[str, Any]:
        name = _param(params, "name", (str,))
        contract = self.chain.contract(name)
        return {
            "type": type(contract).__name__,
            "name": contract.name,
            "address": wire.pack(contract.address),
            "storage": wire.pack(contract.storage),
        }

    def _chain_state_root(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return {"state_root": codec.state_root(self.chain).hex()}

    # ------------------------------------------------------------------
    # Transaction submission
    # ------------------------------------------------------------------

    def _tx_register(self, params: Dict[str, Any]) -> Dict[str, Any]:
        label = _param(params, "label", (str,))
        balance = _param(params, "balance", (int,), default=0)
        if balance < 0:
            raise _BadParams("balance must be >= 0")
        address = self.chain.register_account(label, balance)
        return {"address": wire.pack(address)}

    def _tx_send(self, params: Dict[str, Any]) -> Dict[str, Any]:
        sender = _packed(params, "sender", Address)
        contract = _param(params, "contract", (str,))
        method = _param(params, "method", (str,))
        args = _packed(params, "args", tuple, default=())
        if not isinstance(args, tuple):
            raise _BadParams("args must decode to a tuple")
        payload = _hex_bytes(params, "payload", default=b"")
        value = _param(params, "value", (int,), default=0)
        nonce = _param(params, "nonce", (int,), default=None)
        if value < 0:
            raise _BadParams("value must be >= 0")
        if method.startswith("_") or not method:
            raise InvalidTransaction("method %r is not callable" % method)
        if not self.chain.registry.is_granted(sender):
            raise InvalidTransaction(
                "sender %s is not a registered identity" % sender
            )
        if nonce is not None and nonce != nonce_position():
            # Replay/gap protection: an explicit nonce must be exactly
            # the next one this node will stamp.
            raise InvalidTransaction(
                "replayed or out-of-order nonce %d (next is %d)"
                % (nonce, nonce_position())
            )
        transaction = self.chain.send(
            sender, contract, method, args=args, payload=payload, value=value
        )
        return {
            "nonce": transaction.nonce,
            "tx_hash": transaction.tx_hash().hex(),
        }

    def _deployment_from_params(
        self, params: Dict[str, Any]
    ) -> Tuple[Any, Address, tuple, bytes]:
        kind = _param(params, "type", (str,))
        name = _param(params, "name", (str,))
        deployer = _packed(params, "deployer", Address)
        args = _packed(params, "args", tuple, default=())
        payload = _hex_bytes(params, "payload", default=b"")
        contract_cls = codec.CONTRACT_TYPES.get(kind)
        if contract_cls is None:
            raise InvalidTransaction(
                "unknown contract type %r (deployable: %s)"
                % (kind, ", ".join(sorted(codec.CONTRACT_TYPES)))
            )
        if not self.chain.registry.is_granted(deployer):
            raise InvalidTransaction(
                "deployer %s is not a registered identity" % deployer
            )
        return contract_cls(name), deployer, args, payload

    def _tx_deploy(self, params: Dict[str, Any]) -> Dict[str, Any]:
        contract, deployer, args, payload = self._deployment_from_params(params)
        value = _param(params, "value", (int,), default=0)
        if value < 0:
            raise _BadParams("value must be >= 0")
        receipt = self.chain.deploy(
            contract, deployer, args=args, payload=payload, value=value
        )
        return {"receipt": wire.pack(codec.receipt_to_data(receipt))}

    def _tx_deploy_many(self, params: Dict[str, Any]) -> Dict[str, Any]:
        items = _param(params, "deployments", (list,))
        if not items:
            raise _BadParams("deployments must be a non-empty list")
        deployments = []
        for item in items:
            if not isinstance(item, dict):
                raise _BadParams("each deployment must be an object")
            deployments.append(self._deployment_from_params(item))
        receipts = self.chain.deploy_many(deployments)
        return {
            "receipts": [
                wire.pack(codec.receipt_to_data(receipt)) for receipt in receipts
            ]
        }

    def _chain_mine(self, params: Dict[str, Any]) -> Dict[str, Any]:
        block = self.chain.mine_block()
        return {
            "block": wire.pack(codec.block_to_data(block)),
            "period": self.chain.clock.period,
            "height": self.chain.height,
        }

    # ------------------------------------------------------------------
    # Swarm gateway
    # ------------------------------------------------------------------

    def _swarm_put(self, params: Dict[str, Any]) -> Dict[str, Any]:
        data = _hex_bytes(params, "data")
        return {"digest": self.swarm.put(data).hex()}

    def _swarm_get(self, params: Dict[str, Any]) -> Dict[str, Any]:
        digest = _hex_bytes(params, "digest")
        return {"data": self.swarm.get(digest).hex()}


# ---------------------------------------------------------------------------
# The HTTP transport skin
# ---------------------------------------------------------------------------


class _RpcRequestHandler(BaseHTTPRequestHandler):
    """POST / or /rpc carries JSON-RPC; GET /health is a liveness probe."""

    protocol_version = "HTTP/1.1"
    server_version = "DragoonRpc/%d" % wire.PROTOCOL_VERSION
    # Small request/response pairs on one keep-alive connection are the
    # workload; Nagle + delayed ACK would add ~40ms to every round trip.
    disable_nagle_algorithm = True

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # request logging stays out of stdout (the CLI owns it)

    def _respond(self, status: int, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        node: RpcNode = self.server.node  # type: ignore[attr-defined]
        if self.path not in ("/", "/rpc"):
            self._respond(
                404, wire.failure(None, wire.INVALID_REQUEST,
                                  "no such endpoint %r" % self.path)
            )
            # The unread body would desync the next keep-alive request.
            self.close_connection = True
            return
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            length = -1
        if length < 0:
            self._respond(
                411, wire.failure(None, wire.INVALID_REQUEST,
                                  "a non-negative Content-Length is required")
            )
            self.close_connection = True
            return
        if length > node.max_request_bytes:
            # Reject from the header alone — never buffer an oversized
            # body into memory.
            node.note_rejected()
            self._respond(
                413,
                wire.failure(
                    None, wire.OVERSIZED_REQUEST,
                    "request of %d bytes exceeds the %d-byte cap"
                    % (length, node.max_request_bytes),
                ),
            )
            self.close_connection = True
            return
        raw = self.rfile.read(length)
        self._respond(200, node.handle(raw))

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        node: RpcNode = self.server.node  # type: ignore[attr-defined]
        if self.path != "/health":
            self._respond(
                404, wire.failure(None, wire.INVALID_REQUEST,
                                  "no such endpoint %r" % self.path)
            )
            return
        body = json.dumps(
            {"ok": True, "height": node.chain.height,
             "protocol": wire.PROTOCOL_VERSION}
        ).encode("utf-8")
        self._respond(200, body)


class RpcHttpServer:
    """A threaded localhost JSON-RPC server around one :class:`RpcNode`.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port`).
    Use as a context manager in tests; long-lived processes call
    :meth:`serve_forever` (the CLI's ``node rpc-serve``).
    """

    def __init__(
        self, node: RpcNode, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.node = node
        self._httpd = ThreadingHTTPServer((host, port), _RpcRequestHandler)
        self._httpd.daemon_threads = True
        self._httpd.node = node  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return "http://%s:%d/rpc" % (self.host, self.port)

    def start(self) -> "RpcHttpServer":
        """Serve on a daemon thread (tests, embedded use)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="rpc-serve", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (the CLI)."""
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "RpcHttpServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
