"""The JSON-RPC node front-end: one loaded chain behind a request loop.

:class:`RpcNode` is the transport-agnostic core — a method registry plus
a single-writer lock around one :class:`~repro.chain.chain.Chain` (and
its Swarm store and optional :class:`~repro.store.nodestore.NodeStore`).
Every byte that reaches :meth:`RpcNode.handle` goes through the full
parse → validate → dispatch pipeline, so the in-memory loopback
transport used by fast tests exercises exactly the code paths a socket
does; :class:`RpcHttpServer` adds the stdlib ``http.server`` skin for
out-of-process clients (``node rpc-serve`` in the CLI).

The method set (versioned by :data:`repro.rpc.wire.PROTOCOL_VERSION`):

* **chain queries** — ``chain_head``, ``chain_block``, ``chain_events``
  (cursor-based :class:`~repro.chain.eventlog.EventFilter` paging),
  ``chain_gas``, ``chain_balance``, ``chain_payments``,
  ``chain_contract``, ``chain_state_root``, and the light-client pair
  ``chain_header`` / ``get_proof`` (hash-chained state commitments and
  Merkle membership proofs against them);
* **transaction submission** — ``tx_register``, ``tx_deploy`` /
  ``tx_deploy_many``, and ``tx_send`` (which carries the protocol's
  ``commit`` / ``reveal`` / ``golden`` / ``evaluate`` /
  ``evaluate_batch`` / ``outrange`` / ``finalize`` / ``cancel`` phase
  messages), plus ``chain_mine`` to advance the clock;
* **node admin** — ``rpc_version``, ``node_status``,
  ``node_checkpoint``, ``node_prune``;
* **swarm gateway** — ``swarm_put`` / ``swarm_get`` (task blobs are
  off-chain content; the node proxies its content-addressed store).

Safety contract (pinned by ``tests/rpc/test_rpc_fuzz.py``): a rejected
request — malformed JSON, unknown method, wrong param types, oversized
body, replayed nonce, missing auth token — never changes node state;
``state_root`` is byte-identical before and after.  Handlers therefore
validate *every* param before touching the chain, and mutations go
through chain methods whose revert semantics already guarantee
atomicity.

Concurrency discipline: the chain is a single-writer state machine, so
mutating methods serialize behind one exclusive lock — but pure reads
(``chain_head``, balances, event pages) only need a *consistent* view,
and they dominate a population-scale workload.  Dispatch therefore runs
under a reader-writer lock (:class:`_RWLock`): any number of concurrent
readers, writers exclusive, writers preferred so a read storm cannot
starve block production.  Request counters are atomics so the hot path
takes the node lock exactly once.

Batch envelopes (JSON-RPC 2.0 arrays) are handled at this layer, so
both front-ends — the threaded :class:`RpcHttpServer` here and the
asyncio :class:`~repro.rpc.aserver.AsyncRpcServer` — accept them.
Token authorization (:class:`RpcAuth`) guards admin methods
(``chain_mine``, ``node_checkpoint``, ``node_prune``) and submissions
(``tx_*``, ``swarm_put``); a node constructed without ``auth`` stays
open, preserving the PR-5 behaviour for local tooling.
"""

from __future__ import annotations

import contextlib
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.chain.chain import Chain
from repro.chain.eventlog import EventFilter
from repro.chain.transactions import Transaction, nonce_position
from repro.errors import ChainError, InvalidTransaction, ReproError
from repro.ledger.accounts import Address
from repro.obs import registry as _obs
from repro.obs.registry import render_prometheus
from repro.obs.tracing import span_clock, trace_span
from repro.obs.logging import get_logger
from repro.storage.swarm import SwarmStore
from repro.store import codec
from repro.store import trie as state_trie
from repro.store.blockstore import StoreError
from repro.rpc import wire
from repro.rpc.wire import WireError

#: Prometheus text exposition content type (format v0.0.4).
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_RPC_REQUESTS = _obs.REGISTRY.counter(
    "rpc_requests_total",
    "Successfully dispatched RPC requests, by method",
    labelnames=("method",),
)
_RPC_REJECTED = _obs.REGISTRY.counter(
    "rpc_rejected_total",
    "RPC requests refused at any pipeline stage (parse, auth, params, error)",
)
_RPC_REQUEST_SECONDS = _obs.REGISTRY.histogram(
    "rpc_request_seconds",
    "Dispatch wall time (lock wait + handler) per served request",
    labelnames=("method",),
)
_RPC_PROOFS = _obs.REGISTRY.counter(
    "rpc_proofs_served_total",
    "State proofs served over get_proof",
)
_RPC_LISTENER_ERRORS = _obs.REGISTRY.counter(
    "rpc_listener_errors_total",
    "Write-listener callbacks that raised (push pump faults)",
)

_log = get_logger("rpc")


def _bind_verifier_pool_gauges(pool) -> None:
    """Point the pool-shape gauges at the live pool a node fronts.

    Samplers pull at scrape time, so ``node_metrics`` and ``/metrics``
    report the same pool ``node_status`` describes — one source of
    truth, re-bound if a newer node wraps a newer pool.  With no pool
    (``None``) the families still exist and read zero, so the scrape
    surface is stable across node configurations.
    """
    _obs.REGISTRY.gauge(
        "verifier_pool_procs",
        "Worker processes configured on the node's verifier pool",
    ).set_sampler(lambda: pool.procs if pool is not None else 0)
    _obs.REGISTRY.gauge(
        "verifier_pool_alive",
        "Whether the node's verifier pool has a live executor (0/1)",
    ).set_sampler(
        lambda: 1 if pool is not None and pool._executor is not None else 0
    )
    _obs.REGISTRY.gauge(
        "verifier_pool_jobs_dispatched",
        "Jobs the node's verifier pool has dispatched over its lifetime",
    ).set_sampler(lambda: pool.jobs_dispatched if pool is not None else 0)
    _obs.REGISTRY.gauge(
        "verifier_pool_retries",
        "Jobs the node's verifier pool re-ran after a worker death",
    ).set_sampler(lambda: pool.retries if pool is not None else 0)


_bind_verifier_pool_gauges(None)

#: Default request-size cap; oversized bodies are rejected before parse.
MAX_REQUEST_BYTES = 2 * 1024 * 1024
#: Hard ceiling on one ``chain_events`` page.
MAX_EVENT_PAGE = 512
#: Hard ceiling on requests per batch envelope.
MAX_BATCH_REQUESTS = 128

#: Methods that only read node state: dispatched under the shared side
#: of the node lock, so they never serialize behind each other.
READ_METHODS = frozenset(
    {
        "rpc_version",
        "chain_head",
        "chain_block",
        "chain_events",
        "chain_gas",
        "chain_balance",
        "chain_payments",
        "chain_contract",
        "chain_state_root",
        "chain_header",
        "get_proof",
        "node_status",
        "node_metrics",
        "swarm_get",
    }
)

#: Methods only an admin token may call once auth is configured.
ADMIN_METHODS = frozenset({"chain_mine", "node_checkpoint", "node_prune"})
#: Methods a submit (or admin) token may call once auth is configured.
SUBMIT_METHODS = frozenset(
    {"tx_register", "tx_send", "tx_deploy", "tx_deploy_many", "swarm_put"}
)

_MISSING = object()


class _RWLock:
    """A writer-preferring reader-writer lock.

    Readers share; a writer excludes everyone.  Waiting writers block
    *new* readers, so a steady stream of cheap reads cannot starve block
    production.  Not re-entrant — dispatch never nests lock scopes.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextlib.contextmanager
    def read(self):
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextlib.contextmanager
    def write(self):
        with self._cond:
            self._writers_waiting += 1
            while self._writer or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writer = True
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


class _AtomicCounter:
    """A lock-guarded counter: bumping it never touches the node lock."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def bump(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class RpcAuth:
    """Token-based authorization for the node's guarded methods.

    Two roles: **admin** tokens may call everything, including
    ``chain_mine`` / ``node_checkpoint`` / ``node_prune``; **submit**
    tokens may additionally-to-reads call the transaction-submission
    methods (``tx_*``, ``swarm_put``).  Pure reads never need a token.
    The token rides the envelope as a top-level ``"auth"`` member, so
    every transport carries it identically.
    """

    def __init__(
        self,
        admin_tokens: Iterable[str] = (),
        submit_tokens: Iterable[str] = (),
    ) -> None:
        self.admin_tokens = frozenset(admin_tokens)
        self.submit_tokens = frozenset(submit_tokens)
        if not (self.admin_tokens or self.submit_tokens):
            raise ValueError("RpcAuth with no tokens would lock everyone out")

    def permits(self, method: str, token: Optional[str]) -> bool:
        if method in ADMIN_METHODS:
            return token in self.admin_tokens
        if method in SUBMIT_METHODS:
            return token in self.admin_tokens or token in self.submit_tokens
        return True


class _BadParams(Exception):
    """Internal: a param failed validation (maps to INVALID_PARAMS)."""


def _param(
    params: Dict[str, Any],
    name: str,
    kinds: Tuple[type, ...],
    default: Any = _MISSING,
) -> Any:
    """Fetch one JSON-level param with a strict type check."""
    if name not in params:
        if default is _MISSING:
            raise _BadParams("missing param %r" % name)
        return default
    value = params[name]
    # bool is an int subclass; an int-typed param must not accept True.
    if isinstance(value, bool) and bool not in kinds:
        raise _BadParams("param %r must be %s, got bool" % (name, kinds))
    if not isinstance(value, kinds):
        raise _BadParams(
            "param %r must be %s, got %s"
            % (name, "/".join(k.__name__ for k in kinds), type(value).__name__)
        )
    return value


def _packed(
    params: Dict[str, Any],
    name: str,
    expected: Optional[type] = None,
    default: Any = _MISSING,
) -> Any:
    """Fetch one codec-packed param, optionally pinning its decoded type."""
    text = _param(params, name, (str,), default=default)
    if not isinstance(text, str):
        return text  # the absent-param default (e.g. None)
    try:
        value = wire.unpack(text)
    except WireError as exc:
        raise _BadParams("param %r: %s" % (name, exc)) from None
    if expected is not None and type(value) is not expected:
        raise _BadParams(
            "param %r must decode to %s, got %s"
            % (name, expected.__name__, type(value).__name__)
        )
    return value


def _hex_bytes(
    params: Dict[str, Any], name: str, default: Any = _MISSING
) -> Any:
    """Fetch one plain-hex bytes param."""
    text = _param(params, name, (str,), default=default)
    if not isinstance(text, str):
        return text
    try:
        return bytes.fromhex(text)
    except ValueError:
        raise _BadParams("param %r is not valid hex" % name) from None


def parse_event_filter(params: Dict[str, Any]):
    """The shared ``contract``/``names``/``topic`` filter params.

    Used by ``chain_events`` and by the async server's subscription
    open; raises the same :class:`_BadParams` either way, so a bad
    filter maps to ``INVALID_PARAMS`` on both paths.
    """
    contract = _packed(params, "contract", Address, default=None)
    names = _param(params, "names", (list,), default=None)
    topic = _hex_bytes(params, "topic", default=None)
    if names is not None and not all(isinstance(name, str) for name in names):
        raise _BadParams("names must be a list of strings")
    if contract is None and names is None and topic is None:
        return None
    return EventFilter(contract=contract, names=names, topic=topic)


class RpcNode:
    """One node — chain, swarm, optional store — behind a method registry.

    Dispatch runs under a reader-writer lock: mutating methods hold it
    exclusively (the chain is a single-writer state machine, so writes
    serialize exactly like transactions in a block), while the read
    methods in :data:`READ_METHODS` share it and proceed concurrently.
    """

    def __init__(
        self,
        chain: Optional[Chain] = None,
        swarm: Optional[SwarmStore] = None,
        store=None,
        max_request_bytes: int = MAX_REQUEST_BYTES,
        auth: Optional[RpcAuth] = None,
        verifier_pool=None,
    ) -> None:
        self.chain = chain if chain is not None else Chain()
        self.swarm = swarm if swarm is not None else SwarmStore()
        self.store = store
        self.max_request_bytes = max_request_bytes
        self.auth = auth
        #: Optional :class:`repro.parallel.VerifierPool`.  Mutating
        #: dispatches install its MSM/Miller backends for their duration,
        #: so the batched proof checks inside transaction execution
        #: (``chain_mine`` running ``evaluate_batch``) fan out across the
        #: pool's worker processes while the write lock is held by this
        #: one dispatching thread — the lock serializes state mutation,
        #: not the cryptography.  Reads never install hooks.
        self.verifier_pool = verifier_pool
        _bind_verifier_pool_gauges(verifier_pool)
        self._served = _AtomicCounter()
        self._rejected = _AtomicCounter()
        self._lock = _RWLock()
        self._write_listeners: List[Callable[[], None]] = []
        self._methods: Dict[str, Callable[[Dict[str, Any]], Any]] = {
            "rpc_version": self._rpc_version,
            "chain_head": self._chain_head,
            "chain_block": self._chain_block,
            "chain_events": self._chain_events,
            "chain_gas": self._chain_gas,
            "chain_balance": self._chain_balance,
            "chain_payments": self._chain_payments,
            "chain_contract": self._chain_contract,
            "chain_state_root": self._chain_state_root,
            "chain_header": self._chain_header,
            "get_proof": self._get_proof,
            "chain_mine": self._chain_mine,
            "tx_register": self._tx_register,
            "tx_send": self._tx_send,
            "tx_deploy": self._tx_deploy,
            "tx_deploy_many": self._tx_deploy_many,
            "node_status": self._node_status,
            "node_metrics": self._node_metrics,
            "node_checkpoint": self._node_checkpoint,
            "node_prune": self._node_prune,
            "swarm_put": self._swarm_put,
            "swarm_get": self._swarm_get,
        }
        #: A node that serves proofs also serves the headers they
        #: anchor to: enable the hash-chained header timeline and mint
        #: the genesis-anchored link for the state as loaded.  Plain
        #: (node-less) chains never pay for this — the flag defaults
        #: off in :class:`~repro.store.trie.ChainStateTrie`.
        self._state_tracker = state_trie.chain_state_trie(self.chain)
        self._state_tracker.track_headers = True
        self._state_tracker.ensure_header(self.chain)

    # ------------------------------------------------------------------
    # The request pipeline
    # ------------------------------------------------------------------

    @property
    def requests_served(self) -> int:
        return self._served.value

    @property
    def requests_rejected(self) -> int:
        return self._rejected.value

    def note_rejected(self) -> None:
        """Count a rejection decided outside :meth:`handle` (e.g. the
        HTTP layer refusing an oversized body from its header alone)."""
        self._rejected.bump()

    def add_write_listener(self, listener: Callable[[], None]) -> None:
        """Call ``listener`` after every successful mutating dispatch.

        The async front-end hangs its subscription pump here, so pushes
        are event-driven even when the write arrived through a
        *different* front-end sharing this node.  Listeners run on the
        dispatching thread, outside the lock — they must be cheap and
        thread-safe (the async server's is ``call_soon_threadsafe``).
        """
        self._write_listeners.append(listener)

    def _notify_write(self) -> None:
        for listener in self._write_listeners:
            try:
                listener()
            except Exception as exc:
                # A dead listener must not fail the request — but a
                # silently dead push pump is undiagnosable.  Count it
                # (scrapeable as rpc_listener_errors_total) and leave
                # a debug trace.
                _RPC_LISTENER_ERRORS.inc()
                _log.debug(
                    "write listener error",
                    error="%s: %s" % (type(exc).__name__, exc),
                )

    def handle(self, raw: bytes) -> bytes:
        """One request (or batch) in, one response out — never an exception."""
        if len(raw) > self.max_request_bytes:
            self._rejected.bump()
            return wire.failure(
                None,
                wire.OVERSIZED_REQUEST,
                "request of %d bytes exceeds the %d-byte cap"
                % (len(raw), self.max_request_bytes),
            )
        try:
            envelope = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._rejected.bump()
            return wire.failure(None, wire.PARSE_ERROR, "parse error: %s" % exc)
        return wire.serialize(self.respond(envelope))

    def respond(self, envelope: Any) -> Any:
        """One parsed envelope — single or batch — to its response value.

        The transport-independent core both front-ends call: the
        threaded server hands it the parsed body, the asyncio server
        calls it from an executor thread.  A batch (a JSON array) maps
        to an array of responses in request order; each member counts
        toward the served/rejected totals on its own.
        """
        if isinstance(envelope, list):
            if not envelope:
                self._rejected.bump()
                return wire.error_value(
                    None, wire.INVALID_REQUEST, "batch must not be empty"
                )
            if len(envelope) > MAX_BATCH_REQUESTS:
                self._rejected.bump()
                return wire.error_value(
                    None,
                    wire.INVALID_REQUEST,
                    "batch of %d requests exceeds the %d-request cap"
                    % (len(envelope), MAX_BATCH_REQUESTS),
                )
            return [self._respond_one(member) for member in envelope]
        return self._respond_one(envelope)

    def _respond_one(self, envelope: Any) -> Dict[str, Any]:
        response, served = self._dispatch(envelope)
        (self._served if served else self._rejected).bump()
        if not served:
            _RPC_REJECTED.inc()
        return response

    def _dispatch(self, envelope: Any) -> Tuple[Dict[str, Any], bool]:
        if not isinstance(envelope, dict):
            return wire.error_value(
                None, wire.INVALID_REQUEST,
                "request must be a JSON object (or a batch of them)",
            ), False
        request_id = envelope.get("id")
        if not (request_id is None or isinstance(request_id, (int, str))):
            request_id = None
        if envelope.get("jsonrpc") != "2.0":
            return wire.error_value(
                request_id, wire.INVALID_REQUEST,
                'request needs "jsonrpc": "2.0"',
            ), False
        method = envelope.get("method")
        if not isinstance(method, str):
            return wire.error_value(
                request_id, wire.INVALID_REQUEST, "method must be a string"
            ), False
        params = envelope.get("params", {})
        if not isinstance(params, dict):
            return wire.error_value(
                request_id, wire.INVALID_REQUEST, "params must be an object"
            ), False
        handler = self._methods.get(method)
        if handler is None:
            return wire.error_value(
                request_id, wire.METHOD_NOT_FOUND, "no method %r" % method
            ), False
        token = envelope.get("auth")
        if token is not None and not isinstance(token, str):
            return wire.error_value(
                request_id, wire.INVALID_REQUEST, "auth must be a string token"
            ), False
        if self.auth is not None and not self.auth.permits(method, token):
            return wire.error_value(
                request_id,
                wire.UNAUTHORIZED,
                "method %r needs an authorized token" % method,
            ), False
        is_read = method in READ_METHODS
        lock = self._lock.read() if is_read else self._lock.write()
        started = span_clock()
        try:
            with trace_span("rpc.dispatch", method=method):
                with lock:
                    if is_read or self.verifier_pool is None:
                        result = handler(params)
                    else:
                        # One writer at a time (the write lock guarantees
                        # it), so scoping the process-wide backend hooks
                        # to the dispatch is race-free — and keeps them
                        # out of any other in-process user of the crypto
                        # layer.
                        with self.verifier_pool.installed():
                            result = handler(params)
            if not is_read:
                self._notify_write()
        except _BadParams as exc:
            return wire.error_value(
                request_id, wire.INVALID_PARAMS, str(exc)
            ), False
        except ReproError as exc:
            code, message, data = wire.exception_to_error(exc)
            return wire.error_value(request_id, code, message, data), False
        except Exception as exc:  # a handler bug must not kill the server
            return wire.error_value(
                request_id,
                wire.INTERNAL_ERROR,
                "internal error: %s: %s" % (type(exc).__name__, exc),
            ), False
        _RPC_REQUESTS.inc(method=method)
        _RPC_REQUEST_SECONDS.observe(span_clock() - started, method=method)
        return wire.result_value(request_id, result), True

    # -- the async front-end's read-side helpers -----------------------

    def read_events(
        self, filter, cursor: int, limit: int = MAX_EVENT_PAGE
    ) -> Tuple[List[Any], int, int]:
        """One filtered event page under the shared lock, for push.

        Returns ``(records, next_cursor, head)`` where each record is
        already wire-shaped (the same dicts ``chain_events`` returns).
        Raises :class:`ChainError` if ``cursor`` fell behind the prune
        base — the pushing server forwards that to the subscriber.
        """
        with self._lock.read():
            return self._events_page(filter, cursor, limit)

    def event_head(self, from_start: bool) -> int:
        """The cursor a fresh subscription starts at (shared lock)."""
        with self._lock.read():
            log = self.chain.event_log
            return log.pruned if from_start else len(log)

    # ------------------------------------------------------------------
    # Admin
    # ------------------------------------------------------------------

    def _rpc_version(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "protocol": wire.PROTOCOL_VERSION,
            "schema": codec.SCHEMA_VERSION,
            "methods": sorted(self._methods),
        }

    def _node_status(self, params: Dict[str, Any]) -> Dict[str, Any]:
        # No state_root here: hashing it re-encodes the entire chain
        # under the node lock, which a routine status probe must not
        # cost.  `chain_state_root` is the explicit, priced request.
        chain = self.chain
        status = {
            "state_dir": self.store.state_dir if self.store else None,
            "height": chain.height,
            "period": chain.clock.period,
            "accounts": len(chain.registry),
            "contracts": len(chain._contracts),
            "events": len(chain.event_log),
            "events_pruned": chain.event_log.pruned,
            "mempool": len(chain.mempool),
            "next_nonce": nonce_position(),
            "total_gas": chain.total_gas,
            "requests_served": self.requests_served,
            "requests_rejected": self.requests_rejected,
            # Read through the registry's sampled gauges — the same
            # source ``/metrics`` and ``node_metrics`` scrape, so the
            # three surfaces can never disagree about the cache.
            "fixed_base_cache": {
                "population": int(
                    _obs.REGISTRY.read("fixed_base_cache_population")
                ),
                "limit": int(_obs.REGISTRY.read("fixed_base_cache_limit")),
                "hits": int(
                    _obs.REGISTRY.read("fixed_base_cache_hits_total")
                ),
                "misses": int(
                    _obs.REGISTRY.read("fixed_base_cache_misses_total")
                ),
            },
        }
        if self.verifier_pool is not None:
            # Pool shape and per-worker cache stats: the probe jobs run
            # on the pool's own processes, not under this node's lock
            # discipline, and warm the workers as a side effect.
            status["verifier_pool"] = self.verifier_pool.status()
            status["worker_caches"] = self.verifier_pool.worker_cache_info()
        return status

    def _node_metrics(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Every registered metric family as plain data.

        The structured twin of ``GET /metrics``: the same registry
        snapshot (samplers invoked), shaped for RPC clients instead of a
        Prometheus scraper.
        """
        return {"families": _obs.REGISTRY.collect()}

    def _node_checkpoint(self, params: Dict[str, Any]) -> Dict[str, Any]:
        if self.store is None:
            raise StoreError(
                "no state directory attached — start the node with one "
                "(`node rpc-serve --state-dir ...`) to checkpoint"
            )
        root = self.store.save(self.chain)
        return {"state_root": root.hex(), "height": self.chain.height}

    def _node_prune(self, params: Dict[str, Any]) -> Dict[str, Any]:
        through = _param(params, "through", (int,), default=None)
        dropped = self.chain.event_log.prune(through=through)
        if dropped and self.store is not None:
            self.store.note_prune(self.chain)
        return {"dropped": dropped, "pruned": self.chain.event_log.pruned}

    # ------------------------------------------------------------------
    # Chain queries
    # ------------------------------------------------------------------

    def _chain_head(self, params: Dict[str, Any]) -> Dict[str, Any]:
        blocks = self.chain.blocks
        return {
            "height": self.chain.height,
            "period": self.chain.clock.period,
            "block_hash": blocks[-1].block_hash().hex() if blocks else None,
            "events": len(self.chain.event_log),
            "events_pruned": self.chain.event_log.pruned,
        }

    def _chain_block(self, params: Dict[str, Any]) -> Dict[str, Any]:
        number = _param(params, "number", (int,))
        if not 0 <= number < self.chain.height:
            raise ChainError(
                "no block %d (height is %d)" % (number, self.chain.height)
            )
        return {"block": wire.pack(codec.block_to_data(self.chain.blocks[number]))}

    def _chain_events(self, params: Dict[str, Any]) -> Dict[str, Any]:
        cursor = _param(params, "cursor", (int,), default=0)
        limit = _param(params, "limit", (int,), default=MAX_EVENT_PAGE)
        if cursor < 0:
            raise _BadParams("cursor must be >= 0")
        if not 1 <= limit <= MAX_EVENT_PAGE:
            raise _BadParams("limit must be in 1..%d" % MAX_EVENT_PAGE)
        filter = parse_event_filter(params)
        records, next_cursor, head = self._events_page(filter, cursor, limit)
        return {
            "records": records,
            "cursor": next_cursor,
            "head": head,
            "pruned": self.chain.event_log.pruned,
        }

    def _events_page(
        self, filter, cursor: int, limit: int
    ) -> Tuple[List[Dict[str, Any]], int, int]:
        """The paging loop itself; the caller holds (a side of) the lock."""
        log = self.chain.event_log
        if cursor < log.pruned:
            # Refuse rather than silently resume past the gap: a reader
            # whose cursor fell behind a compaction has *lost* events.
            raise ChainError(
                "cursor %d precedes the pruned base %d — events were "
                "compacted away; restart from a fresh subscription"
                % (cursor, log.pruned)
            )
        records: List[Dict[str, Any]] = []
        next_cursor = cursor
        exhausted = True
        for record in log.iter_since(cursor):
            if filter is not None and not filter.matches(record.event):
                next_cursor = record.sequence + 1
                continue
            if len(records) == limit:
                exhausted = False
                break
            records.append(
                {
                    "sequence": record.sequence,
                    "block": record.block_number,
                    "event": wire.pack(codec.event_to_data(record.event)),
                }
            )
            next_cursor = record.sequence + 1
        if exhausted:
            next_cursor = len(log)
        return records, next_cursor, len(log)

    def _chain_gas(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "total": self.chain.total_gas,
            "by_sender": wire.pack(dict(self.chain.gas_by_sender)),
        }

    def _chain_balance(self, params: Dict[str, Any]) -> Dict[str, Any]:
        address = _packed(params, "address", Address)
        return {"balance": self.chain.ledger.balance_of(address)}

    def _chain_payments(self, params: Dict[str, Any]) -> Dict[str, Any]:
        address = _packed(params, "address", Address)
        matches = [
            (index, entry)
            for index, entry in enumerate(self.chain.ledger._entries)
            if entry.kind == "pay" and entry.destination == address
        ]
        return {
            "entries": wire.pack(
                [codec.ledger_entry_to_data(entry) for _, entry in matches]
            ),
            # Journal positions of the entries above: untrusted hints a
            # light client turns into entry/<index> proof requests.
            "indexes": [index for index, _ in matches],
        }

    def _chain_contract(self, params: Dict[str, Any]) -> Dict[str, Any]:
        name = _param(params, "name", (str,))
        contract = self.chain.contract(name)
        return {
            "type": type(contract).__name__,
            "name": contract.name,
            "address": wire.pack(contract.address),
            "storage": wire.pack(contract.storage),
        }

    def _chain_state_root(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return {"state_root": codec.state_root(self.chain).hex()}

    def _chain_header(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """One link of the node's header chain (default: the newest).

        ``ensure_header`` first, so out-of-block mutations (an account
        registered, a log pruned) are committed to a fetchable header
        before a client asks what the latest commitment is.
        """
        self._state_tracker.ensure_header(self.chain)
        headers = self._state_tracker.headers
        index = _param(params, "index", (int,), default=len(headers) - 1)
        if not 0 <= index < len(headers):
            raise _BadParams(
                "header index %d out of range 0..%d"
                % (index, len(headers) - 1)
            )
        header = headers[index]
        return {
            "index": index,
            "count": len(headers),
            "header": wire.pack(state_trie.header_to_data(header)),
            "header_hash": header.header_hash().hex(),
        }

    def _get_proof(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """A membership/non-membership proof for one state-trie key.

        The proof is anchored: the response carries the header whose
        ``state_root`` the proof folds to, so a light client verifies
        against its own header chain, never against a bare root the
        node could have invented.
        """
        key = _hex_bytes(params, "key")
        header = self._state_tracker.ensure_header(self.chain)
        proof = self._state_tracker.prove(self.chain, key)
        _RPC_PROOFS.inc()
        return {
            "key": key.hex(),
            "proof": wire.pack(proof),
            "header_index": len(self._state_tracker.headers) - 1,
            "header": wire.pack(state_trie.header_to_data(header)),
            "header_hash": header.header_hash().hex(),
        }

    # ------------------------------------------------------------------
    # Transaction submission
    # ------------------------------------------------------------------

    def _tx_register(self, params: Dict[str, Any]) -> Dict[str, Any]:
        label = _param(params, "label", (str,))
        balance = _param(params, "balance", (int,), default=0)
        if balance < 0:
            raise _BadParams("balance must be >= 0")
        address = self.chain.register_account(label, balance)
        return {"address": wire.pack(address)}

    def _tx_send(self, params: Dict[str, Any]) -> Dict[str, Any]:
        sender = _packed(params, "sender", Address)
        contract = _param(params, "contract", (str,))
        method = _param(params, "method", (str,))
        args = _packed(params, "args", tuple, default=())
        if not isinstance(args, tuple):
            raise _BadParams("args must decode to a tuple")
        payload = _hex_bytes(params, "payload", default=b"")
        value = _param(params, "value", (int,), default=0)
        nonce = _param(params, "nonce", (int,), default=None)
        if value < 0:
            raise _BadParams("value must be >= 0")
        if method.startswith("_") or not method:
            raise InvalidTransaction("method %r is not callable" % method)
        if not self.chain.registry.is_granted(sender):
            raise InvalidTransaction(
                "sender %s is not a registered identity" % sender
            )
        if nonce is not None and nonce != nonce_position():
            # Replay/gap protection: an explicit nonce must be exactly
            # the next one this node will stamp.
            raise InvalidTransaction(
                "replayed or out-of-order nonce %d (next is %d)"
                % (nonce, nonce_position())
            )
        transaction = self.chain.send(
            sender, contract, method, args=args, payload=payload, value=value
        )
        return {
            "nonce": transaction.nonce,
            "tx_hash": transaction.tx_hash().hex(),
        }

    def _deployment_from_params(
        self, params: Dict[str, Any]
    ) -> Tuple[Any, Address, tuple, bytes]:
        kind = _param(params, "type", (str,))
        name = _param(params, "name", (str,))
        deployer = _packed(params, "deployer", Address)
        args = _packed(params, "args", tuple, default=())
        payload = _hex_bytes(params, "payload", default=b"")
        contract_cls = codec.CONTRACT_TYPES.get(kind)
        if contract_cls is None:
            raise InvalidTransaction(
                "unknown contract type %r (deployable: %s)"
                % (kind, ", ".join(sorted(codec.CONTRACT_TYPES)))
            )
        if not self.chain.registry.is_granted(deployer):
            raise InvalidTransaction(
                "deployer %s is not a registered identity" % deployer
            )
        return contract_cls(name), deployer, args, payload

    def _tx_deploy(self, params: Dict[str, Any]) -> Dict[str, Any]:
        contract, deployer, args, payload = self._deployment_from_params(params)
        value = _param(params, "value", (int,), default=0)
        if value < 0:
            raise _BadParams("value must be >= 0")
        receipt = self.chain.deploy(
            contract, deployer, args=args, payload=payload, value=value
        )
        return {"receipt": wire.pack(codec.receipt_to_data(receipt))}

    def _tx_deploy_many(self, params: Dict[str, Any]) -> Dict[str, Any]:
        items = _param(params, "deployments", (list,))
        if not items:
            raise _BadParams("deployments must be a non-empty list")
        deployments = []
        for item in items:
            if not isinstance(item, dict):
                raise _BadParams("each deployment must be an object")
            deployments.append(self._deployment_from_params(item))
        receipts = self.chain.deploy_many(deployments)
        return {
            "receipts": [
                wire.pack(codec.receipt_to_data(receipt)) for receipt in receipts
            ]
        }

    def _chain_mine(self, params: Dict[str, Any]) -> Dict[str, Any]:
        block = self.chain.mine_block()
        return {
            "block": wire.pack(codec.block_to_data(block)),
            "period": self.chain.clock.period,
            "height": self.chain.height,
        }

    # ------------------------------------------------------------------
    # Swarm gateway
    # ------------------------------------------------------------------

    def _swarm_put(self, params: Dict[str, Any]) -> Dict[str, Any]:
        data = _hex_bytes(params, "data")
        return {"digest": self.swarm.put(data).hex()}

    def _swarm_get(self, params: Dict[str, Any]) -> Dict[str, Any]:
        digest = _hex_bytes(params, "digest")
        return {"data": self.swarm.get(digest).hex()}


# ---------------------------------------------------------------------------
# The HTTP transport skin
# ---------------------------------------------------------------------------


class _RpcRequestHandler(BaseHTTPRequestHandler):
    """POST / or /rpc carries JSON-RPC; GET /health is a liveness probe."""

    protocol_version = "HTTP/1.1"
    server_version = "DragoonRpc/%d" % wire.PROTOCOL_VERSION
    # Small request/response pairs on one keep-alive connection are the
    # workload; Nagle + delayed ACK would add ~40ms to every round trip.
    disable_nagle_algorithm = True

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # request logging stays out of stdout (the CLI owns it)

    def _respond(
        self,
        status: int,
        body: bytes,
        content_type: str = "application/json",
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        node: RpcNode = self.server.node  # type: ignore[attr-defined]
        if self.path not in ("/", "/rpc"):
            self._respond(
                404, wire.failure(None, wire.INVALID_REQUEST,
                                  "no such endpoint %r" % self.path)
            )
            # The unread body would desync the next keep-alive request.
            self.close_connection = True
            return
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            length = -1
        if length < 0:
            self._respond(
                411, wire.failure(None, wire.INVALID_REQUEST,
                                  "a non-negative Content-Length is required")
            )
            self.close_connection = True
            return
        if length > node.max_request_bytes:
            # Reject from the header alone — never buffer an oversized
            # body into memory.
            node.note_rejected()
            self._respond(
                413,
                wire.failure(
                    None, wire.OVERSIZED_REQUEST,
                    "request of %d bytes exceeds the %d-byte cap"
                    % (length, node.max_request_bytes),
                ),
            )
            self.close_connection = True
            return
        raw = self.rfile.read(length)
        self._respond(200, node.handle(raw))

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        node: RpcNode = self.server.node  # type: ignore[attr-defined]
        if self.path == "/metrics":
            # The scrape is auth-exempt by design: like /health it is a
            # read-only operational surface — metrics carry counts and
            # durations, never chain payloads or tokens.
            body = render_prometheus().encode("utf-8")
            self._respond(200, body, content_type=METRICS_CONTENT_TYPE)
            return
        if self.path != "/health":
            self._respond(
                404, wire.failure(None, wire.INVALID_REQUEST,
                                  "no such endpoint %r" % self.path)
            )
            return
        body = json.dumps(
            {"ok": True, "height": node.chain.height,
             "protocol": wire.PROTOCOL_VERSION}
        ).encode("utf-8")
        self._respond(200, body)


class RpcHttpServer:
    """A threaded localhost JSON-RPC server around one :class:`RpcNode`.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port`).
    Use as a context manager in tests; long-lived processes call
    :meth:`serve_forever` (the CLI's ``node rpc-serve``).
    """

    def __init__(
        self, node: RpcNode, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.node = node
        self._httpd = ThreadingHTTPServer((host, port), _RpcRequestHandler)
        self._httpd.daemon_threads = True
        self._httpd.node = node  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        # True while an accept loop may be running (either mode).  Guards
        # shutdown(): BaseServer.shutdown() deadlocks if serve_forever
        # was never entered, and server_close() under a live loop races
        # the selector — so stop-the-loop must be mode-independent.
        self._serving = threading.Event()

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return "http://%s:%d/rpc" % (self.host, self.port)

    def start(self) -> "RpcHttpServer":
        """Serve on a daemon thread (tests, embedded use)."""
        self._serving.set()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="rpc-serve", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (the CLI)."""
        self._serving.set()
        try:
            self._httpd.serve_forever()
        finally:
            # The loop is down whether it returned (cross-thread
            # shutdown()) or was blown out by KeyboardInterrupt; either
            # way a later shutdown() must not wait on it again.
            self._serving.clear()

    def shutdown(self) -> None:
        """Stop the accept loop (in both modes) and close the socket.

        Safe whichever way the server ran — :meth:`start`'s daemon
        thread or :meth:`serve_forever` on the caller's thread — and
        safe to call twice: the loop is stopped *before* the listening
        socket closes, never under a still-running accept loop.
        """
        if self._serving.is_set():
            self._httpd.shutdown()
            self._serving.clear()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "RpcHttpServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
