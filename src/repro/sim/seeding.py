"""Deterministic seed derivation for the simulation layer.

Every stochastic component of a scenario (arrival process, task
synthesis, population accuracies, answer sampling) owns a private
:class:`random.Random` whose seed is *derived* from the scenario seed
plus a component tag.  Derivation goes through SHA-256, never through
``hash()`` — Python salts string hashing per process, which would break
the byte-for-byte reproducibility the simulator promises.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(seed: int, *tags: object) -> int:
    """A stable 64-bit sub-seed for ``(seed, tags...)``."""
    material = ":".join([str(seed)] + [str(tag) for tag in tags])
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derive_rng(seed: int, *tags: object) -> random.Random:
    """A private PRNG seeded with :func:`derive_seed`."""
    return random.Random(derive_seed(seed, *tags))
