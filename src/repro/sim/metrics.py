"""The event-bus metrics pipeline: chain events → marketplace telemetry.

A :class:`MetricsCollector` owns a cursor subscription on the chain
(:meth:`Chain.subscribe`) plus a per-block receipt fold, and turns the
raw stream into the numbers an operator of the deployed system would
watch:

* **throughput** — tasks published / settled / cancelled per block and
  overall (blocks per task, settled tasks per block);
* **latency** — commit→finalize and publish→finalize block counts, as
  histograms;
* **gas** — a :class:`~repro.core.protocol.GasReport` per task (the
  five fixed Table III slots *and* the dynamic ``extras`` ledger:
  timeout refunds, late-reveal gas), folded receipt by receipt with the
  exact :func:`~repro.core.protocol.fold_receipt` slotting rules;
* **worker earnings** — coin totals per worker label off ``paid``
  events;
* **mempool depth** — sampled by the runner before each block mines.

The collector never drives the chain; it only observes, exactly like an
off-chain indexer would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.chain.blocks import Block
from repro.chain.chain import Chain
from repro.core.protocol import GasReport, fold_receipt
from repro.obs import registry as _obs

_SIM_PUBLISHED = _obs.REGISTRY.counter(
    "sim_tasks_published_total", "Tasks the simulator observed published"
)
_SIM_SETTLED = _obs.REGISTRY.counter(
    "sim_tasks_settled_total", "Tasks the simulator observed finalized"
)
_SIM_CANCELLED = _obs.REGISTRY.counter(
    "sim_tasks_cancelled_total", "Tasks the simulator observed cancelled"
)


@dataclass
class BlockSample:
    """One block's worth of telemetry."""

    block_number: int
    transactions: int
    published: int = 0
    settled: int = 0
    cancelled: int = 0
    mempool_depth_before: int = 0


@dataclass
class LatencyStats:
    """A block-count histogram with the usual summary numbers."""

    histogram: Dict[int, int] = field(default_factory=dict)

    def record(self, blocks: int) -> None:
        self.histogram[blocks] = self.histogram.get(blocks, 0) + 1

    @property
    def count(self) -> int:
        return sum(self.histogram.values())

    @property
    def mean(self) -> float:
        total = self.count
        if not total:
            return 0.0
        return sum(k * v for k, v in self.histogram.items()) / total

    @property
    def minimum(self) -> int:
        return min(self.histogram) if self.histogram else 0

    @property
    def maximum(self) -> int:
        return max(self.histogram) if self.histogram else 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "min": self.minimum,
            "mean": round(self.mean, 4),
            "max": self.maximum,
            "histogram": {str(k): self.histogram[k] for k in sorted(self.histogram)},
        }


class MetricsCollector:
    """Accumulates marketplace telemetry from one chain's event bus."""

    def __init__(self, chain: Chain) -> None:
        self.chain = chain
        self._subscription = chain.subscribe()
        self.samples: List[BlockSample] = []
        self.tasks_published = 0
        self.tasks_settled = 0
        self.tasks_cancelled = 0
        self.commit_to_finalize = LatencyStats()
        self.publish_to_finalize = LatencyStats()
        self.gas_by_task: Dict[str, GasReport] = {}
        self.worker_earnings: Dict[str, int] = {}
        self._published_block: Dict[bytes, int] = {}  # contract addr -> block
        self._first_commit_block: Dict[bytes, int] = {}
        self._blocks_folded = 0  # receipt-fold cursor into chain.blocks
        self._transactions_folded = 0  # includes deployment blocks
        self._pending_mempool_depth = 0

    # ------------------------------------------------------------------
    # Sampling hooks (called by the runner)
    # ------------------------------------------------------------------

    def before_step(self) -> None:
        """Sample what the next block will inherit (mempool depth)."""
        self._pending_mempool_depth = len(self.chain.mempool)

    def on_block(self, block: Block) -> BlockSample:
        """Fold one mined block: its receipts and its event-log slice."""
        sample = BlockSample(
            block_number=block.number,
            transactions=len(block.transactions),
            mempool_depth_before=self._pending_mempool_depth,
        )
        self._pending_mempool_depth = 0
        self._fold_new_blocks()
        for record in self._subscription.poll():
            self._on_event(record.block_number, record.event, sample)
        self.samples.append(sample)
        return sample

    def _fold_new_blocks(self) -> None:
        """Fold receipts of every block sealed since the last fold.

        This catches both the blocks the step loop mines *and* the
        deployment blocks ``Chain.deploy_many`` seals between steps
        (publish gas), without rescanning history.
        """
        while self._blocks_folded < len(self.chain.blocks):
            block = self.chain.blocks[self._blocks_folded]
            self._transactions_folded += len(block.transactions)
            for receipt in block.receipts:
                contract_name = receipt.transaction.contract
                report = self.gas_by_task.setdefault(contract_name, GasReport())
                fold_receipt(report, receipt)
            self._blocks_folded += 1

    def _on_event(self, block_number: int, event, sample: BlockSample) -> None:
        name = event.name
        address = event.contract.value
        if name == "published":
            sample.published += 1
            self.tasks_published += 1
            _SIM_PUBLISHED.inc()
            self._published_block[address] = block_number
        elif name == "committed":
            self._first_commit_block.setdefault(address, block_number)
        elif name == "finalized":
            sample.settled += 1
            self.tasks_settled += 1
            _SIM_SETTLED.inc()
            # pop, not get: a settled task's bookkeeping is done, so the
            # maps stay proportional to in-flight tasks on long runs.
            committed = self._first_commit_block.pop(address, None)
            if committed is not None:
                self.commit_to_finalize.record(block_number - committed)
            published = self._published_block.pop(address, None)
            if published is not None:
                self.publish_to_finalize.record(block_number - published)
        elif name == "cancelled":
            sample.cancelled += 1
            self.tasks_cancelled += 1
            _SIM_CANCELLED.inc()
            self._first_commit_block.pop(address, None)
            self._published_block.pop(address, None)
        elif name == "paid":
            worker = event.payload["worker"]
            label = worker.label or worker.hex()
            self.worker_earnings[label] = (
                self.worker_earnings.get(label, 0)
                + event.payload["amount"]
            )

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    @property
    def blocks_observed(self) -> int:
        return len(self.samples)

    @property
    def total_transactions(self) -> int:
        """Every transaction the run sealed — the engine-mined blocks
        *and* the deployment blocks ``deploy_many`` sealed between
        steps (per-block samples only cover the former)."""
        return self._transactions_folded

    @property
    def peak_mempool_depth(self) -> int:
        return max(
            (sample.mempool_depth_before for sample in self.samples), default=0
        )

    @property
    def total_gas(self) -> int:
        return sum(report.total for report in self.gas_by_task.values())

    def gas_per_settled_task(self) -> float:
        if not self.tasks_settled:
            return 0.0
        return self.total_gas / self.tasks_settled

    def extras_total(self) -> Dict[str, int]:
        """Dynamic-operation gas summed across every task's report.

        Labels are collapsed to the operation kind (``late-reveal``,
        ``cancel``, ...) so the table stays readable at fleet scale.
        """
        combined: Dict[str, int] = {}
        for report in self.gas_by_task.values():
            for label, gas in report.extras.items():
                kind = label.split(":", 1)[0]
                combined[kind] = combined.get(kind, 0) + gas
        return combined
