"""Stochastic worker populations: accuracies, adversaries, rational choice.

The paper sizes its traffic informally ("SVI ImageNet workers", the
Turkopticon audit economy); this module makes the worker side of the
marketplace a *model*: a :class:`WorkerPopulation` of agents whose
per-worker accuracy is drawn from a configurable distribution, a
configurable fraction of whom misbehave through the existing session
adversaries (:class:`~repro.core.session.StragglerScheduler`,
:class:`~repro.core.session.DropScheduler`), and who are **never
assigned tasks**: each idle agent watches the chain's event bus and
joins the open listing with the best *positive* expected utility, as
computed by :meth:`repro.core.marketplace.TaskMarketplace.expected_utility`
— the same Turkopticon-style vetting a rational worker would run.

The population maintains its own open-listings view from a cursor
subscription (``Chain.subscribe``), so a long run costs memory and time
proportional to in-flight tasks, not chain history — and it keeps
working when the runner prunes the event log.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chain.chain import Chain
from repro.core.audit import RequesterReputation
from repro.core.marketplace import TaskListing, TaskMarketplace
from repro.core.session import (
    DropScheduler,
    HITSession,
    StragglerScheduler,
    WorkerPolicy,
)
from repro.core.task import HITTask, sample_worker_answers
from repro.core.worker import WorkerClient
from repro.errors import ProtocolError
from repro.sim.seeding import derive_rng, derive_seed
from repro.storage.swarm import SwarmStore


@dataclass(frozen=True)
class PopulationSpec:
    """The declarative description of a worker population.

    ``accuracy`` is a distribution tag plus parameters:
    ``("point", p)``, ``("uniform", lo, hi)``, or ``("beta", a, b)``
    (rescaled to [0.5, 1.0] so even an unlucky draw beats guessing on
    binary tasks).  ``straggler_fraction`` of agents reveal one period
    late (losing the payment at the Fig. 4 deadline);
    ``dropout_fraction`` commit but never reveal.  The utility knobs
    mirror :meth:`TaskMarketplace.expected_utility`.
    """

    size: int = 16
    accuracy: Tuple = ("uniform", 0.60, 0.98)
    straggler_fraction: float = 0.0
    dropout_fraction: float = 0.0
    effort_cost_per_question: float = 0.02
    coin_value_usd: float = 0.05
    submit_fee_usd: float = 0.48
    avoid_flagged: bool = True


def sample_accuracy(spec: PopulationSpec, rng: random.Random) -> float:
    """One accuracy draw from the spec's distribution."""
    kind, params = spec.accuracy[0], spec.accuracy[1:]
    if kind == "point":
        return float(params[0])
    if kind == "uniform":
        low, high = params
        return rng.uniform(low, high)
    if kind == "beta":
        alpha, beta = params
        return 0.5 + 0.5 * rng.betavariate(alpha, beta)
    raise ProtocolError("unknown accuracy distribution: %r" % (kind,))


@dataclass
class WorkerAgent:
    """One member of the population (a persistent chain identity)."""

    label: str
    accuracy: float
    policy: Optional[WorkerPolicy] = None
    busy_with: Optional[str] = None  # contract name while enrolled
    tasks_worked: int = 0

    @property
    def idle(self) -> bool:
        return self.busy_with is None


@dataclass
class _OpenListing:
    """The population's incremental view of one commit-phase task."""

    listing: TaskListing
    published_event: object = None  # the bus event, for log-free discovery
    slots_taken: int = 0
    enrolling: int = 0  # this population's commits still in flight

    @property
    def slots_free(self) -> int:
        return (
            self.listing.parameters.num_workers
            - self.slots_taken
            - self.enrolling
        )


class WorkerPopulation:
    """Agents joining tasks by expected utility, driven off the event bus.

    Call :meth:`observe` once per mined block (it drains the cursor),
    then :meth:`enroll` to let idle agents claim open slots.  Agents are
    busy until their task settles; their earnings accumulate on one
    ledger account per agent because labels (and hence addresses) are
    stable across tasks.
    """

    def __init__(
        self,
        spec: PopulationSpec,
        chain: Chain,
        swarm: SwarmStore,
        seed: int = 0,
    ) -> None:
        self.spec = spec
        self.chain = chain
        self.swarm = swarm
        self.seed = seed
        self.market = TaskMarketplace(chain)
        self._subscription = chain.subscribe()
        self._rng = derive_rng(seed, "population")
        self.agents: List[WorkerAgent] = [
            self._spawn_agent(index) for index in range(spec.size)
        ]
        self._open: Dict[str, _OpenListing] = {}  # contract -> view
        self._tasks: Dict[str, HITTask] = {}  # ground truth for synthesis
        self._busy_on: Dict[str, List[WorkerAgent]] = {}
        self._address_to_name: Dict[bytes, str] = {}
        # Turkopticon-lite: paid/rejected tallies per requester label,
        # folded into RequesterReputation for the flagged check.
        self._paid: Dict[str, int] = {}
        self._rejected: Dict[str, int] = {}
        self._requester_tasks: Dict[str, int] = {}
        self.enrollments = 0
        self.declined = 0  # idle agents that found no worthwhile task

    def _spawn_agent(self, index: int) -> WorkerAgent:
        accuracy = sample_accuracy(self.spec, self._rng)
        roll = self._rng.random()
        policy: Optional[WorkerPolicy] = None
        if roll < self.spec.dropout_fraction:
            policy = DropScheduler("reveal")
        elif roll < self.spec.dropout_fraction + self.spec.straggler_fraction:
            policy = StragglerScheduler(reveal=1)
        return WorkerAgent(
            label="pop/worker-%03d" % index, accuracy=accuracy, policy=policy
        )

    # ------------------------------------------------------------------
    # Registration of tasks (the runner tells us the ground truth)
    # ------------------------------------------------------------------

    def register_task(self, contract_name: str, task: HITTask) -> None:
        """Make a task joinable: the simulator needs its ground truth to
        synthesize answers at each agent's accuracy (public metadata
        still comes off the event bus like it would on a real chain)."""
        self._tasks[contract_name] = task
        address = self.chain.contract(contract_name).address
        self._address_to_name[address.value] = contract_name

    # ------------------------------------------------------------------
    # Event-bus maintenance
    # ------------------------------------------------------------------

    def observe(self) -> None:
        """Drain the cursor: update open listings, free settled agents."""
        for record in self._subscription.poll():
            event = record.event
            name = event.name
            if name == "published":
                self._on_published(event)
            elif name == "committed":
                contract_name = self._address_to_name.get(event.contract.value)
                view = self._open.get(contract_name or "")
                if view is not None:
                    view.slots_taken += 1
                    if view.enrolling:
                        view.enrolling -= 1
            elif name in ("finalized", "cancelled"):
                contract_name = self._address_to_name.get(event.contract.value)
                if contract_name is not None:
                    self._settle(contract_name)
            elif name in ("evaluated", "outranged"):
                requester = self._requester_of(event.contract.value)
                if requester is not None:
                    self._rejected[requester] = self._rejected.get(requester, 0) + 1
            elif name == "paid":
                requester = self._requester_of(event.contract.value)
                if requester is not None:
                    self._paid[requester] = self._paid.get(requester, 0) + 1

    def _on_published(self, event) -> None:
        payload = event.payload
        contract_name = self._address_to_name.get(event.contract.value)
        if contract_name is None or contract_name not in self._tasks:
            return  # not a task this simulation issued
        requester_label = payload["requester"].label
        self._requester_tasks[requester_label] = (
            self._requester_tasks.get(requester_label, 0) + 1
        )
        self._open[contract_name] = _OpenListing(
            TaskListing(
                contract_name=contract_name,
                requester=payload["requester"],
                parameters=payload["parameters"],
                slots_taken=0,
                requester_reputation=None,
            ),
            published_event=event,
        )

    def _requester_of(self, address_value: bytes) -> Optional[str]:
        name = self._address_to_name.get(address_value)
        if name is None:
            return None
        view = self._open.get(name)
        if view is not None:
            return view.listing.requester.label
        return None

    def _settle(self, contract_name: str) -> None:
        """Free the task's agents and forget its bookkeeping.

        Dropping the task object and address mapping here is what keeps
        a long open-ended run's memory proportional to *in-flight*
        tasks (the per-requester reputation tallies are the one
        intentional long-term memory, and they are just counters).
        """
        self._open.pop(contract_name, None)
        for agent in self._busy_on.pop(contract_name, []):
            agent.busy_with = None
        task = self._tasks.pop(contract_name, None)
        if task is not None:
            address = self.chain.contract(contract_name).address
            self._address_to_name.pop(address.value, None)

    # ------------------------------------------------------------------
    # Rational enrollment
    # ------------------------------------------------------------------

    def _reputation_of(self, requester_label: str) -> RequesterReputation:
        reputation = RequesterReputation(
            requester=requester_label,
            tasks=self._requester_tasks.get(requester_label, 0),
            workers_paid=self._paid.get(requester_label, 0),
            workers_rejected=self._rejected.get(requester_label, 0),
        )
        if reputation.tasks >= 2 and reputation.rejection_rate >= 0.75:
            reputation.flags.append(
                "rejects %.0f%% of adjudicated workers"
                % (100 * reputation.rejection_rate)
            )
        return reputation

    def _utility(self, agent: WorkerAgent, view: _OpenListing) -> float:
        return self.market.expected_utility(
            view.listing,
            worker_accuracy=agent.accuracy,
            effort_cost_per_question=self.spec.effort_cost_per_question,
            coin_value_usd=self.spec.coin_value_usd,
            submit_fee_usd=self.spec.submit_fee_usd,
        )

    def enroll(self, sessions: Dict[str, HITSession]) -> int:
        """Let every idle agent claim the best worthwhile open slot.

        ``sessions`` maps contract names to the live
        :class:`~repro.core.session.HITSession` objects (the runner's
        registry); enrollment goes through ``session.add_worker`` so the
        agent's policy (straggler/dropout) plugs into the usual path.
        Returns how many agents enrolled this block.
        """
        joined = 0
        for agent in self.agents:
            if not agent.idle:
                continue
            best: Optional[Tuple[float, str]] = None
            for contract_name in sorted(self._open):
                view = self._open[contract_name]
                if view.slots_free <= 0:
                    continue
                if self.spec.avoid_flagged and self._reputation_of(
                    view.listing.requester.label
                ).is_suspicious:
                    continue
                utility = self._utility(agent, view)
                if utility <= 0:
                    continue
                if best is None or utility > best[0]:
                    best = (utility, contract_name)
            if best is None:
                self.declined += 1
                continue
            _, contract_name = best
            view = self._open[contract_name]
            session = sessions[contract_name]
            task = self._tasks[contract_name]
            answers = sample_worker_answers(
                task,
                agent.accuracy,
                seed=derive_seed(
                    self.seed, "answers", agent.label, agent.tasks_worked
                ),
            )
            worker = WorkerClient(
                agent.label, self.chain, self.swarm, answers=answers
            )
            # Discover from the event we already hold: no log rescan,
            # and immune to event-log pruning on long runs.
            worker.discover_from_event(contract_name, view.published_event)
            session.add_worker(worker, policy=agent.policy)
            view.enrolling += 1
            agent.busy_with = contract_name
            agent.tasks_worked += 1
            self._busy_on.setdefault(contract_name, []).append(agent)
            self.enrollments += 1
            joined += 1
        return joined

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    @property
    def idle_count(self) -> int:
        return sum(1 for agent in self.agents if agent.idle)

    def earnings(self) -> Dict[str, int]:
        """Each agent's ledger balance (coins earned across all tasks).

        An agent that never enrolled has no ledger account yet — their
        earnings are zero, not an error.
        """
        from repro.ledger.accounts import Address

        balances: Dict[str, int] = {}
        for agent in self.agents:
            address = Address.from_label(agent.label)
            balances[agent.label] = (
                self.chain.ledger.balance_of(address)
                if self.chain.ledger.has_account(address)
                else 0
            )
        return balances
